"""Backup and restore: incrementality, aging, DR, streaming page faults."""

import pytest

from repro import Cluster
from repro.backup import BackupManager
from repro.errors import SnapshotNotFoundError
from repro.restore import RestoreManager


@pytest.fixture
def backed_up(env):
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE sales (id int, region varchar(8), amt float) "
        "DISTKEY(id) SORTKEY(id)"
    )
    cluster.register_inline_source(
        "inline://sales", [f"{i}|r{i % 3}|{i * 0.5}" for i in range(3000)]
    )
    s.execute("COPY sales FROM 'inline://sales'")
    backups = BackupManager(cluster, env.s3, "bkt", env.clock)
    return cluster, s, backups, env


class TestIncrementalBackup:
    def test_first_snapshot_uploads_everything(self, backed_up):
        _, _, backups, _ = backed_up
        record = backups.snapshot("user", label="s1")
        assert record.blocks_uploaded == record.total_blocks > 0

    def test_second_snapshot_uploads_nothing_when_unchanged(self, backed_up):
        _, _, backups, _ = backed_up
        backups.snapshot("user", label="s1")
        record = backups.snapshot("user", label="s2")
        assert record.blocks_uploaded == 0

    def test_incremental_after_append(self, backed_up):
        cluster, s, backups, _ = backed_up
        first = backups.snapshot("user", label="s1")
        cluster.register_inline_source(
            "inline://more", [f"{i}|x|{i}" for i in range(9000, 9200)]
        )
        s.execute("COPY sales FROM 'inline://more'")
        second = backups.snapshot("user", label="s2")
        assert 0 < second.blocks_uploaded < first.blocks_uploaded

    def test_backup_duration_tracks_busiest_node(self, backed_up):
        _, _, backups, _ = backed_up
        record = backups.snapshot("user", label="s1")
        # Parallel across nodes: far less than serial total transfer.
        serial = backups._s3.transfer_time(record.bytes_uploaded)
        assert record.duration_s < serial

    def test_system_snapshots_age_out(self, backed_up):
        _, _, backups, _ = backed_up
        for i in range(backups.SYSTEM_RETENTION + 3):
            backups.snapshot("system")
        kinds = [s.kind for s in backups.snapshots]
        assert len(kinds) == backups.SYSTEM_RETENTION

    def test_user_snapshots_never_age_out(self, backed_up):
        _, _, backups, _ = backed_up
        backups.snapshot("user", label="keep-me")
        for _ in range(backups.SYSTEM_RETENTION + 2):
            backups.snapshot("system")
        assert any(s.snapshot_id == "keep-me" for s in backups.snapshots)

    def test_delete_snapshot_collects_blocks(self, backed_up):
        _, _, backups, env = backed_up
        backups.snapshot("user", label="s1")
        before = len(env.s3.list_objects("bkt", "blocks/"))
        backups.delete_snapshot("s1")
        after = len(env.s3.list_objects("bkt", "blocks/"))
        assert after < before
        with pytest.raises(SnapshotNotFoundError):
            backups.find("s1")


class TestFullRestore:
    def test_roundtrip(self, backed_up):
        _, s, backups, env = backed_up
        backups.snapshot("user", label="s1")
        restore = RestoreManager(env.s3, "bkt", env.clock)
        result = restore.full_restore("s1")
        s2 = result.cluster.connect()
        assert s2.execute("SELECT count(*), sum(id) FROM sales").rows == \
            s.execute("SELECT count(*), sum(id) FROM sales").rows

    def test_restore_excludes_rows_deleted_before_snapshot(self, backed_up):
        cluster, s, backups, env = backed_up
        s.execute("DELETE FROM sales WHERE id < 1000")
        backups.snapshot("user", label="s1")
        result = RestoreManager(env.s3, "bkt", env.clock).full_restore("s1")
        s2 = result.cluster.connect()
        assert s2.execute("SELECT count(*) FROM sales").scalar() == 2000

    def test_restored_cluster_is_writable(self, backed_up):
        _, _, backups, env = backed_up
        backups.snapshot("user", label="s1")
        result = RestoreManager(env.s3, "bkt", env.clock).full_restore("s1")
        s2 = result.cluster.connect()
        s2.execute("INSERT INTO sales VALUES (99999, 'new', 1.0)")
        assert s2.execute(
            "SELECT count(*) FROM sales WHERE id = 99999"
        ).scalar() == 1

    def test_missing_snapshot(self, backed_up):
        _, _, _, env = backed_up
        with pytest.raises(SnapshotNotFoundError):
            RestoreManager(env.s3, "bkt", env.clock).full_restore("ghost")


class TestStreamingRestore:
    def test_first_query_before_full_download(self, backed_up):
        _, _, backups, env = backed_up
        backups.snapshot("user", label="s1")
        manager = RestoreManager(env.s3, "bkt", env.clock)
        result = manager.streaming_restore("s1")
        assert result.resident_fraction == 0.0  # nothing local yet
        s2 = result.cluster.connect()
        r = s2.execute("SELECT count(*) FROM sales WHERE id BETWEEN 0 AND 50")
        assert r.scalar() == 51
        # The working-set query faulted in only what it touched.
        assert 0 < result.resident_fraction < 0.6

    def test_zone_maps_prune_before_blocks_are_local(self, backed_up):
        _, _, backups, env = backed_up
        backups.snapshot("user", label="s1")
        result = RestoreManager(env.s3, "bkt", env.clock).streaming_restore("s1")
        s2 = result.cluster.connect()
        r = s2.execute("SELECT count(*) FROM sales WHERE id >= 2990")
        assert r.scalar() == 10
        assert r.stats.scan.blocks_skipped > 0
        # Skipped blocks must NOT have been fetched.
        assert result.faulted_blocks < result.total_blocks / 2

    def test_background_fetch_completes(self, backed_up):
        _, _, backups, env = backed_up
        backups.snapshot("user", label="s1")
        manager = RestoreManager(env.s3, "bkt", env.clock)
        result = manager.streaming_restore("s1")
        manager.complete_background_fetch(result)
        assert result.resident_fraction == 1.0
        s2 = result.cluster.connect()
        assert s2.execute("SELECT count(*) FROM sales").scalar() == 3000

    def test_streaming_opens_faster_than_full(self, backed_up):
        _, _, backups, env = backed_up
        backups.snapshot("user", label="s1")
        manager = RestoreManager(env.s3, "bkt", env.clock)
        streaming = manager.streaming_restore("s1")
        full = manager.full_restore("s1")
        assert streaming.time_to_first_query_s <= full.time_to_first_query_s


class TestDisasterRecovery:
    def test_objects_replicated_to_remote_region(self, backed_up):
        _, _, backups, env = backed_up
        remote = env.add_remote_region("us-west-2")
        backups.enable_disaster_recovery(remote.s3)
        backups.snapshot("user", label="s1")
        local = set(env.s3.list_objects("bkt"))
        mirrored = set(remote.s3.list_objects("bkt"))
        assert local <= mirrored

    def test_restore_in_remote_region(self, backed_up):
        _, s, backups, env = backed_up
        remote = env.add_remote_region("us-west-2")
        backups.enable_disaster_recovery(remote.s3)
        backups.snapshot("user", label="s1")
        env.s3.start_outage()  # the home region burns down
        result = RestoreManager(remote.s3, "bkt", env.clock).streaming_restore("s1")
        s2 = result.cluster.connect()
        assert s2.execute("SELECT count(*) FROM sales").scalar() == 3000


class TestEncryptedBackup:
    def test_backup_restore_with_key_hierarchy(self, backed_up, env):
        cluster, s, _, _ = backed_up
        from repro.cloud import SimKMS
        from repro.security import ClusterKeyHierarchy

        kms = env.kms
        master = kms.create_master_key("m")
        hierarchy = ClusterKeyHierarchy(kms, master, "c1")
        backups = BackupManager(
            cluster, env.s3, "enc-bkt", env.clock, encryption=hierarchy
        )
        backups.snapshot("user", label="s1")
        # Objects at rest differ from the plaintext serialization.
        some_key = env.s3.list_objects("enc-bkt", "blocks/")[0]
        stored = env.s3.get_object("enc-bkt", some_key).data
        assert b"blk-" not in stored  # block ids appear in plaintext pickles
        result = RestoreManager(
            env.s3, "enc-bkt", env.clock, encryption=hierarchy
        ).full_restore("s1")
        s2 = result.cluster.connect()
        assert s2.execute("SELECT count(*) FROM sales").scalar() == 3000
