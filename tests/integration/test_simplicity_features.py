"""The 'simplicity' feature set: health, auto-maintenance, the tuning
advisor, and automatic relationalization — §3.2/§3.3/§4's future work,
implemented."""

import json

import pytest

from repro import Cluster
from repro.cloud import SimClock
from repro.controlplane.maintenance import AutoMaintenanceDaemon
from repro.engine.advisor import TuningAdvisor
from repro.engine.health import cluster_health, table_health
from repro.engine.relationalize import infer_schema, relationalize
from repro.errors import CopyError
from repro.util.units import HOUR


@pytest.fixture
def star_cluster():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
    s = cluster.connect()
    s.execute("CREATE TABLE fact (ts int, cust int, amt int) DISTSTYLE EVEN")
    s.execute("CREATE TABLE dim (cust int, name varchar(8)) DISTSTYLE EVEN")
    rows = ",".join(f"({i},{i % 40},{i % 7})" for i in range(3000))
    s.execute(f"INSERT INTO fact VALUES {rows}")
    s.execute(
        "INSERT INTO dim VALUES "
        + ",".join(f"({i},'c{i}')" for i in range(40))
    )
    return cluster, s


class TestHealth:
    def test_clean_table_is_healthy(self, star_cluster):
        cluster, _ = star_cluster
        health = table_health(cluster, "fact")
        assert health.dead_fraction == 0.0
        assert health.unsorted_fraction == 0.0  # no sort key => n/a

    def test_deletes_degrade_health(self, star_cluster):
        cluster, s = star_cluster
        s.execute("DELETE FROM fact WHERE ts < 1500")
        health = table_health(cluster, "fact")
        assert health.dead_fraction == pytest.approx(0.5, abs=0.01)

    def test_unsorted_appends_detected(self, star_cluster):
        cluster, s = star_cluster
        s.execute("CREATE TABLE sorted_t (k int) SORTKEY(k)")
        cluster.register_inline_source(
            "h://first", [str(i) for i in range(500)]
        )
        s.execute("COPY sorted_t FROM 'h://first'")
        assert table_health(cluster, "sorted_t").unsorted_fraction == 0.0
        s.execute(
            "INSERT INTO sorted_t VALUES "
            + ",".join(f"({i})" for i in range(200))
        )
        health = table_health(cluster, "sorted_t")
        assert health.unsorted_fraction == pytest.approx(200 / 700, abs=0.01)

    def test_cluster_health_sorted_worst_first(self, star_cluster):
        cluster, s = star_cluster
        s.execute("DELETE FROM fact WHERE ts < 2000")
        worst = cluster_health(cluster)[0]
        assert worst.table_name == "fact"

    def test_uncommitted_deletes_not_counted(self, star_cluster):
        cluster, s = star_cluster
        s.execute("BEGIN")
        s.execute("DELETE FROM fact WHERE ts < 1000")
        # Still in flight: not yet "dead" for maintenance purposes.
        assert table_health(cluster, "fact").dead_fraction == 0.0
        s.execute("ROLLBACK")


class TestAutoMaintenance:
    def test_vacuum_triggered_by_dead_rows(self, star_cluster):
        cluster, s = star_cluster
        s.execute("DELETE FROM fact WHERE ts < 1500")
        daemon = AutoMaintenanceDaemon(
            cluster, SimClock(), dead_threshold=0.2
        )
        actions = daemon.poll()
        assert [a.table_name for a in actions] == ["fact"]
        assert table_health(cluster, "fact").dead_fraction == 0.0
        assert s.execute("SELECT count(*) FROM fact").scalar() == 1500

    def test_healthy_cluster_no_actions(self, star_cluster):
        cluster, _ = star_cluster
        daemon = AutoMaintenanceDaemon(cluster, SimClock())
        assert daemon.poll() == []

    def test_defers_under_load(self, star_cluster):
        cluster, s = star_cluster
        s.execute("DELETE FROM fact WHERE ts < 1500")
        s.execute("BEGIN")  # an open transaction = load
        daemon = AutoMaintenanceDaemon(cluster, SimClock(), dead_threshold=0.2)
        assert daemon.poll() == []
        s.execute("COMMIT")
        assert daemon.poll()

    def test_scheduled_on_clock(self, star_cluster):
        cluster, s = star_cluster
        s.execute("DELETE FROM fact WHERE ts < 1500")
        clock = SimClock()
        daemon = AutoMaintenanceDaemon(
            cluster, clock, dead_threshold=0.2, poll_interval_s=6 * HOUR
        )
        daemon.start()
        clock.advance(7 * HOUR)
        assert len(daemon.actions) == 1
        daemon.stop()
        s.execute("DELETE FROM fact WHERE ts < 2500")
        clock.advance(24 * HOUR)
        assert len(daemon.actions) == 1  # stopped daemons stay stopped


class TestAdvisor:
    def test_recommends_replicating_small_dimension(self, star_cluster):
        cluster, s = star_cluster
        for _ in range(4):
            s.execute(
                "SELECT count(*) FROM fact f JOIN dim d ON f.cust = d.cust"
            )
        advisor = TuningAdvisor(cluster.catalog, cluster.workload)
        recs = {r.kind: r for r in advisor.recommend("dim")}
        assert recs["diststyle"].suggested == "DISTSTYLE ALL"

    def test_recommends_sortkey_from_predicates(self, star_cluster):
        cluster, s = star_cluster
        for _ in range(4):
            s.execute("SELECT sum(amt) FROM fact WHERE ts BETWEEN 10 AND 500")
        advisor = TuningAdvisor(cluster.catalog, cluster.workload)
        recs = {r.kind: r for r in advisor.recommend("fact")}
        assert recs["sortkey"].suggested == "SORTKEY(ts)"

    def test_recommends_interleaved_for_mixed_predicates(self, star_cluster):
        cluster, s = star_cluster
        for _ in range(3):
            s.execute("SELECT count(*) FROM fact WHERE ts < 100")
            s.execute("SELECT count(*) FROM fact WHERE cust = 7")
        advisor = TuningAdvisor(cluster.catalog, cluster.workload)
        recs = {r.kind: r for r in advisor.recommend("fact")}
        assert recs["sortkey"].suggested.startswith("INTERLEAVED SORTKEY(")
        assert "ts" in recs["sortkey"].suggested
        assert "cust" in recs["sortkey"].suggested

    def test_no_workload_no_recommendations(self, star_cluster):
        cluster, _ = star_cluster
        fresh = TuningAdvisor(cluster.catalog, type(cluster.workload)())
        assert fresh.recommend("fact") == []

    def test_well_designed_table_passes_quietly(self):
        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        s = cluster.connect()
        s.execute(
            "CREATE TABLE big (k int, v int) DISTKEY(k) SORTKEY(v)"
        )
        rows = ",".join(f"({i % 2000}, {i})" for i in range(30_000))
        s.execute(f"INSERT INTO big VALUES {rows}")
        s.execute("CREATE TABLE big2 (k int, w int) DISTKEY(k)")
        s.execute(
            "INSERT INTO big2 VALUES "
            + ",".join(f"({i}, {i})" for i in range(2000))
        )
        for _ in range(3):
            s.execute(
                "SELECT count(*) FROM big b JOIN big2 c ON b.k = c.k "
                "WHERE b.v > 100"
            )
        advisor = TuningAdvisor(cluster.catalog, cluster.workload)
        kinds = {r.kind for r in advisor.recommend("big")}
        # Already DISTKEY(k)/SORTKEY(v): nothing to change.
        assert "distkey" not in kinds
        assert "sortkey" not in kinds


class TestRelationalize:
    def lines(self, n=300):
        out = []
        for i in range(n):
            record = {
                "id": i,
                "when": f"2015-04-{1 + i % 28:02d}",
                "ratio": i / 7,
                "tag": f"t{i % 5}",
                "ok": bool(i % 2),
            }
            if i % 9 == 0:
                record.pop("tag")
            out.append(json.dumps(record))
        return out

    def test_schema_inference(self):
        schema = infer_schema(iter(self.lines()), "events")
        kinds = {c.name: c.sql_type_name() for c in schema.columns}
        assert kinds["id"] == "int"
        assert kinds["when_"] == "date"  # reserved word suffixed
        assert kinds["ratio"] == "double precision"
        assert kinds["ok"] == "boolean"
        assert kinds["tag"].startswith("varchar")
        assert [c.name for c in schema.columns][0] == "id"  # first-seen order

    def test_type_widening(self):
        lines = [json.dumps({"x": 1}), json.dumps({"x": 2 ** 40}),
                 json.dumps({"x": 1.5})]
        schema = infer_schema(iter(lines), "t")
        assert schema.columns[0].sql_type_name() == "double precision"

    def test_conflicting_types_fall_back_to_text(self):
        lines = [json.dumps({"x": 1}), json.dumps({"x": "abc"})]
        schema = infer_schema(iter(lines), "t")
        assert schema.columns[0].sql_type_name().startswith("varchar")

    def test_key_sanitisation(self):
        lines = [json.dumps({"Event ID": 1, "9lives": "x"})]
        schema = infer_schema(iter(lines), "t")
        names = [c.name for c in schema.columns]
        assert names == ["event_id", "c_9lives"]

    def test_bad_input_reports_line(self):
        with pytest.raises(CopyError) as err:
            infer_schema(iter(["{}", "not json"]), "t")
        assert "line 2" in str(err.value)

    def test_end_to_end(self):
        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        session = cluster.connect()
        cluster.register_inline_source("lake://ev", self.lines())
        schema = relationalize(
            cluster, session, "events", "lake://ev", sortkey="when_"
        )
        assert schema.records_sampled == 300
        r = session.execute(
            "SELECT count(*), count(tag) FROM events WHERE ok"
        )
        assert r.rows[0][0] == 150
        # The reserved-word key was renamed and is queryable.
        pruned = session.execute(
            "SELECT count(*) FROM events WHERE when_ IS NOT NULL"
        )
        assert pruned.scalar() == 300
