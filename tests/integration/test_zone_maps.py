"""Zone-map pruning end to end: sorted data, sort styles, IO accounting."""

import pytest

from repro import Cluster


@pytest.fixture
def sorted_table():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=100)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE events (ts int, region int, amount float) "
        "DISTSTYLE EVEN SORTKEY(ts)"
    )
    cluster.register_inline_source(
        "inline://events",
        [f"{i}|{i % 8}|{(i % 13) * 1.5}" for i in range(8000)],
    )
    s.execute("COPY events FROM 'inline://events'")
    return cluster, s


class TestPruning:
    def test_selective_range_skips_most_blocks(self, sorted_table):
        _, s = sorted_table
        r = s.execute("SELECT count(*) FROM events WHERE ts BETWEEN 7900 AND 7999")
        assert r.scalar() == 100
        stats = r.stats.scan
        assert stats.blocks_skipped > stats.blocks_read * 5

    def test_unselective_scan_reads_everything(self, sorted_table):
        _, s = sorted_table
        r = s.execute("SELECT count(*) FROM events WHERE ts >= 0")
        assert r.scalar() == 8000
        assert r.stats.scan.blocks_skipped == 0

    def test_equality_pinpoints_one_block_per_slice(self, sorted_table):
        _, s = sorted_table
        r = s.execute("SELECT amount FROM events WHERE ts = 4242")
        assert r.rowcount == 1
        # At most one block per slice per live chain (ts + amount = 2).
        assert r.stats.scan.blocks_read <= 8

    def test_predicate_on_unsorted_column_cannot_prune(self, sorted_table):
        _, s = sorted_table
        r = s.execute("SELECT count(*) FROM events WHERE region = 3")
        assert r.scalar() == 1000
        assert r.stats.scan.blocks_skipped == 0

    def test_pruning_reduces_bytes_not_just_blocks(self, sorted_table):
        _, s = sorted_table
        narrow = s.execute("SELECT ts FROM events WHERE ts < 100")
        full = s.execute("SELECT ts FROM events")
        assert narrow.stats.scan.bytes_read < full.stats.scan.bytes_read / 5

    def test_skipping_is_semantically_invisible(self, sorted_table):
        _, s = sorted_table
        pruned = s.execute(
            "SELECT sum(amount) FROM events WHERE ts BETWEEN 1000 AND 2000"
        ).scalar()
        # Same computation forced through an unprunable expression.
        unpruned = s.execute(
            "SELECT sum(amount) FROM events WHERE ts + 0 BETWEEN 1000 AND 2000"
        ).scalar()
        assert pruned == pytest.approx(unpruned)


class TestInterleavedEndToEnd:
    @pytest.fixture
    def multi_dim(self):
        cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
        s = cluster.connect()
        s.execute(
            "CREATE TABLE grid (x int, y int, v int) DISTSTYLE EVEN "
            "INTERLEAVED SORTKEY(x, y)"
        )
        lines = []
        n = 0
        for x in range(64):
            for y in range(64):
                lines.append(f"{x}|{y}|{n}")
                n += 1
        cluster.register_inline_source("inline://grid", lines)
        s.execute("COPY grid FROM 'inline://grid'")
        return cluster, s

    def test_prunes_on_leading_dimension(self, multi_dim):
        _, s = multi_dim
        r = s.execute("SELECT count(*) FROM grid WHERE x < 4")
        assert r.scalar() == 4 * 64
        assert r.stats.scan.blocks_skipped > 0

    def test_prunes_on_trailing_dimension_too(self, multi_dim):
        # The paper's z-curve claim: "still provides utility if leading
        # columns are not specified."
        _, s = multi_dim
        r = s.execute("SELECT count(*) FROM grid WHERE y < 4")
        assert r.scalar() == 4 * 64
        assert r.stats.scan.blocks_skipped > 0

    def test_compound_key_cannot_prune_trailing_only(self):
        cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
        s = cluster.connect()
        s.execute(
            "CREATE TABLE grid (x int, y int, v int) DISTSTYLE EVEN "
            "SORTKEY(x, y)"
        )
        lines = [f"{x}|{y}|{0}" for x in range(64) for y in range(64)]
        cluster.register_inline_source("inline://grid", lines)
        s.execute("COPY grid FROM 'inline://grid'")
        r = s.execute("SELECT count(*) FROM grid WHERE y < 4")
        assert r.scalar() == 4 * 64
        # y is uncorrelated with block order under a compound (x, y) key.
        assert r.stats.scan.blocks_skipped == 0
