"""End-to-end SQL correctness against hand-computed expectations."""

import datetime

import pytest

from repro import Cluster


class TestBasicQueries:
    def test_count_star(self, loaded_session):
        assert loaded_session.execute("SELECT count(*) FROM clicks").scalar() == 800

    def test_projection_and_filter(self, loaded_session):
        r = loaded_session.execute(
            "SELECT n FROM clicks WHERE n < 5 ORDER BY n"
        )
        assert r.column("n") == [0, 1, 2, 3, 4]

    def test_expressions_in_select(self, loaded_session):
        r = loaded_session.execute(
            "SELECT n, n * 2 + 1 AS odd FROM clicks WHERE n = 10"
        )
        assert r.rows == [(10, 21)]

    def test_order_by_desc_with_limit_offset(self, loaded_session):
        r = loaded_session.execute(
            "SELECT n FROM clicks ORDER BY n DESC LIMIT 3 OFFSET 2"
        )
        assert r.column("n") == [797, 796, 795]

    def test_distinct(self, loaded_session):
        r = loaded_session.execute("SELECT DISTINCT user_id FROM clicks")
        assert sorted(r.column("user_id")) == [1, 2, 3, 4]

    def test_in_and_between(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*) FROM clicks WHERE user_id IN (1, 2) "
            "AND n BETWEEN 0 AND 99"
        )
        assert r.scalar() == 50

    def test_like(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*) FROM clicks WHERE url LIKE '%/7'"
        )
        assert r.scalar() == 80

    def test_case_expression(self, loaded_session):
        r = loaded_session.execute(
            "SELECT CASE WHEN n % 2 = 0 THEN 'even' ELSE 'odd' END p, "
            "count(*) FROM clicks GROUP BY 1 ORDER BY 1"
        )
        assert r.rows == [("even", 400), ("odd", 400)]

    def test_null_handling_in_where(self, loaded_session):
        r = loaded_session.execute("SELECT count(*) FROM users WHERE age > 0")
        assert r.scalar() == 3  # the NULL-age row contributes UNKNOWN

    def test_is_null(self, loaded_session):
        r = loaded_session.execute("SELECT id FROM users WHERE name IS NULL")
        assert r.rows == [(4,)]

    def test_scalar_on_multi_row_rejected(self, loaded_session):
        from repro.errors import ExecutionError

        result = loaded_session.execute("SELECT id FROM users")
        with pytest.raises(ExecutionError):
            result.scalar()


class TestAggregation:
    def test_global_aggregates(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*), sum(n), min(n), max(n), avg(n) FROM clicks"
        )
        assert r.rows == [(800, sum(range(800)), 0, 799, sum(range(800)) / 800)]

    def test_global_aggregate_on_empty_input(self, loaded_session):
        r = loaded_session.execute("SELECT count(*), sum(n) FROM clicks WHERE n < 0")
        assert r.rows == [(0, None)]

    def test_group_by_with_having(self, loaded_session):
        r = loaded_session.execute(
            "SELECT user_id, count(*) c FROM clicks GROUP BY user_id "
            "HAVING count(*) > 100 ORDER BY user_id"
        )
        assert r.rows == [(1, 200), (2, 200), (3, 200), (4, 200)]

    def test_group_by_expression(self, loaded_session):
        r = loaded_session.execute(
            "SELECT n % 4 AS bucket, count(*) FROM clicks GROUP BY 1 ORDER BY 1"
        )
        assert r.rows == [(0, 200), (1, 200), (2, 200), (3, 200)]

    def test_count_distinct_exact_and_approx(self, loaded_session):
        exact = loaded_session.execute(
            "SELECT count(DISTINCT url) FROM clicks"
        ).scalar()
        approx = loaded_session.execute(
            "SELECT APPROXIMATE count(DISTINCT url) FROM clicks"
        ).scalar()
        assert exact == 10
        assert abs(approx - 10) <= 1

    def test_aggregate_expression_over_results(self, loaded_session):
        r = loaded_session.execute(
            "SELECT sum(n) / count(*) FROM clicks"
        )
        assert r.scalar() == sum(range(800)) // 800

    def test_group_key_with_nulls(self, loaded_session):
        r = loaded_session.execute(
            "SELECT name, count(*) FROM users GROUP BY name ORDER BY name"
        )
        # NULL groups together; ORDER BY puts it last (NULLS LAST asc).
        assert r.rows[-1] == (None, 1)


class TestJoins:
    def test_inner_join(self, loaded_session):
        r = loaded_session.execute(
            "SELECT u.name, count(*) c FROM clicks c JOIN users u "
            "ON c.user_id = u.id GROUP BY u.name ORDER BY u.name"
        )
        assert r.rows == [("alice", 200), ("bob", 200), ("carol", 200), (None, 200)]

    def test_join_moves_no_bytes_when_colocated(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*) FROM clicks c JOIN users u ON c.user_id = u.id"
        )
        assert r.scalar() == 800
        assert r.stats.network.bytes_broadcast == 0
        assert r.stats.network.bytes_redistributed == 0

    def test_left_join_preserves_unmatched(self, loaded_session):
        r = loaded_session.execute(
            "SELECT u.id, c.n FROM users u LEFT JOIN clicks c "
            "ON u.id = c.user_id AND c.n < 0 ORDER BY u.id"
        )
        assert r.rows == [(1, None), (2, None), (3, None), (4, None)]

    def test_right_join(self, loaded_session):
        r = loaded_session.execute(
            "SELECT c.n, u.id FROM (SELECT n, user_id FROM clicks WHERE n < 2) c "
            "RIGHT JOIN users u ON c.user_id = u.id ORDER BY u.id, c.n"
        )
        # user 1 matches n=0 (0%4+1=1) and user 2 matches n=1.
        assert (None, 3) in r.rows and (None, 4) in r.rows

    def test_full_join(self, session):
        session.execute("CREATE TABLE l (k int, a varchar(4))")
        session.execute("CREATE TABLE r (k int, b varchar(4))")
        session.execute("INSERT INTO l VALUES (1,'l1'), (2,'l2')")
        session.execute("INSERT INTO r VALUES (2,'r2'), (3,'r3')")
        result = session.execute(
            "SELECT l.a, r.b FROM l FULL JOIN r ON l.k = r.k ORDER BY l.a, r.b"
        )
        assert sorted(result.rows, key=repr) == sorted(
            [("l1", None), ("l2", "r2"), (None, "r3")], key=repr
        )

    def test_join_with_replicated_dimension(self, loaded_session):
        r = loaded_session.execute(
            "SELECT t.label, count(*) FROM clicks c JOIN tiny t "
            "ON c.n % 2 = t.k GROUP BY t.label ORDER BY t.label"
        )
        assert r.rows == [("even", 400), ("odd", 400)]

    def test_cross_join(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*) FROM users CROSS JOIN tiny"
        )
        assert r.scalar() == 8

    def test_three_way_join(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*) FROM clicks c "
            "JOIN users u ON c.user_id = u.id "
            "JOIN tiny t ON c.n % 2 = t.k"
        )
        assert r.scalar() == 800

    def test_null_keys_never_match(self, session):
        session.execute("CREATE TABLE a (k int)")
        session.execute("CREATE TABLE b (k int)")
        session.execute("INSERT INTO a VALUES (1), (NULL)")
        session.execute("INSERT INTO b VALUES (1), (NULL)")
        r = session.execute("SELECT count(*) FROM a JOIN b ON a.k = b.k")
        assert r.scalar() == 1

    def test_theta_join_nested_loop(self, loaded_session):
        r = loaded_session.execute(
            "SELECT count(*) FROM users a JOIN users b ON a.id < b.id"
        )
        assert r.scalar() == 6


class TestSubqueriesAndCtes:
    def test_derived_table(self, loaded_session):
        r = loaded_session.execute(
            "SELECT max(c) FROM (SELECT user_id, count(*) c FROM clicks "
            "GROUP BY user_id) AS agg"
        )
        assert r.scalar() == 200

    def test_cte(self, loaded_session):
        r = loaded_session.execute(
            "WITH heavy AS (SELECT user_id FROM clicks WHERE n > 700) "
            "SELECT count(*) FROM heavy"
        )
        assert r.scalar() == 99

    def test_cte_joined_to_base_table(self, loaded_session):
        r = loaded_session.execute(
            "WITH agg AS (SELECT user_id, count(*) c FROM clicks GROUP BY user_id) "
            "SELECT u.name, a.c FROM agg a JOIN users u ON a.user_id = u.id "
            "ORDER BY u.name"
        )
        assert r.rows[0] == ("alice", 200)

    def test_cte_referenced_twice(self, loaded_session):
        r = loaded_session.execute(
            "WITH x AS (SELECT id FROM users) "
            "SELECT count(*) FROM x a JOIN x b ON a.id = b.id"
        )
        assert r.scalar() == 4


class TestFunctionsInQueries:
    def test_string_functions(self, loaded_session):
        r = loaded_session.execute(
            "SELECT upper(name), length(name) FROM users WHERE id = 1"
        )
        assert r.rows == [("ALICE", 5)]

    def test_date_literal_comparison(self, session):
        session.execute("CREATE TABLE ev (d date, n int)")
        session.execute(
            "INSERT INTO ev VALUES (DATE '2015-01-01', 1), (DATE '2015-06-01', 2)"
        )
        r = session.execute(
            "SELECT n FROM ev WHERE d >= DATE '2015-03-01'"
        )
        assert r.rows == [(2,)]

    def test_cast_in_query(self, loaded_session):
        r = loaded_session.execute(
            "SELECT CAST(n AS varchar(8)) FROM clicks WHERE n = 42"
        )
        assert r.rows == [("42",)]

    def test_coalesce_over_join_nulls(self, loaded_session):
        r = loaded_session.execute(
            "SELECT coalesce(name, '<unknown>') FROM users ORDER BY id"
        )
        assert r.rows[-1] == ("<unknown>",)


class TestExplainThroughSession:
    def test_explain_returns_plan_rows(self, loaded_session):
        r = loaded_session.execute(
            "EXPLAIN SELECT count(*) FROM clicks WHERE n > 5"
        )
        text = "\n".join(row[0] for row in r.rows)
        assert "Seq Scan on clicks" in text
        assert "Zone maps" in text
