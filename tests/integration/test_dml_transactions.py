"""DML, transactions, and MVCC behaviour through the session API."""

import pytest

from repro import Cluster
from repro.errors import (
    DataError,
    SerializationError,
    TableAlreadyExistsError,
    TableNotFoundError,
    TransactionError,
)


class TestDdl:
    def test_create_drop(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("DROP TABLE t")
        with pytest.raises(TableNotFoundError):
            session.execute("SELECT * FROM t")

    def test_duplicate_create_rejected(self, session):
        session.execute("CREATE TABLE t (a int)")
        with pytest.raises(TableAlreadyExistsError):
            session.execute("CREATE TABLE t (a int)")

    def test_if_not_exists(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("CREATE TABLE IF NOT EXISTS t (a int)")

    def test_drop_if_exists(self, session):
        session.execute("DROP TABLE IF EXISTS never_created")

    def test_ctas(self, loaded_session):
        r = loaded_session.execute(
            "CREATE TABLE top_users DISTSTYLE ALL AS "
            "SELECT user_id, count(*) c FROM clicks GROUP BY user_id"
        )
        assert r.rowcount == 4
        assert loaded_session.execute(
            "SELECT count(*) FROM top_users"
        ).scalar() == 4

    def test_unknown_distkey_rejected(self, session):
        from repro.errors import ColumnNotFoundError

        with pytest.raises(ColumnNotFoundError):
            session.execute("CREATE TABLE t (a int) DISTKEY(b)")


class TestInsert:
    def test_values_with_column_subset(self, session):
        session.execute("CREATE TABLE t (a int, b varchar(4), c int)")
        session.execute("INSERT INTO t (c, a) VALUES (3, 1)")
        assert session.execute("SELECT a, b, c FROM t").rows == [(1, None, 3)]

    def test_not_null_enforced(self, session):
        session.execute("CREATE TABLE t (a int NOT NULL)")
        with pytest.raises(DataError):
            session.execute("INSERT INTO t VALUES (NULL)")

    def test_type_validated(self, session):
        session.execute("CREATE TABLE t (a smallint)")
        with pytest.raises(DataError):
            session.execute("INSERT INTO t VALUES (99999)")

    def test_insert_select(self, loaded_session):
        loaded_session.execute("CREATE TABLE archive (user_id int, n int)")
        r = loaded_session.execute(
            "INSERT INTO archive SELECT user_id, n FROM clicks WHERE n < 10"
        )
        assert r.rowcount == 10

    def test_arity_mismatch_rejected(self, session):
        session.execute("CREATE TABLE t (a int, b int)")
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            session.execute("INSERT INTO t VALUES (1)")


class TestUpdateDelete:
    def test_update(self, loaded_session):
        r = loaded_session.execute("UPDATE users SET age = age + 10 WHERE id = 2")
        assert r.rowcount == 1
        assert loaded_session.execute(
            "SELECT age FROM users WHERE id = 2"
        ).scalar() == 35

    def test_update_with_null_arithmetic(self, loaded_session):
        loaded_session.execute("UPDATE users SET age = age + 1 WHERE id = 4")
        assert loaded_session.execute(
            "SELECT age FROM users WHERE id = 4"
        ).scalar() is None

    def test_update_distkey_reroutes(self, session):
        session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
        session.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        session.execute("UPDATE t SET k = k + 100 WHERE v = 10")
        r = session.execute("SELECT k FROM t ORDER BY k")
        assert r.column("k") == [2, 101]

    def test_delete_with_predicate(self, loaded_session):
        r = loaded_session.execute("DELETE FROM clicks WHERE n >= 400")
        assert r.rowcount == 400
        assert loaded_session.execute(
            "SELECT count(*) FROM clicks"
        ).scalar() == 400

    def test_delete_all(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        assert session.execute("DELETE FROM t").rowcount == 2
        assert session.execute("SELECT count(*) FROM t").scalar() == 0

    def test_delete_on_replicated_table_counts_logical_rows(self, loaded_session):
        r = loaded_session.execute("DELETE FROM tiny WHERE k = 0")
        assert r.rowcount == 1


class TestTransactions:
    def test_rollback_discards_insert(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        assert session.execute("SELECT count(*) FROM t").scalar() == 1
        session.execute("ROLLBACK")
        assert session.execute("SELECT count(*) FROM t").scalar() == 0

    def test_commit_makes_visible_to_new_sessions(self, cluster):
        a = cluster.connect()
        a.execute("CREATE TABLE t (a int)")
        a.execute("BEGIN")
        a.execute("INSERT INTO t VALUES (1)")
        b = cluster.connect()
        assert b.execute("SELECT count(*) FROM t").scalar() == 0
        a.execute("COMMIT")
        assert b.execute("SELECT count(*) FROM t").scalar() == 1

    def test_rollback_discards_delete(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("BEGIN")
        session.execute("DELETE FROM t")
        session.execute("ROLLBACK")
        assert session.execute("SELECT count(*) FROM t").scalar() == 2

    def test_repeatable_read_within_transaction(self, cluster):
        writer = cluster.connect()
        writer.execute("CREATE TABLE t (a int)")
        writer.execute("INSERT INTO t VALUES (1)")
        reader = cluster.connect()
        reader.execute("BEGIN")
        assert reader.execute("SELECT count(*) FROM t").scalar() == 1
        writer.execute("INSERT INTO t VALUES (2)")
        # Reader's snapshot predates the writer's commit.
        assert reader.execute("SELECT count(*) FROM t").scalar() == 1
        reader.execute("COMMIT")
        assert reader.execute("SELECT count(*) FROM t").scalar() == 2

    def test_concurrent_delete_conflict(self, cluster):
        setup = cluster.connect()
        setup.execute("CREATE TABLE t (a int)")
        setup.execute("INSERT INTO t VALUES (1)")
        a = cluster.connect()
        b = cluster.connect()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("DELETE FROM t WHERE a = 1")
        b.execute("DELETE FROM t WHERE a = 1")
        a.execute("COMMIT")
        with pytest.raises(SerializationError):
            b.execute("COMMIT")

    def test_nested_begin_rejected(self, session):
        session.execute("BEGIN")
        with pytest.raises(TransactionError):
            session.execute("BEGIN")
        session.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, session):
        with pytest.raises(TransactionError):
            session.execute("COMMIT")

    def test_failed_statement_rolls_back_autocommit_txn(self, session):
        session.execute("CREATE TABLE t (a smallint)")
        with pytest.raises(DataError):
            session.execute("INSERT INTO t VALUES (1), (99999)")
        # The whole statement's transaction aborted: nothing visible.
        assert session.execute("SELECT count(*) FROM t").scalar() == 0


class TestVacuum:
    def test_vacuum_reclaims_deleted_rows(self, loaded_cluster):
        session = loaded_cluster.connect()
        session.execute("DELETE FROM clicks WHERE n < 400")
        before = loaded_cluster.table_bytes("clicks")
        session.execute("VACUUM clicks")
        after = loaded_cluster.table_bytes("clicks")
        assert after < before
        assert session.execute("SELECT count(*) FROM clicks").scalar() == 400

    def test_vacuum_restores_sort_order_pruning(self, loaded_cluster):
        session = loaded_cluster.connect()
        # Append unsorted data on top of the sorted load.
        rows = ",".join(f"(1, 'u', {n}, 0.0)" for n in range(800, 1600))
        session.execute(f"INSERT INTO clicks VALUES {rows}")
        session.execute("VACUUM clicks")
        r = session.execute("SELECT count(*) FROM clicks WHERE n >= 1590")
        assert r.scalar() == 10
        assert r.stats.scan.blocks_skipped > r.stats.scan.blocks_read

    def test_vacuum_all_tables(self, loaded_session):
        loaded_session.execute("VACUUM")  # must not raise


class TestExecuteScript:
    def test_script_returns_all_results(self, session):
        results = session.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); "
            "SELECT * FROM t;"
        )
        assert [r.command for r in results] == ["CREATE TABLE", "INSERT", "SELECT"]
        assert results[-1].rows == [(1,)]
