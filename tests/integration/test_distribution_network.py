"""Distribution styles and interconnect accounting: the co-location story.

"Using distribution keys allows join processing on that key to be
co-located on individual slices, reducing IO, CPU and network contention
and avoiding the redistribution of intermediate results" (§2.1).
"""

import pytest

from repro import Cluster


@pytest.fixture
def star():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=128)
    s = cluster.connect()
    s.execute("CREATE TABLE fact_key (k int, v int) DISTKEY(k)")
    s.execute("CREATE TABLE dim_key (k int, label varchar(8)) DISTKEY(k)")
    s.execute("CREATE TABLE fact_even (k int, v int) DISTSTYLE EVEN")
    s.execute("CREATE TABLE dim_even (k int, label varchar(8)) DISTSTYLE EVEN")
    s.execute("CREATE TABLE dim_all (k int, label varchar(8)) DISTSTYLE ALL")
    fact_rows = ",".join(f"({i % 40}, {i})" for i in range(2000))
    dim_rows = ",".join(f"({i}, 'd{i}')" for i in range(40))
    s.execute(f"INSERT INTO fact_key VALUES {fact_rows}")
    s.execute(f"INSERT INTO fact_even VALUES {fact_rows}")
    s.execute(f"INSERT INTO dim_key VALUES {dim_rows}")
    s.execute(f"INSERT INTO dim_even VALUES {dim_rows}")
    s.execute(f"INSERT INTO dim_all VALUES {dim_rows}")
    return cluster, s


class TestDataPlacement:
    def test_even_balances_rows(self, star):
        cluster, _ = star
        counts = [
            store.shard("fact_even").row_count
            for store in cluster.slice_stores
        ]
        assert max(counts) - min(counts) <= 1

    def test_key_coalesces_equal_keys(self, star):
        cluster, s = star
        # All rows of one key value must live on exactly one slice.
        holders = [
            store
            for store in cluster.slice_stores
            if 7 in store.shard("fact_key").chain("k").read_all()
        ]
        assert len(holders) == 1

    def test_all_replicates_everywhere(self, star):
        cluster, _ = star
        for store in cluster.slice_stores:
            assert store.shard("dim_all").row_count == 40

    def test_all_table_query_counts_once(self, star):
        _, s = star
        assert s.execute("SELECT count(*) FROM dim_all").scalar() == 40


class TestJoinMovement:
    def same(self, s, sql):
        r = s.execute(sql)
        return r

    def test_colocated_join_zero_movement(self, star):
        _, s = star
        r = s.execute(
            "SELECT count(*) FROM fact_key f JOIN dim_key d ON f.k = d.k"
        )
        assert r.scalar() == 2000
        assert r.stats.network.total_bytes == r.stats.network.bytes_to_leader

    def test_replicated_dim_join_zero_movement(self, star):
        _, s = star
        r = s.execute(
            "SELECT count(*) FROM fact_even f JOIN dim_all d ON f.k = d.k"
        )
        assert r.scalar() == 2000
        assert r.stats.network.bytes_broadcast == 0
        assert r.stats.network.bytes_redistributed == 0

    def test_even_even_join_moves_data(self, star):
        _, s = star
        r = s.execute(
            "SELECT count(*) FROM fact_even f JOIN dim_even d ON f.k = d.k"
        )
        assert r.scalar() == 2000
        moved = r.stats.network.bytes_broadcast + r.stats.network.bytes_redistributed
        assert moved > 0

    def test_broadcast_cheaper_than_shuffle_for_small_dim(self, star):
        _, s = star
        # dim_even is tiny: the planner should broadcast it rather than
        # redistribute the big fact side.
        r = s.execute(
            "SELECT count(*) FROM fact_even f JOIN dim_even d ON f.k = d.k"
        )
        assert r.stats.network.bytes_broadcast > 0
        assert r.stats.network.bytes_redistributed == 0

    def test_results_identical_across_strategies(self, star):
        _, s = star
        reference = None
        for fact, dim in (
            ("fact_key", "dim_key"),
            ("fact_even", "dim_all"),
            ("fact_even", "dim_even"),
            ("fact_key", "dim_even"),
        ):
            r = s.execute(
                f"SELECT d.label, sum(f.v) s FROM {fact} f "
                f"JOIN {dim} d ON f.k = d.k GROUP BY d.label ORDER BY d.label"
            )
            if reference is None:
                reference = r.rows
            else:
                assert r.rows == reference, (fact, dim)


class TestAggregationMovement:
    def test_local_aggregation_on_distkey(self, star):
        _, s = star
        r = s.execute("SELECT k, count(*) FROM fact_key GROUP BY k")
        assert len(r.rows) == 40
        # Partial states are complete per slice: only final rows travel.
        assert r.stats.network.bytes_redistributed == 0

    def test_global_aggregate_moves_only_partials(self, star):
        _, s = star
        r = s.execute("SELECT sum(v), count(*) FROM fact_even")
        # 4 slices × 1 partial state each, far less than 2000 rows.
        assert r.stats.network.bytes_to_leader < 2000


class TestResultCorrectnessUnderDistribution:
    def test_group_by_on_even_table(self, star):
        _, s = star
        r = s.execute(
            "SELECT k, count(*) c FROM fact_even GROUP BY k ORDER BY k LIMIT 3"
        )
        assert r.rows == [(0, 50), (1, 50), (2, 50)]

    def test_distinct_on_distkey(self, star):
        _, s = star
        r = s.execute("SELECT count(DISTINCT k) FROM fact_key")
        assert r.scalar() == 40
