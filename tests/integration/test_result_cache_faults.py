"""Result-cache safety across the failure-recovery paths.

The acceptance bar for the result cache is that a hit is *never* stale,
including when data moves underneath it through the fault machinery
rather than through SQL: a bit-flipped block, a scrub repair that
rewrites block content in place, a worker-crash recovery re-execution,
and a snapshot restore. Each scenario primes the cache, drives one
recovery path, and then checks the next read against ground truth
computed from first principles.
"""

import pytest

from repro import Cluster
from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.faults import FaultInjector, FaultPlan

ROWS = 2000
COUNT_SUM = [(ROWS, sum(range(ROWS)))]
SQL = "SELECT count(*), sum(v) FROM t"


def _managed(seed):
    env = CloudEnvironment(seed=seed)
    env.ec2.preconfigure("dw2.large", 12)
    service = RedshiftService(env)
    managed, _ = service.create_cluster(node_count=2, block_capacity=64)
    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    session.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(ROWS))
    )
    managed.replication.sync_from_cluster()
    return env, service, managed, session


def _sealed_block(cluster, table, column):
    return next(
        block
        for store in cluster.slice_stores
        if store.has_shard(table)
        for block in store.shard(table).chain(column).blocks
    )


def _entry_for(cluster, table):
    return next(
        (e for e in cluster.result_cache.entries() if table in e.tables),
        None,
    )


class TestBitFlipAndScrub:
    def test_corruption_invalidates_and_repair_recomputes(self):
        _, _, managed, session = _managed(seed=31)
        assert session.execute(SQL).rows == COUNT_SUM  # miss, stored
        assert session.execute(SQL).stats.result_cache_hit

        # A silent bit-flip lands on a sealed block of the scanned
        # column. The flip itself must kill the cached entry — serving
        # the pre-flip rows would mask the corruption from the scrub's
        # readers and from any query racing the repair.
        _sealed_block(managed.engine, "t", "v").corrupt()
        entry = _entry_for(managed.engine, "t")
        assert entry is not None and not entry.valid()

        # Scrub repairs from the mirror (rewriting content in place,
        # which moves the epoch again). The next read recomputes.
        report = managed.replication.scrub(managed.backups.s3_block_reader)
        assert report.repaired and not report.unrepairable
        fresh = session.execute(SQL)
        assert not fresh.stats.result_cache_hit
        assert fresh.rows == COUNT_SUM
        # And the recomputed result is cacheable again.
        assert session.execute(SQL).stats.result_cache_hit

    def test_clean_scrub_does_not_invalidate(self):
        """A scrub that finds nothing to fix rewrites nothing, so warm
        entries survive it — repair precision, not blanket flushes."""
        _, _, managed, session = _managed(seed=32)
        session.execute(SQL)
        report = managed.replication.scrub(managed.backups.s3_block_reader)
        assert report.repaired == [] and report.unrepairable == []
        assert session.execute(SQL).stats.result_cache_hit


class TestWorkerCrashRecovery:
    def _crashy_cluster(self):
        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=32)
        injector = FaultInjector(FaultPlan(seed=7).worker_crashes(rate=1.0))
        cluster.attach_faults(injector)
        session = cluster.connect(executor="parallel", parallelism=2)
        session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
        session.execute(
            "INSERT INTO t VALUES "
            + ",".join(f"({i},{i})" for i in range(ROWS))
        )
        return cluster, injector, session

    def test_recovered_execution_is_cached_and_correct(self):
        cluster, injector, session = self._crashy_cluster()
        # First parallel query registers the worker slices, which bumps
        # the wildcard epoch mid-flight — so its own stored entry is
        # conservatively stale. Warm up the pool first.
        session.execute("SELECT count(*) FROM t")

        cold = session.execute(SQL)
        assert cold.rows == COUNT_SUM
        kinds = {event.kind for event in injector.log}
        assert "worker_crash" in kinds  # the morsels really crashed
        assert "recovery:morsel_rerun" in kinds

        warm = session.execute(SQL)
        assert warm.stats.result_cache_hit
        assert warm.rows == cold.rows

    def test_mutation_under_crashes_recomputes_fresh(self):
        cluster, _, session = self._crashy_cluster()
        session.execute("SELECT count(*) FROM t")  # pool warm-up
        assert session.execute(SQL).rows == COUNT_SUM
        session.execute("INSERT INTO t VALUES (9999, 9999)")
        fresh = session.execute(SQL)
        assert not fresh.stats.result_cache_hit
        assert fresh.rows == [(ROWS + 1, sum(range(ROWS)) + 9999)]


class TestRestore:
    def test_restored_cluster_serves_snapshot_data_not_source_cache(self):
        _, service, managed, session = _managed(seed=33)
        service.snapshot_cluster(managed.cluster_id, label="pre")
        # The source keeps mutating (and caching) after the snapshot.
        session.execute("INSERT INTO t VALUES (9999, 9999)")
        post = session.execute(SQL)
        assert post.rows == [(ROWS + 1, sum(range(ROWS)) + 9999)]

        restored, _, _ = service.restore_cluster(managed.cluster_id, "pre")
        r = restored.connect()
        back = r.execute(SQL)
        # Snapshot-time data, not the source's cached post-snapshot rows.
        assert back.rows == COUNT_SUM
        assert not back.stats.result_cache_hit
        # The restored cluster's own cache works from there on.
        assert r.execute(SQL).stats.result_cache_hit
        r.execute("INSERT INTO t VALUES (-1, 0)")
        assert r.execute(SQL).rows == [(ROWS + 1, sum(range(ROWS)))]

    def test_restore_does_not_revive_source_staleness(self):
        """Epochs are tracked per table *name* process-wide, so shard
        rebuilds during restore conservatively invalidate same-named
        entries on the source too — the source then recomputes, it never
        serves a wrong answer."""
        _, service, managed, session = _managed(seed=34)
        service.snapshot_cluster(managed.cluster_id, label="pre")
        session.execute(SQL)
        service.restore_cluster(managed.cluster_id, "pre")
        again = session.execute(SQL)
        assert again.rows == COUNT_SUM
