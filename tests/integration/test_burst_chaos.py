"""Chaos drills for concurrency-scaling burst routing.

The tentpole's fault story: snapshot-restore failures while
provisioning, and burst-node crashes mid-query, must degrade to the
main cluster without losing or double-executing a single query — and
every result must be bit-identical to a no-burst run.
"""

import threading
import time

import pytest

from repro.cloud.environment import CloudEnvironment
from repro.controlplane.service import ClusterState, RedshiftService
from repro.engine.wlm import QueueConfig
from repro.faults.plan import FaultKind, FaultSpec
from repro.server import BurstConfig, ClusterServer, ServerConfig
from repro.sql.parser import parse_statement
from repro.systables.tables import SYSTEM_TABLE_COLUMNS
from repro.util.fingerprint import result_fingerprint

DRILL_QUERIES = [
    "SELECT k, v FROM sales ORDER BY k LIMIT 20",
    "SELECT COUNT(*), SUM(v) FROM sales",
    "SELECT k % 7, COUNT(*) FROM sales GROUP BY k % 7 ORDER BY 1",
]


def _canonical(sql):
    """stl_query records the re-serialized statement text."""
    return parse_statement(sql).to_sql()


class _Harness:
    def __init__(self, seed):
        self.env = CloudEnvironment(seed=seed)
        self.env.ec2.preconfigure("dw2.large", 16)
        self.svc = RedshiftService(self.env)
        self.managed, _ = self.svc.create_cluster(
            "main", node_count=2, block_capacity=64
        )
        # Result-cache hits bypass WLM admission entirely; the drills
        # need real queue pressure and real (re-)executions.
        self.managed.engine.enable_result_cache_default = False
        loader = self.managed.connect()
        loader.execute("CREATE TABLE sales (k int, v int) DISTKEY(k)")
        loader.execute(
            "INSERT INTO sales VALUES "
            + ",".join(f"({i},{i * 3})" for i in range(400))
        )
        self.svc.snapshot_cluster("main", kind="system")
        # Baseline fingerprints from a plain no-burst session.
        self.baseline = {}
        for sql in DRILL_QUERIES:
            result = loader.execute(sql)
            self.baseline[sql] = result_fingerprint(
                result.columns, result.rows
            )
        self.managed.engine.systables.store.clear("stl_query")

        self.server = ClusterServer(
            self.managed.engine,
            ServerConfig(
                queues=(
                    QueueConfig("default", slots=1, memory_fraction=1.0),
                )
            ),
        )
        self.router = self.svc.enable_concurrency_scaling(
            "main",
            self.server,
            BurstConfig(
                burst_queue_depth_threshold=1,
                burst_idle_timeout_s=10_000.0,
                provision_cooldown_s=60.0,
            ),
        )
        self.executed = []  # (sql, fingerprint) per drill execution

    def run(self, handle, sql):
        result = handle.execute(sql)
        self.executed.append(
            (sql, result_fingerprint(result.columns, result.rows))
        )
        return result

    def under_pressure(self, trigger_sql):
        """Execute *trigger_sql* while the queue genuinely backs up.

        Session A's statement grabs the only WLM slot and parks;
        session B queues behind it (waiting=1); session C then runs
        *trigger_sql*, observes the pressure, and is the query the
        router may scale out for.
        """
        a = self.server.open_session()
        b = self.server.open_session()
        c = self.server.open_session()
        gate = a._gate
        release = threading.Event()
        held = threading.Event()

        class _Hold(Exception):
            pass

        def holding_execute(sql):
            gate.admit("hold")
            held.set()
            release.wait(timeout=10.0)
            raise _Hold()

        a.session.execute = holding_execute
        future_a = a.submit("SELECT 1")
        assert held.wait(timeout=5.0), "slot holder never admitted"
        b_sql = DRILL_QUERIES[1]
        future_b = b.submit(b_sql)
        deadline = time.perf_counter() + 5.0
        while gate.waiting < 1 and time.perf_counter() < deadline:
            time.sleep(0.005)
        assert gate.waiting >= 1, "queue pressure never built"
        try:
            result = self.run(c, trigger_sql)
        finally:
            release.set()
        with pytest.raises(_Hold):
            future_a.result(timeout=10.0)
        result_b = future_b.result(timeout=10.0)
        self.executed.append(
            (b_sql, result_fingerprint(result_b.columns, result_b.rows))
        )
        for handle in (a, b, c):
            handle.close()
        return result

    def assert_no_lost_or_duplicated(self):
        """Main's stl_query holds exactly one success row per drill
        execution, and every fingerprint matches the no-burst baseline."""
        rows = self.managed.engine.systables.rows("stl_query")
        col = {
            name: i
            for i, (name, _) in enumerate(
                SYSTEM_TABLE_COLUMNS["stl_query"]
            )
        }
        success = [r for r in rows if r[col["state"]] == "success"]
        expected = {}
        for sql, _ in self.executed:
            expected[sql] = expected.get(sql, 0) + 1
        for sql, count in expected.items():
            text = _canonical(sql)
            recorded = [r for r in success if r[col["querytxt"]] == text]
            assert len(recorded) == count, (
                f"{sql!r}: {len(recorded)} recorded vs {count} executed"
            )
            for r in recorded:
                assert r[col["result_fingerprint"]] == self.baseline[sql]
        for sql, fingerprint in self.executed:
            assert fingerprint == self.baseline[sql], sql
        return success, col


class TestProvisionFaults:
    def test_s3_outage_fails_provision_then_recovers_after_cooldown(self):
        h = _Harness(seed=91)
        # Wide window: instance boot advances the sim clock before the
        # restore's first S3 request; the outage must still be live then.
        outage = h.env.faults.add(
            FaultSpec(
                FaultKind.S3_OUTAGE,
                at_s=h.env.clock.now,
                until_s=h.env.clock.now + 100_000.0,
            )
        )
        # Pressure builds, the restore hits the outage, the query and
        # everything queued behind it still completes on main.
        h.under_pressure(DRILL_QUERIES[0])
        assert h.router.provision_failures == 1
        assert h.router.active is None
        h.env.faults.cancel(outage)

        # Still cooling down: pressure does not retry the restore.
        h.under_pressure(DRILL_QUERIES[2])
        assert h.router.provision_failures == 1
        assert h.router.provisions == 0

        # Past the cooldown the next pressure sample provisions, and
        # the triggering query itself rides the burst cluster.
        h.env.clock.advance(61.0)
        h.under_pressure(DRILL_QUERIES[0])
        assert h.router.provisions == 1
        assert h.router.active is not None

        success, col = h.assert_no_lost_or_duplicated()
        routed = {r[col["routed_to"]] for r in success}
        assert "burst" in routed and "main" in routed
        h.server.shutdown()
        assert h.router.active is None  # shutdown retires the burst

    def test_s3_error_window_is_retried_through(self):
        """Transient 503s during the restore are absorbed by backoff:
        provisioning succeeds and routed results stay identical."""
        h = _Harness(seed=92)
        window = h.env.faults.add(
            FaultSpec(
                FaultKind.S3_ERROR_WINDOW,
                at_s=h.env.clock.now,
                until_s=h.env.clock.now + 3600.0,
                rate=0.2,
            )
        )
        h.under_pressure(DRILL_QUERIES[1])
        h.env.faults.cancel(window)
        assert h.router.provisions == 1
        assert h.router.provision_failures == 0
        h.assert_no_lost_or_duplicated()
        h.server.shutdown()


class TestBurstNodeCrash:
    def test_crash_mid_query_falls_back_without_loss(self):
        h = _Harness(seed=93)
        h.under_pressure(DRILL_QUERIES[0])
        assert h.router.provisions == 1
        burst = h.router.active
        assert burst is not None

        # A routed query now lands on a crashing burst node. The burst
        # cluster has no recovery coordinator, so the failure surfaces
        # to the router, which retires the clone and re-runs on main.
        h.env.faults.add(
            FaultSpec(
                FaultKind.NODE_CRASH,
                at_s=h.env.clock.now,
                target="node-0",
            )
        )
        handle = h.server.open_session()
        h.run(handle, DRILL_QUERIES[2])
        assert h.router.fallbacks == 1
        assert h.router.retirements == 1
        assert h.router.active is None
        assert burst.state == "retired"
        assert (
            h.svc.clusters[burst.cluster_id].state is ClusterState.DELETED
        )

        # More queries keep flowing on main afterwards.
        h.run(handle, DRILL_QUERIES[1])
        handle.close()

        success, col = h.assert_no_lost_or_duplicated()
        # The crashed query appears exactly once, recorded on main.
        crashed = [
            r
            for r in success
            if r[col["querytxt"]] == _canonical(DRILL_QUERIES[2])
        ]
        assert [r[col["routed_to"]] for r in crashed] == ["main"]
        # And stv_burst_clusters tells the story through SQL.
        rows = h.server.execute(
            "SELECT cluster_id, state, fallbacks FROM stv_burst_clusters"
        ).rows
        assert rows == [(burst.cluster_id, "retired", 1)]
        h.server.shutdown()
