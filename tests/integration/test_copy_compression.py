"""COPY ingest: sources, formats, auto-compression, statistics."""

import pytest

from repro import Cluster
from repro.errors import CopyError


@pytest.fixture
def copy_cluster():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=128)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE logs (seq bigint, region varchar(16), hits int, "
        "rate float, ok boolean, day date) DISTKEY(seq) SORTKEY(seq)"
    )
    return cluster, s


def lines_for(n):
    return [
        f"{i}|region-{i % 4}|{i % 100}|{(i % 7) * 0.5}|{'t' if i % 2 else 'f'}|"
        f"2015-0{1 + i % 9}-15"
        for i in range(n)
    ]


class TestCopyBasics:
    def test_inline_source(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(500))
        r = s.execute("COPY logs FROM 'inline://logs'")
        assert r.rowcount == 500
        assert s.execute("SELECT count(*) FROM logs").scalar() == 500

    def test_unregistered_source_rejected(self, copy_cluster):
        _, s = copy_cluster
        with pytest.raises(CopyError):
            s.execute("COPY logs FROM 's3://nowhere/file'")

    def test_prefix_source_provider(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_source(
            "gen://", lambda uri: iter(lines_for(int(uri.rsplit("/", 1)[1])))
        )
        r = s.execute("COPY logs FROM 'gen://logs/250'")
        assert r.rowcount == 250

    def test_custom_delimiter_and_null_marker(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source(
            "inline://csv", ["1,east,5,0.5,t,2015-01-01", "2,\\N,6,0.5,f,2015-01-02"]
        )
        s.execute("COPY logs FROM 'inline://csv' DELIMITER ',' NULL AS '\\N'")
        r = s.execute("SELECT region FROM logs ORDER BY seq")
        assert r.column("region") == ["east", None]

    def test_field_count_mismatch(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://bad", ["1|east|5"])
        with pytest.raises(CopyError) as err:
            s.execute("COPY logs FROM 'inline://bad'")
        assert "line 1" in str(err.value)

    def test_bad_value_reports_line_number(self, copy_cluster):
        cluster, s = copy_cluster
        lines = lines_for(3) + ["oops|r|1|0.5|t|2015-01-01"]
        cluster.register_inline_source("inline://bad2", lines)
        with pytest.raises(CopyError) as err:
            s.execute("COPY logs FROM 'inline://bad2'")
        assert "line 4" in str(err.value)

    def test_column_subset(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://two", ["5|west", "6|east"])
        s.execute("COPY logs (seq, region) FROM 'inline://two'")
        r = s.execute("SELECT seq, region, hits FROM logs ORDER BY seq")
        assert r.rows == [(5, "west", None), (6, "east", None)]

    def test_json_format(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source(
            "inline://json",
            [
                '{"seq": 1, "region": "eu", "hits": 9, "rate": 0.5, '
                '"ok": true, "day": "2015-03-01"}',
                '{"seq": 2, "region": "us"}',
            ],
        )
        s.execute("COPY logs FROM 'inline://json' JSON")
        r = s.execute("SELECT seq, region, hits, ok FROM logs ORDER BY seq")
        assert r.rows[0] == (1, "eu", 9, True)
        assert r.rows[1] == (2, "us", None, None)

    def test_malformed_json_rejected(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://badjson", ["{not json"])
        with pytest.raises(CopyError):
            s.execute("COPY logs FROM 'inline://badjson' JSON")

    def test_copy_sorts_on_load(self, copy_cluster):
        cluster, s = copy_cluster
        # Enough rows that each slice seals several blocks, so sorting
        # produces prunable value ranges.
        shuffled = lines_for(3000)
        import random

        random.Random(5).shuffle(shuffled)
        cluster.register_inline_source("inline://shuffled", shuffled)
        s.execute("COPY logs FROM 'inline://shuffled'")
        # Sorted-on-load makes zone maps effective immediately.
        r = s.execute("SELECT count(*) FROM logs WHERE seq >= 2990")
        assert r.scalar() == 10
        assert r.stats.scan.blocks_skipped > 0


class TestAutoCompression:
    def test_compupdate_picks_codecs_on_first_load(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(2000))
        s.execute("COPY logs FROM 'inline://logs'")
        table = cluster.catalog.table("logs")
        encodings = {c.name: c.encode for c in table.columns}
        assert encodings["seq"] in ("delta", "delta32k", "mostly16", "mostly32")
        assert encodings["region"] != "raw"  # 4 distinct strings: dictionary-ish

    def test_compupdate_off_keeps_raw(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(500))
        s.execute("COPY logs FROM 'inline://logs' COMPUPDATE OFF")
        table = cluster.catalog.table("logs")
        assert all(c.encode is None for c in table.columns)

    def test_explicit_encode_respected(self, copy_cluster):
        cluster, _ = copy_cluster
        s = cluster.connect()
        s.execute("CREATE TABLE enc (a bigint ENCODE runlength, b bigint)")
        cluster.register_inline_source(
            "inline://enc", [f"{i}|{i}" for i in range(1000)]
        )
        s.execute("COPY enc FROM 'inline://enc'")
        table = cluster.catalog.table("enc")
        assert table.column("a").encode == "runlength"  # user's dusty knob
        assert table.column("b").encode in ("delta", "delta32k", "mostly16", "mostly32")

    def test_second_load_does_not_reanalyze(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(500))
        s.execute("COPY logs FROM 'inline://logs'")
        first = {c.name: c.encode for c in cluster.catalog.table("logs").columns}
        cluster.register_inline_source("inline://more", lines_for(100))
        s.execute("COPY logs FROM 'inline://more'")
        second = {c.name: c.encode for c in cluster.catalog.table("logs").columns}
        assert first == second

    def test_compression_reduces_footprint(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(4000))
        s.execute("COPY logs FROM 'inline://logs'")
        compressed = cluster.table_bytes("logs")
        # Same data without compression.
        s.execute(
            "CREATE TABLE logs_raw (seq bigint, region varchar(16), hits int,"
            " rate float, ok boolean, day date)"
        )
        cluster.register_inline_source("inline://logs2", lines_for(4000))
        s.execute("COPY logs_raw FROM 'inline://logs2' COMPUPDATE OFF")
        raw = cluster.table_bytes("logs_raw")
        assert compressed < raw * 0.6

    def test_analyze_compression_report(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(1000))
        s.execute("COPY logs FROM 'inline://logs' COMPUPDATE OFF")
        r = s.execute("ANALYZE COMPRESSION logs")
        assert r.columns == ["column", "encoding", "est_reduction_ratio"]
        assert len(r.rows) == 6
        by_column = {row[0]: row for row in r.rows}
        assert by_column["seq"][1] != "raw"


class TestStatistics:
    def test_statupdate_refreshes_stats(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(700))
        s.execute("COPY logs FROM 'inline://logs'")
        stats = cluster.catalog.table("logs").statistics
        assert stats.row_count == 700
        assert not stats.stale
        assert stats.columns["seq"].low == 0
        assert stats.columns["seq"].high == 699
        ndv = stats.columns["region"].distinct_count
        assert 3 <= ndv <= 5

    def test_statupdate_off(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(100))
        s.execute("COPY logs FROM 'inline://logs' STATUPDATE OFF")
        assert cluster.catalog.table("logs").statistics.stale

    def test_analyze_statement(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source("inline://logs", lines_for(100))
        s.execute("COPY logs FROM 'inline://logs' STATUPDATE OFF")
        s.execute("ANALYZE logs")
        assert cluster.catalog.table("logs").statistics.row_count == 100

    def test_null_fraction(self, copy_cluster):
        cluster, s = copy_cluster
        cluster.register_inline_source(
            "inline://n", ["1|", "2|x", "3|", "4|"],
        )
        s.execute("COPY logs (seq, region) FROM 'inline://n'")
        stats = cluster.catalog.table("logs").statistics
        assert stats.columns["region"].null_fraction == pytest.approx(0.75)
