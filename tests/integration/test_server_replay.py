"""End-to-end server + replay drills.

Two acceptance scenarios from the concurrent-server work:

1. **Round trip** — a multi-session workload (>= 50 queries) generated
   through the :class:`ClusterServer` is captured from ``stl_query`` and
   replayed at original (1x) and accelerated (4x) pacing against fresh
   same-data clusters; every comparable result must be bit-identical
   and the latency comparison must be populated.

2. **Chaos drill** — the same captured workload replayed while a
   :class:`FaultPlan` keeps WORKER_CRASH and DISK_MEDIA windows open.
   With a :class:`RecoveryCoordinator` installed, segment retries must
   absorb every injected fault: zero result mismatches, zero new
   errors.
"""

from __future__ import annotations

import threading

import pytest

from repro import Cluster
from repro.faults import FaultInjector, FaultPlan
from repro.faults.recovery import RecoveryCoordinator
from repro.replay import capture_workload, diff_capture, replay
from repro.server import ClusterServer, ServerConfig

ROWS = 400
KEYS = 20


def prepared_cluster() -> Cluster:
    """A cluster holding the reference data set, with a clean stl_query."""
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
    session = cluster.connect()
    session.execute("CREATE TABLE sales (k int, v int)")
    session.execute(
        "INSERT INTO sales VALUES "
        + ",".join(f"({i % KEYS}, {i})" for i in range(ROWS))
    )
    cluster.systables.store.clear("stl_query")
    return cluster


def run_fleet(cluster: Cluster, sessions: int = 5, per_session: int = 12):
    """Drive a concurrent read fleet through the server; >= 50 queries."""
    server = ClusterServer(cluster, ServerConfig())
    threads = []

    def client(index: int) -> None:
        handle = server.open_session(user_name=f"client-{index}")
        for step in range(per_session):
            low = (index * 3 + step) % KEYS
            handle.execute(
                f"SELECT count(*), sum(v) FROM sales WHERE k >= {low}"
            )
        handle.close()

    for index in range(sessions):
        thread = threading.Thread(target=client, args=(index,))
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert all(not thread.is_alive() for thread in threads)
    server.shutdown()


@pytest.fixture(scope="module")
def captured():
    source = prepared_cluster()
    run_fleet(source)
    workload = capture_workload(source)
    assert len(workload) >= 50
    assert len(workload.sessions()) >= 5
    return workload


class TestRoundTrip:
    @pytest.mark.parametrize("speedup", [1.0, 4.0])
    def test_replay_is_bit_identical(self, captured, speedup):
        target = prepared_cluster()
        report = replay(captured, target, speedup=speedup)
        diff = diff_capture(captured, report)
        assert report.error_count == 0
        assert len(report.queries) == len(captured)
        assert diff.compared >= 50
        assert diff.mismatches == []
        assert diff.new_errors == []
        assert diff.missing == []
        assert diff.results_identical
        assert diff.latency is not None
        assert diff.latency.queries >= 50

    def test_accelerated_replay_compresses_wall_time(self, captured):
        # 4x pacing finishes in roughly a quarter of the trace span;
        # allow slack for scheduling, but it must beat the 1x span.
        target = prepared_cluster()
        report = replay(captured, target, speedup=4.0)
        assert report.wall_s < max(captured.duration_s, 0.05) * 1.5


class TestChaosReplay:
    def test_zero_mismatches_under_faults(self, captured):
        """WORKER_CRASH + DISK_MEDIA windows held open for the whole
        replay: recovery (serial morsel re-run, media retry) must keep
        every result bit-identical to the fault-free capture."""
        target = prepared_cluster()
        plan = (
            FaultPlan(seed=2015)
            .worker_crashes(at_s=0.0, rate=0.2)
            .disk_media_errors(at_s=0.0, until_s=float("inf"), rate=0.05)
        )
        injector = FaultInjector(plan)
        target.attach_faults(injector)
        RecoveryCoordinator(target, injector=injector)
        # Parallel executor with thread pools: worker crashes actually
        # fire (morsels are dispatched), and replay threads can share
        # the in-process cluster.
        report = replay(
            captured,
            target,
            speedup=8.0,
            executor="parallel",
            session_kwargs={"pool_mode": "thread"},
        )
        diff = diff_capture(captured, report)
        assert report.error_count == 0
        assert diff.mismatches == []
        assert diff.new_errors == []
        assert diff.missing == []
        # count/sum over ints are executor-independent, so the faulted
        # parallel run still compares bit-identical to the capture.
        assert diff.compared >= 50
        assert diff.results_identical

    def test_faults_actually_fired(self, captured):
        """The drill is vacuous if the windows never triggered."""
        target = prepared_cluster()
        plan = (
            FaultPlan(seed=7)
            .worker_crashes(at_s=0.0, rate=0.5)
            .disk_media_errors(at_s=0.0, until_s=float("inf"), rate=0.1)
        )
        injector = FaultInjector(plan)
        target.attach_faults(injector)
        RecoveryCoordinator(target, injector=injector)
        replay(
            captured,
            target,
            speedup=8.0,
            executor="parallel",
            session_kwargs={"pool_mode": "thread"},
        )
        kinds = {event.kind for event in injector.log}
        assert "worker_crash" in kinds or "disk_media" in kinds
