"""Set operations and uncorrelated subqueries."""

import pytest

from repro import Cluster
from repro.errors import AnalysisError


@pytest.fixture
def two_tables(cluster):
    s = cluster.connect()
    s.execute("CREATE TABLE a (x int, y varchar(4))")
    s.execute("CREATE TABLE b (x int, y varchar(4))")
    s.execute("INSERT INTO a VALUES (1,'a'),(2,'b'),(2,'b'),(3,'c')")
    s.execute("INSERT INTO b VALUES (2,'b'),(3,'c'),(4,'d')")
    return s


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, two_tables):
        r = two_tables.execute(
            "SELECT x FROM a UNION ALL SELECT x FROM b"
        )
        assert sorted(v for (v,) in r.rows) == [1, 2, 2, 2, 3, 3, 4]

    def test_union_deduplicates(self, two_tables):
        r = two_tables.execute(
            "SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY x"
        )
        assert r.rows == [(1, "a"), (2, "b"), (3, "c"), (4, "d")]

    def test_intersect(self, two_tables):
        r = two_tables.execute(
            "SELECT x, y FROM a INTERSECT SELECT x, y FROM b ORDER BY x"
        )
        assert r.rows == [(2, "b"), (3, "c")]

    def test_except(self, two_tables):
        r = two_tables.execute(
            "SELECT x, y FROM a EXCEPT SELECT x, y FROM b"
        )
        assert r.rows == [(1, "a")]

    def test_except_is_ordered_difference(self, two_tables):
        r = two_tables.execute(
            "SELECT x, y FROM b EXCEPT SELECT x, y FROM a"
        )
        assert r.rows == [(4, "d")]

    def test_order_limit_apply_to_combined_result(self, two_tables):
        r = two_tables.execute(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 2"
        )
        assert r.rows == [(4,), (3,)]

    def test_chained_left_associative(self, two_tables):
        r = two_tables.execute(
            "SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT 1"
        )
        assert sorted(r.rows) == [(2,), (3,), (4,)]

    def test_parenthesized_right_side_changes_grouping(self, two_tables):
        # Left-associative: (a EXCEPT b) EXCEPT {2} = {1}.
        flat = two_tables.execute(
            "SELECT x FROM a EXCEPT SELECT x FROM b EXCEPT SELECT 2"
        )
        assert flat.rows == [(1,)]
        # Parenthesized: a EXCEPT (b EXCEPT {2}) = {1,2,3} \ {3,4} = {1,2}.
        grouped = two_tables.execute(
            "SELECT x FROM a EXCEPT (SELECT x FROM b EXCEPT SELECT 2)"
        )
        assert sorted(grouped.rows) == [(1,), (2,)]

    def test_column_count_mismatch(self, two_tables):
        with pytest.raises(AnalysisError):
            two_tables.execute("SELECT x, y FROM a UNION SELECT x FROM b")

    def test_type_unification(self, two_tables):
        # int UNION float must work and produce comparable values.
        r = two_tables.execute(
            "SELECT x FROM a UNION SELECT 2.5 ORDER BY 1"
        )
        assert 2.5 in [v for (v,) in r.rows]

    def test_set_op_as_subquery(self, two_tables):
        r = two_tables.execute(
            "SELECT count(*) FROM "
            "(SELECT x FROM a UNION SELECT x FROM b) AS u"
        )
        assert r.scalar() == 4

    def test_set_op_in_cte(self, two_tables):
        r = two_tables.execute(
            "WITH u AS (SELECT x FROM a UNION SELECT x FROM b) "
            "SELECT max(x) FROM u"
        )
        assert r.scalar() == 4

    def test_executor_parity(self, two_tables):
        sql = "SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY x, y"
        compiled = two_tables.execute(sql).rows
        two_tables.set_executor("volcano")
        assert two_tables.execute(sql).rows == compiled

    def test_union_all_moves_no_extra_bytes(self, two_tables):
        r = two_tables.execute(
            "SELECT count(*) FROM (SELECT x FROM a UNION ALL SELECT x FROM b) u"
        )
        assert r.scalar() == 7
        # UNION ALL stays distributed: only aggregate partials travel.
        assert r.stats.network.bytes_redistributed == 0


class TestScalarSubqueries:
    @pytest.fixture
    def emp(self, cluster):
        s = cluster.connect()
        s.execute("CREATE TABLE emp (id int, dept int, salary int)")
        s.execute("CREATE TABLE dept (id int, name varchar(8))")
        s.execute(
            "INSERT INTO emp VALUES (1,10,100),(2,10,200),(3,20,300),(4,30,50)"
        )
        s.execute("INSERT INTO dept VALUES (10,'eng'),(20,'ops')")
        return s

    def test_scalar_in_where(self, emp):
        r = emp.execute(
            "SELECT id FROM emp WHERE salary > (SELECT avg(salary) FROM emp) "
            "ORDER BY id"
        )
        assert r.rows == [(2,), (3,)]

    def test_scalar_in_select_list(self, emp):
        r = emp.execute(
            "SELECT (SELECT max(salary) FROM emp) - salary FROM emp "
            "WHERE id = 4"
        )
        assert r.scalar() == 250

    def test_empty_scalar_is_null(self, emp):
        r = emp.execute(
            "SELECT count(*) FROM emp WHERE salary = "
            "(SELECT salary FROM emp WHERE id = 999)"
        )
        assert r.scalar() == 0

    def test_multi_row_scalar_rejected(self, emp):
        with pytest.raises(AnalysisError):
            emp.execute("SELECT (SELECT id FROM emp) FROM dept")

    def test_in_subquery(self, emp):
        r = emp.execute(
            "SELECT id FROM emp WHERE dept IN (SELECT id FROM dept) ORDER BY id"
        )
        assert r.rows == [(1,), (2,), (3,)]

    def test_not_in_subquery(self, emp):
        r = emp.execute(
            "SELECT id FROM emp WHERE dept NOT IN (SELECT id FROM dept)"
        )
        assert r.rows == [(4,)]

    def test_in_subquery_in_delete(self, emp):
        r = emp.execute(
            "DELETE FROM emp WHERE dept IN "
            "(SELECT id FROM dept WHERE name = 'ops')"
        )
        assert r.rowcount == 1

    def test_nested_subqueries(self, emp):
        r = emp.execute(
            "SELECT id FROM emp WHERE salary = "
            "(SELECT max(salary) FROM emp WHERE dept IN "
            "(SELECT id FROM dept))"
        )
        assert r.rows == [(3,)]

    def test_correlated_rejected_with_clear_error(self, emp):
        with pytest.raises(AnalysisError) as err:
            emp.execute(
                "SELECT id FROM emp e WHERE salary > "
                "(SELECT avg(salary) FROM emp WHERE dept = e.dept)"
            )
        assert "correlated" in str(err.value)

    def test_date_valued_subquery(self, cluster):
        s = cluster.connect()
        s.execute("CREATE TABLE ev (d date)")
        s.execute(
            "INSERT INTO ev VALUES (DATE '2015-01-01'), (DATE '2015-06-01')"
        )
        r = s.execute("SELECT count(*) FROM ev WHERE d = (SELECT max(d) FROM ev)")
        assert r.scalar() == 1
