"""Volcano vs compiled executor: identical results on a wide query battery.

The compiled executor re-implements per-row execution; these tests pin it
to the interpreted executor's semantics query by query.
"""

import pytest

from repro import Cluster

QUERIES = [
    "SELECT count(*) FROM clicks",
    "SELECT count(*), sum(n), avg(price), min(n), max(n) FROM clicks WHERE n > 400",
    "SELECT user_id, count(*), sum(n) FROM clicks GROUP BY user_id",
    "SELECT u.name, count(*) FROM clicks c JOIN users u ON c.user_id = u.id "
    "GROUP BY u.name",
    "SELECT t.label, count(*) FROM clicks c JOIN tiny t ON c.n % 2 = t.k "
    "GROUP BY t.label",
    "SELECT u.name, c.n FROM users u LEFT JOIN clicks c "
    "ON u.id = c.user_id AND c.n < 3",
    "SELECT CASE WHEN n % 3 = 0 THEN 'fizz' ELSE '-' END f, count(*) "
    "FROM clicks GROUP BY 1",
    "SELECT DISTINCT url FROM clicks WHERE user_id = 2",
    "SELECT count(DISTINCT url) FROM clicks",
    "SELECT APPROXIMATE count(DISTINCT n) FROM clicks",
    "SELECT upper(name) FROM users WHERE name IS NOT NULL",
    "SELECT user_id, n FROM clicks WHERE url LIKE '%/3' AND n BETWEEN 5 AND 600",
    "SELECT stddev(price), variance(n) FROM clicks",
    "SELECT c.user_id, t.label, u.name FROM clicks c "
    "JOIN tiny t ON c.n % 2 = t.k JOIN users u ON c.user_id = u.id "
    "WHERE c.n < 50",
    "SELECT user_id, count(*) FROM clicks GROUP BY user_id "
    "HAVING count(*) >= 200",
    "WITH agg AS (SELECT user_id, count(*) c FROM clicks GROUP BY user_id) "
    "SELECT u.name, a.c FROM agg a JOIN users u ON a.user_id = u.id",
    "SELECT n + 0.5, n - price, n * 2, n / 3, n % 7 FROM clicks WHERE n < 20",
    "SELECT sum(n) FROM clicks WHERE price IS NOT NULL AND n <> 13",
    "SELECT name || '!' FROM users WHERE id IN (1, 3)",
    "SELECT coalesce(name, 'x'), age FROM users",
]


def normalize(rows):
    return sorted(
        (
            tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows
        ),
        key=repr,
    )


@pytest.mark.parametrize("sql", QUERIES)
def test_parity(loaded_cluster, sql):
    volcano = loaded_cluster.connect(executor="volcano").execute(sql)
    compiled = loaded_cluster.connect(executor="compiled").execute(sql)
    assert normalize(volcano.rows) == normalize(compiled.rows)


def test_both_executors_read_identical_blocks(loaded_cluster):
    sql = "SELECT count(*) FROM clicks WHERE n BETWEEN 100 AND 200"
    v = loaded_cluster.connect(executor="volcano").execute(sql)
    c = loaded_cluster.connect(executor="compiled").execute(sql)
    assert v.stats.scan.blocks_read == c.stats.scan.blocks_read
    assert v.stats.scan.blocks_skipped == c.stats.scan.blocks_skipped


def test_both_executors_move_identical_bytes(loaded_cluster):
    sql = (
        "SELECT u.name, count(*) FROM clicks c JOIN users u "
        "ON c.user_id = u.id GROUP BY u.name"
    )
    v = loaded_cluster.connect(executor="volcano").execute(sql)
    c = loaded_cluster.connect(executor="compiled").execute(sql)
    assert v.stats.network.bytes_broadcast == c.stats.network.bytes_broadcast
    assert (
        v.stats.network.bytes_redistributed
        == c.stats.network.bytes_redistributed
    )


def test_compiled_reports_compile_time(loaded_cluster):
    r = loaded_cluster.connect(executor="compiled").execute(
        "SELECT user_id, count(*) FROM clicks WHERE n > 10 GROUP BY user_id"
    )
    assert r.stats.compile_seconds > 0
    assert r.stats.executor == "compiled"


def test_volcano_has_no_compile_time(loaded_cluster):
    r = loaded_cluster.connect(executor="volcano").execute(
        "SELECT count(*) FROM clicks"
    )
    assert r.stats.compile_seconds == 0


def test_unknown_executor_rejected(loaded_cluster):
    with pytest.raises(ValueError):
        loaded_cluster.connect(executor="jit")
    session = loaded_cluster.connect()
    with pytest.raises(ValueError):
        session.set_executor("turbo")
