"""System tables end to end: telemetry queryable through the SQL front door.

The paper's operational story (§4–5) leans on the warehouse describing
itself through ordinary tables — stl_query, svl_query_summary,
stv_blocklist and friends — instead of a separate monitoring stack. These
tests drive real workloads and then assert, via plain SELECTs, that the
instrumented numbers match ground truth from the storage and executor
layers.
"""

import pytest

from repro import Cluster
from repro.engine.wlm import QueryArrival, QueueConfig, WorkloadManager
from repro.errors import ColumnNotFoundError
from repro.faults.injector import FaultInjector


@pytest.fixture
def loaded():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=100)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE events (ts int, region int, amount float) "
        "DISTSTYLE EVEN SORTKEY(ts)"
    )
    cluster.register_inline_source(
        "inline://events",
        [f"{i}|{i % 8}|{(i % 13) * 1.5}" for i in range(4000)],
    )
    s.execute("COPY events FROM 'inline://events'")
    return cluster, s


class TestQueryLog:
    def test_stl_query_records_statements(self, loaded):
        _, s = loaded
        s.execute("SELECT count(*) FROM events")
        rows = s.execute(
            "SELECT query, querytxt, state, rows FROM stl_query "
            "WHERE querytxt LIKE '%COUNT(%' ORDER BY query"
        ).rows
        # COPY's internal work is one statement; our count is another.
        assert any("COUNT" in text.upper() for _, text, _, _ in rows)
        last = rows[-1]
        assert last[2] == "success"
        assert last[3] == 1  # one aggregate row came back

    def test_query_over_stl_query_does_not_see_itself(self, loaded):
        _, s = loaded
        before = s.execute("SELECT count(*) c FROM stl_query").scalar()
        after = s.execute("SELECT count(*) c FROM stl_query").scalar()
        # The second query sees exactly one more completed statement (the
        # first count), not itself.
        assert after == before + 1

    def test_errors_are_recorded_with_message(self, loaded):
        _, s = loaded
        with pytest.raises(ColumnNotFoundError):
            s.execute("SELECT no_such_column FROM events")
        rows = s.execute(
            "SELECT state, error FROM stl_query WHERE state = 'error'"
        ).rows
        assert len(rows) == 1
        assert "no_such_column" in rows[0][1]

    def test_elapsed_and_executor_populated(self, loaded):
        cluster, _ = loaded
        for kind in ("volcano", "compiled"):
            sess = cluster.connect(kind)
            sess.execute("SELECT sum(amount) FROM events")
            row = sess.execute(
                "SELECT executor, elapsed_us FROM stl_query "
                "ORDER BY query DESC LIMIT 1"
            ).rows[0]
            assert row[0] == kind
            assert row[1] >= 0


class TestQuerySummary:
    def test_scan_step_matches_scan_stats_ground_truth(self, loaded):
        _, s = loaded
        r = s.execute("SELECT count(*) FROM events WHERE ts BETWEEN 100 AND 199")
        assert r.scalar() == 100
        truth = r.stats.scan
        assert truth.blocks_skipped > 0  # sortkey pruning really happened
        summary = s.execute(
            "SELECT rows, blocks_read, blocks_skipped FROM svl_query_summary "
            "WHERE operator LIKE 'Seq Scan%' "
            "ORDER BY query DESC LIMIT 1"
        ).rows[0]
        # The SQL-visible numbers are the same ones the result carried.
        assert summary[1] == truth.blocks_read
        assert summary[2] == truth.blocks_skipped
        # Scan rows = storage-emitted rows (post-pruning, pre-filter):
        # every row in the surviving blocks.
        assert summary[0] >= 100

    def test_summary_has_one_row_per_plan_step(self, loaded):
        _, s = loaded
        r = s.execute(
            "SELECT region, sum(amount) FROM events GROUP BY region ORDER BY region"
        )
        steps = s.execute(
            "SELECT step, operator, rows FROM svl_query_summary "
            "WHERE query = (SELECT max(query) FROM svl_query_summary) "
            "ORDER BY step"
        ).rows
        assert [step for step, _, _ in steps] == list(range(len(steps)))
        assert len(steps) == len(r.stats.operators)
        # The root step emitted exactly the result rows.
        assert steps[0][2] == r.rowcount

    def test_compiled_executor_reports_scan_steps(self, loaded):
        cluster, _ = loaded
        s = cluster.connect("compiled")
        r = s.execute("SELECT count(*) FROM events WHERE ts < 500")
        assert r.scalar() == 500
        ops = s.execute(
            "SELECT operator FROM svl_query_summary "
            "WHERE query = (SELECT max(query) FROM svl_query_summary)"
        ).rows
        assert any("Seq Scan" in op for (op,) in ops)


class TestBlocklist:
    def test_blocklist_matches_storage_ground_truth(self, loaded):
        cluster, s = loaded
        cluster.seal_table("events")
        total_sql = s.execute(
            "SELECT count(*) c FROM stv_blocklist WHERE tbl = 'events'"
        ).scalar()
        truth = sum(
            len(store.shard("events").chain(col).blocks)
            for store in cluster.slice_stores
            if store.has_shard("events")
            for col in store.shard("events").column_names
        )
        assert total_sql == truth > 0

    def test_zone_map_bounds_visible_in_sql(self, loaded):
        cluster, s = loaded
        cluster.seal_table("events")
        rows = s.execute(
            "SELECT minvalue, maxvalue FROM stv_blocklist "
            "WHERE tbl = 'events' AND col = 'ts' AND slice = 'node-0-s0'"
        ).rows
        assert rows
        # Sorted load: per-block ranges are disjoint and increasing.
        bounds = sorted((int(lo), int(hi)) for lo, hi in rows)
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi < lo

    def test_join_system_against_user_table(self, loaded):
        cluster, s = loaded
        cluster.seal_table("events")
        s.execute("CREATE TABLE watch (name varchar(128), owner varchar(32))")
        s.execute("INSERT INTO watch VALUES ('events', 'etl'), ('ghost', 'noone')")
        rows = s.execute(
            "SELECT w.owner, count(*) blocks FROM stv_blocklist b "
            "JOIN watch w ON b.tbl = w.name GROUP BY w.owner"
        ).rows
        assert len(rows) == 1
        assert rows[0][0] == "etl"
        assert rows[0][1] > 0


class TestWlmTables:
    def test_admission_outcomes_queryable(self):
        cluster = Cluster(node_count=1)
        s = cluster.connect()
        wlm = WorkloadManager(
            [
                QueueConfig("short", slots=1, memory_fraction=0.5,
                            admission_timeout_s=1.0),
                QueueConfig("long", slots=2, memory_fraction=0.5),
            ],
            systables=cluster.systables,
        )
        wlm.simulate(
            [
                QueryArrival("short", 0.0, 10.0, label="q1"),
                QueryArrival("short", 0.1, 10.0, label="q2"),  # times out
                QueryArrival("long", 0.0, 5.0, label="big"),
            ]
        )
        states = s.execute(
            "SELECT queue, state, label FROM stv_wlm_query_state "
            "ORDER BY queue, arrival_s"
        ).rows
        assert ("short", "timed_out", "q2") in states
        assert ("long", "completed", "big") in states
        actions = s.execute(
            "SELECT queue, action, label FROM stl_wlm_rule_action"
        ).rows
        assert actions == [("short", "timeout", "q2")]

    def test_snapshot_replaced_each_simulation(self):
        cluster = Cluster(node_count=1)
        s = cluster.connect()
        wlm = WorkloadManager(systables=cluster.systables)
        wlm.simulate([QueryArrival("default", 0.0, 1.0, label="first")])
        wlm.simulate([QueryArrival("default", 0.0, 1.0, label="second")])
        labels = [
            r[0] for r in s.execute("SELECT label FROM stv_wlm_query_state").rows
        ]
        assert labels == ["second"]


class TestFaultEvents:
    def test_injector_log_queryable(self):
        cluster = Cluster(node_count=1)
        injector = FaultInjector()
        cluster.attach_faults(injector)
        injector.record("node_crash", target="node-0", detail="drill")
        injector.record("s3_outage", target="us-east-1")
        s = cluster.connect()
        rows = s.execute(
            "SELECT kind, target FROM stl_fault_events ORDER BY kind"
        ).rows
        assert rows == [
            ("node_crash", "node-0"),
            ("s3_outage", "us-east-1"),
        ]

    def test_no_injector_means_empty_table(self):
        cluster = Cluster(node_count=1)
        s = cluster.connect()
        assert s.execute("SELECT count(*) c FROM stl_fault_events").scalar() == 0


class TestFiveTablesThroughSql:
    def test_select_over_every_system_table(self, loaded):
        cluster, s = loaded
        for name in (
            "stl_query",
            "svl_query_summary",
            "stv_wlm_query_state",
            "stl_wlm_rule_action",
            "stv_blocklist",
            "stl_fault_events",
        ):
            result = s.execute(f"SELECT * FROM {name} LIMIT 3")
            assert result.columns  # schema resolved through the catalog


class TestControlPlaneObservability:
    def test_service_binds_simclock_into_systables(self):
        from repro.cloud import CloudEnvironment
        from repro.controlplane import RedshiftService

        svc = RedshiftService(CloudEnvironment(seed=7))
        managed, _ = svc.create_cluster(node_count=2)
        s = managed.connect()
        s.execute("SELECT 1 x")
        (start,) = s.execute(
            "SELECT starttime FROM stl_query ORDER BY query DESC LIMIT 1"
        ).rows[0]
        # Stamped from the shared simulation clock (well past zero after
        # cluster provisioning), not wall time.
        assert start == svc.env.clock.now > 0

    def test_publish_query_metrics_reads_stl_query(self):
        from repro.cloud import CloudEnvironment
        from repro.controlplane import RedshiftService

        svc = RedshiftService(CloudEnvironment(seed=7))
        managed, _ = svc.create_cluster(node_count=2)
        s = managed.connect()
        s.execute("CREATE TABLE t (a INT)")
        s.execute("INSERT INTO t VALUES (1), (2)")
        s.execute("SELECT * FROM t")
        with pytest.raises(ColumnNotFoundError):
            s.execute("SELECT nope FROM t")
        metrics = svc.publish_query_metrics(managed.cluster_id)
        assert metrics["QueryCount"] == 4.0
        assert metrics["QueryErrors"] == 1.0
        assert metrics["QueryLatencyUs"] > 0
        dims = {"cluster_id": managed.cluster_id}
        series = svc.env.cloudwatch.get_series("QueryErrors", dims)
        assert [p.value for p in series] == [1.0]

    def test_console_pages_render_from_sql(self):
        from repro.controlplane import console as con

        cluster = Cluster(node_count=1, block_capacity=100)
        s = cluster.connect()
        s.execute("CREATE TABLE t (a INT) SORTKEY(a)")
        cluster.register_inline_source(
            "inline://t", [str(i) for i in range(2000)]
        )
        s.execute("COPY t FROM 'inline://t'")
        s.execute("SELECT count(*) FROM t WHERE a < 50")
        cluster.seal_table("t")

        slow = con.slowest_queries(s, limit=3)
        assert slow and all(len(row) == 4 for row in slow)
        pruned = con.most_pruned_scans(s)
        assert pruned and pruned[0][3] > 0  # blocks_skipped
        assert con.fault_timeline(s) == []
        storage = con.storage_summary(s)
        assert [row[0] for row in storage] == ["t"]
