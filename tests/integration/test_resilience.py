"""'Design escalators, not elevators' (§5): degradation under dependency
failures — EC2 capacity interruptions, S3 outages, node loss."""

import pytest

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.errors import (
    InsufficientCapacityError,
    InvalidClusterStateError,
    ServiceUnavailableError,
)


@pytest.fixture
def running(env):
    env.ec2.preconfigure("dw2.large", 12)
    service = RedshiftService(env)
    managed, _ = service.create_cluster(node_count=4, block_capacity=64)
    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    session.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(4000))
    )
    managed.replication.sync_from_cluster()
    return env, service, managed, session


class TestNodeReplacement:
    def test_replace_restores_data_and_redundancy(self, running):
        env, service, managed, session = running
        expect = session.execute("SELECT count(*), sum(v) FROM t").rows
        managed.replication.fail_node("node-1")
        assert managed.replication.at_risk_blocks()
        duration, restored = service.replace_node(managed.cluster_id, "node-1")
        assert restored > 0
        assert duration > 0
        assert managed.replication.at_risk_blocks() == []
        assert session.execute("SELECT count(*), sum(v) FROM t").rows == expect

    def test_replacement_during_ec2_interruption_uses_warm_pool(self, running):
        env, service, managed, _ = running
        env.ec2.start_capacity_interruption()
        managed.replication.fail_node("node-2")
        duration, _ = service.replace_node(managed.cluster_id, "node-2")
        # The §5 escalator: preconfigured nodes keep replacements flowing.
        assert duration < 600

    def test_replacement_without_warm_pool_blocks_under_interruption(self, env):
        service = RedshiftService(env)  # empty warm pool
        managed, _ = service.create_cluster(node_count=2, block_capacity=64)
        env.ec2.start_capacity_interruption()
        with pytest.raises(InsufficientCapacityError):
            service.replace_node(managed.cluster_id, "node-0")

    def test_unknown_node_rejected(self, running):
        _, service, managed, _ = running
        with pytest.raises(InvalidClusterStateError):
            service.replace_node(managed.cluster_id, "node-99")

    def test_replacement_is_audited(self, running):
        env, service, managed, _ = running
        managed.replication.fail_node("node-3")
        service.replace_node(managed.cluster_id, "node-3")
        events = env.cloudtrail.lookup(action="redshift:replace_node")
        assert len(events) == 1


class TestS3Outage:
    def test_queries_survive_s3_outage(self, running):
        env, _, managed, session = running
        env.s3.start_outage()
        # The data plane has no S3 dependency on the read path.
        assert session.execute("SELECT count(*) FROM t").scalar() == 4000

    def test_backup_fails_cleanly_and_recovers(self, running):
        env, service, managed, session = running
        env.s3.start_outage()
        with pytest.raises(ServiceUnavailableError):
            service.snapshot_cluster(managed.cluster_id, label="during")
        env.s3.end_outage()
        record, _ = service.snapshot_cluster(managed.cluster_id, label="after")
        assert record.blocks_uploaded > 0

    def test_in_cluster_replica_serves_reads_during_outage(self, running):
        env, _, managed, session = running
        env.s3.start_outage()
        block_id = next(iter(managed.replication.replicas))
        info = managed.replication.replicas[block_id]
        managed.replication.fail_slice(info.primary_slice)
        # Secondary (not S3) carries the read through the outage.
        block = managed.replication.read_block(block_id)
        assert block.read()
