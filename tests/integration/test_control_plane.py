"""Control plane workflows: provisioning, resize, restore, patching, DR."""

import pytest

from repro.cloud import CloudEnvironment
from repro.controlplane import PatchManager, RedshiftService
from repro.controlplane.console import AdminOperation
from repro.controlplane.service import ClusterState
from repro.errors import ClusterNotFoundError, InvalidClusterStateError
from repro.util.units import MINUTE


@pytest.fixture
def service():
    env = CloudEnvironment(seed=77)
    return RedshiftService(env)


def small_cluster(service, **kwargs):
    managed, timing = service.create_cluster(
        node_count=2, block_capacity=64, **kwargs
    )
    return managed, timing


class TestProvisioning:
    def test_cold_create_around_fifteen_minutes(self, service):
        _, timing = small_cluster(service)
        assert 5 * MINUTE < timing.automated_seconds < 30 * MINUTE

    def test_warm_pool_create_around_three_minutes(self, service):
        service.env.ec2.preconfigure("dw2.large", 4)
        _, timing = small_cluster(service)
        assert timing.automated_seconds < 6 * MINUTE

    def test_click_time_is_a_minute_of_form_filling(self, service):
        _, timing = small_cluster(service)
        assert 20 < timing.click_seconds < 3 * MINUTE

    def test_time_to_first_report(self, service):
        service.env.ec2.preconfigure("dw2.large", 4)
        ttfr = service.time_to_first_report(node_count=2)
        assert ttfr < 15 * MINUTE  # the paper's "as little as 15 minutes"

    def test_duplicate_cluster_id_rejected(self, service):
        service.create_cluster(cluster_id="c1", node_count=2)
        with pytest.raises(InvalidClusterStateError):
            service.create_cluster(cluster_id="c1", node_count=2)

    def test_sql_through_managed_cluster(self, service):
        managed, _ = small_cluster(service)
        session = managed.connect()
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        assert session.execute("SELECT sum(a) FROM t").scalar() == 3


class TestDeleteAndRestore:
    def test_delete_with_final_snapshot_and_restore(self, service):
        managed, _ = small_cluster(service)
        session = managed.connect()
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (41), (1)")
        record = service.delete_cluster(managed.cluster_id, final_snapshot=True)
        assert record is not None
        with pytest.raises(ClusterNotFoundError):
            service.cluster(managed.cluster_id)
        # The Friday-delete / Monday-restore pattern from §2.3.
        restored, result, _ = service.restore_cluster(
            managed.cluster_id, record.snapshot_id, streaming=True
        )
        # restore_cluster validates against the source record; deleted
        # clusters keep their backups — look it up via the new cluster.
        s2 = restored.connect()
        assert s2.execute("SELECT sum(a) FROM t").scalar() == 42

    def test_restore_timing_logged(self, service):
        managed, _ = small_cluster(service)
        managed.connect().execute("CREATE TABLE t (a int)")
        record, _ = service.snapshot_cluster(managed.cluster_id, label="s")
        _, _, timing = service.restore_cluster(managed.cluster_id, "s")
        assert timing.operation is AdminOperation.RESTORE
        assert timing.automated_seconds > 0


class TestResize:
    def test_resize_preserves_data(self, service):
        managed, _ = small_cluster(service)
        session = managed.connect()
        session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
        rows = ",".join(f"({i % 50}, {i})" for i in range(1000))
        session.execute(f"INSERT INTO t VALUES {rows}")
        expect = session.execute("SELECT count(*), sum(v) FROM t").rows

        resized, timing = service.resize_cluster(managed.cluster_id, 4)
        assert resized.engine.node_count == 4
        assert resized.state is ClusterState.AVAILABLE
        s2 = resized.connect()
        assert s2.execute("SELECT count(*), sum(v) FROM t").rows == expect

    def test_resize_rebalances_across_new_slices(self, service):
        managed, _ = small_cluster(service)
        session = managed.connect()
        session.execute("CREATE TABLE t (k int) DISTSTYLE EVEN")
        session.execute(
            "INSERT INTO t VALUES " + ",".join(f"({i})" for i in range(800))
        )
        resized, _ = service.resize_cluster(managed.cluster_id, 4)
        counts = [
            store.shard("t").row_count for store in resized.engine.slice_stores
        ]
        assert len(counts) == 8
        assert max(counts) - min(counts) <= 1

    def test_resize_down(self, service):
        managed, _ = small_cluster(service)
        managed.connect().execute("CREATE TABLE t (a int)")
        resized, _ = service.resize_cluster(managed.cluster_id, 1)
        assert resized.engine.node_count == 1

    def test_resize_busy_cluster_rejected(self, service):
        managed, _ = small_cluster(service)
        managed.state = ClusterState.RESIZING
        with pytest.raises(InvalidClusterStateError):
            service.resize_cluster(managed.cluster_id, 4)


class TestEncryptionAndDr:
    def test_enable_encryption_is_one_checkbox(self, service):
        managed, _ = small_cluster(service)
        timing = service.enable_encryption(managed.cluster_id)
        assert timing.click_seconds <= 20  # checkbox, not a project
        assert managed.encryption is not None

    def test_enable_dr_mirrors_backups(self, service):
        managed, _ = small_cluster(service)
        session = managed.connect()
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1)")
        service.enable_disaster_recovery(managed.cluster_id, "eu-west-1")
        service.snapshot_cluster(managed.cluster_id, label="s")
        remote = service.env.remote_region("eu-west-1")
        assert remote.s3.list_objects(managed.backups.bucket, "manifests/")


class TestPatching:
    def test_fleet_patch_and_two_version_invariant(self, service):
        for _ in range(3):
            small_cluster(service)
        pm = PatchManager(service, seed=1)
        pm.accumulate_development(2)
        release = pm.cut_release()
        records = pm.patch_fleet(release)
        assert len(records) == 3
        assert pm.fleet_version_invariant_holds()

    def test_regressive_release_rolls_back(self, service):
        managed, _ = small_cluster(service)
        pm = PatchManager(service, seed=1)
        pm.accumulate_development(2)
        release = pm.cut_release()
        release.regressive = True  # force the defect
        record = pm.patch_cluster(managed, release)
        from repro.controlplane import PatchOutcome

        assert record.outcome is PatchOutcome.ROLLED_BACK
        assert managed.engine_version != release.version  # reverted

    def test_rollback_fits_maintenance_window(self, service):
        managed, _ = small_cluster(service)
        pm = PatchManager(service, seed=1)
        pm.accumulate_development(2)
        release = pm.cut_release()
        release.regressive = True
        record = pm.patch_cluster(managed, release)
        assert record.window_seconds <= 30 * MINUTE

    def test_cadence_failure_monotone(self, service):
        pm = PatchManager(service, seed=2)
        rates = [
            pm.simulate_cadence(weeks, horizon_weeks=104, trials=30)["failure_rate"]
            for weeks in (1, 2, 4, 8)
        ]
        assert rates == sorted(rates)
        # The paper's concrete claim: 4-weekly releases fail meaningfully
        # more often than 2-weekly ones.
        assert rates[2] > rates[1] * 1.5


class TestHostManager:
    def test_crash_detection_and_restart(self, service):
        managed, _ = small_cluster(service)
        hm = managed.host_managers["node-0"]
        hm.crash_process()
        assert not hm.process_running
        event = hm.poll()
        assert hm.process_running
        assert event.kind.value == "process_restarted"

    def test_crash_loop_escalates_to_replacement(self, service):
        managed, _ = small_cluster(service)
        hm = managed.host_managers["node-0"]
        for _ in range(3):
            hm.crash_process()
            event = hm.poll()
        assert event.kind.value == "replacement_requested"

    def test_healthy_poll_is_quiet(self, service):
        managed, _ = small_cluster(service)
        hm = managed.host_managers["node-0"]
        assert hm.poll() is None
