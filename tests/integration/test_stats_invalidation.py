"""Statistics invalidation on out-of-session mutation paths.

Only ``Session._mark_stats_stale`` used to flip
``TableStatistics.stale``; restore adoption, scrub ``replace_block``
repair, and failover ``recover_slice`` all bumped mutation epochs
without touching statistics, so the CBO kept planning on NDV/min-max/
row counts measured against bytes that no longer existed. These tests
pin the fix: every out-of-session mutation path re-stales statistics,
and a restore re-anchors the row count on what was actually restored.
"""

import threading

import pytest

from repro import Cluster
from repro.backup import BackupManager
from repro.cloud.environment import CloudEnvironment
from repro.controlplane.service import RedshiftService
from repro.replication import ReplicationManager
from repro.restore import RestoreManager
from repro.storage import epoch


def _table_stats_row(session, name):
    rows = session.execute(
        "SELECT table_name, row_count, total_bytes, stale "
        "FROM svl_table_stats"
    ).rows
    return next(r for r in rows if r[0] == name)


@pytest.fixture
def analyzed(env):
    """A backed-up cluster whose stats were made *wrong* on purpose.

    10 rows are inserted and ANALYZEd (fresh stats, row_count=10), then
    1000 more rows arrive through the ``distribute_rows`` bulk backdoor
    — which bumps mutation epochs but never touches statistics, exactly
    the blind spot the restore fix must compensate for.
    """
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
    s = cluster.connect()
    s.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    s.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(10))
    )
    s.execute("ANALYZE t")
    info = cluster.catalog.table("t")
    assert info.statistics.stale is False
    assert info.statistics.row_count == 10

    xid = cluster.transactions.begin()
    cluster.distribute_rows(
        info, [(i, i) for i in range(10, 1010)], xid=xid
    )
    cluster.transactions.commit(xid)
    cluster.seal_table("t")
    # The backdoor left the fresh-but-wrong statistics in place.
    assert info.statistics.stale is False
    assert info.statistics.row_count == 10

    backups = BackupManager(cluster, env.s3, "bkt", env.clock)
    backups.snapshot("user", label="s1")
    return cluster, s, backups, env


class TestRestoreStatistics:
    def test_restore_marks_stats_stale_and_reanchors_row_count(
        self, analyzed
    ):
        """The foreground regression: pre-fix, the restored catalog
        carried the pickled ``stale=False, row_count=10`` verbatim, so
        the CBO sized a 1010-row table at 10 rows *and* trusted its
        column stats."""
        _, _, _, env = analyzed
        result = RestoreManager(env.s3, "bkt", env.clock).full_restore("s1")
        restored = result.cluster

        stats = restored.catalog.table("t").statistics
        assert stats.stale is True
        assert stats.row_count == 1010
        assert stats.total_bytes > 0

        # And through SQL, where the fleet tooling reads it.
        name, row_count, total_bytes, stale = _table_stats_row(
            restored.connect(), "t"
        )
        assert (row_count, stale) == (1010, 1)
        # The restored contents really are 1010 rows.
        assert restored.connect().execute(
            "SELECT COUNT(*) FROM t"
        ).rows == [(1010,)]

    def test_restore_excludes_dead_rows_from_row_count(self, env):
        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        s = cluster.connect()
        s.execute("CREATE TABLE d (k int)")
        s.execute(
            "INSERT INTO d VALUES " + ",".join(f"({i})" for i in range(100))
        )
        s.execute("DELETE FROM d WHERE k < 40")
        backups = BackupManager(cluster, env.s3, "bkt2", env.clock)
        backups.snapshot("user", label="sd")
        result = RestoreManager(env.s3, "bkt2", env.clock).full_restore("sd")
        assert result.cluster.catalog.table("d").statistics.row_count == 60

    def test_snapshot_captures_table_epochs(self, analyzed):
        _, _, backups, env = analyzed
        record = backups.snapshots[-1]
        assert record.table_epochs == {"t": epoch.table_epoch("t")}
        result = RestoreManager(env.s3, "bkt", env.clock).full_restore("s1")
        assert result.table_epochs == record.table_epochs

    def test_restore_does_not_bump_live_epochs(self, analyzed):
        """Building a clone from snapshot images must not read as a
        mutation of the main cluster's tables — that would invalidate
        caches fleet-wide and permanently defeat burst freshness."""
        _, _, _, env = analyzed
        before = epoch.table_epoch("t")
        RestoreManager(env.s3, "bkt", env.clock).full_restore("s1")
        assert epoch.table_epoch("t") == before

    def test_suppression_is_thread_local(self):
        observed = {}

        def other_thread():
            observed["epoch"] = epoch.bump("suppression_probe")

        with epoch.suppressed():
            before = epoch.table_epoch("suppression_probe")
            assert epoch.bump("suppression_probe") == epoch.current()
            assert epoch.table_epoch("suppression_probe") == before
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert epoch.table_epoch("suppression_probe") == observed["epoch"]
        assert observed["epoch"] > before


def _sealed_block(cluster, table, column):
    return next(
        block
        for store in cluster.slice_stores
        if store.has_shard(table)
        for block in store.shard(table).chain(column).blocks
    )


class TestRepairStatistics:
    def _replicated(self, seed):
        env = CloudEnvironment(seed=seed)
        env.ec2.preconfigure("dw2.large", 8)
        service = RedshiftService(env)
        managed, _ = service.create_cluster(node_count=2, block_capacity=64)
        session = managed.connect()
        session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
        session.execute(
            "INSERT INTO t VALUES "
            + ",".join(f"({i},{i})" for i in range(500))
        )
        session.execute("ANALYZE t")
        managed.replication.sync_from_cluster()
        assert managed.engine.catalog.table("t").statistics.stale is False
        return managed, session

    def test_scrub_repair_marks_stats_stale(self):
        managed, _ = self._replicated(seed=71)
        _sealed_block(managed.engine, "t", "v").corrupt()
        report = managed.replication.scrub(
            managed.backups.s3_block_reader if managed.backups else None
        )
        assert report.repaired
        assert managed.engine.catalog.table("t").statistics.stale is True

    def test_clean_scrub_leaves_stats_fresh(self):
        managed, _ = self._replicated(seed=72)
        report = managed.replication.scrub()
        assert not report.repaired
        assert managed.engine.catalog.table("t").statistics.stale is False

    def test_failover_recovery_marks_stats_stale(self):
        managed, session = self._replicated(seed=73)
        manager = managed.replication
        info = next(iter(manager.replicas.values()))
        manager.fail_slice(info.primary_slice)
        manager.recover_slice(info.primary_slice)
        assert managed.engine.catalog.table("t").statistics.stale is True
        # The data itself survived the rebuild.
        assert session.execute("SELECT COUNT(*) FROM t").rows == [(500,)]
