"""The end-to-end chaos drill: a seeded fault schedule combining a
mid-query node crash, transient S3 errors, and a silently corrupted block
must (a) complete the query correctly via segment retry + replica
failover, (b) scrub-repair the corrupt block with zero data loss, and
(c) reproduce the identical fault timeline and recovery log when re-run
with the same seed.
"""

import pytest

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.controlplane.service import ClusterState
from repro.errors import ClusterReadOnlyError, QueryRetryExhaustedError
from repro.faults import ChaosOrchestrator, FaultPlan

ROWS = 4000
EXPECT = [(ROWS, sum(range(ROWS)))]


def _build_cluster(seed):
    env = CloudEnvironment(seed=seed)
    env.ec2.preconfigure("dw2.large", 12)
    service = RedshiftService(env)
    managed, _ = service.create_cluster(node_count=4, block_capacity=64)
    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    session.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(ROWS))
    )
    managed.replication.sync_from_cluster()
    service.snapshot_cluster(managed.cluster_id, label="pre-chaos")
    return env, service, managed, session


def _victim_block(managed):
    """A replicated block of the scanned column (v) whose primary lives on
    node-0, so corrupting it is independent of the node-1 crash in the
    drill plan and the drill query is guaranteed to read it."""
    replicas = managed.replication.replicas
    return next(
        block_id
        for block_id in sorted(replicas)
        if replicas[block_id].primary_slice.startswith("node-0-")
        and replicas[block_id].column == "v"
    )


def _normalized(timeline):
    """Rewrite ``blk-N`` ids as run-relative offsets so timelines from two
    in-process runs (which share the global block-id counter) compare."""
    import re

    numbers = [
        int(m)
        for key in timeline
        for part in key
        if isinstance(part, str)
        for m in re.findall(r"blk-(\d+)", part)
    ]
    base = min(numbers) if numbers else 0

    def fix(part):
        if not isinstance(part, str):
            return part
        return re.sub(
            r"blk-(\d+)", lambda m: f"blk+{int(m.group(1)) - base}", part
        )

    return [tuple(fix(part) for part in key) for key in timeline]


def _run_drill(seed):
    """The acceptance scenario from the issue, returning everything the
    assertions (and the reproducibility re-run) need."""
    env, service, managed, session = _build_cluster(seed)
    victim = _victim_block(managed)
    now = env.clock.now
    plan = (
        FaultPlan(seed=seed)
        .s3_errors(now, now + 3600.0, rate=0.3)
        .node_crash(now, "node-1")
        .block_bitflip(now, victim)
    )
    chaos = ChaosOrchestrator(env, managed, plan)
    injector = chaos.install()
    env.clock.advance(1.0)  # the scheduled bit-flip fires
    result = session.execute("SELECT count(*), sum(v) FROM t")
    return env, managed, session, injector, result, victim


class TestChaosDrill:
    def test_query_completes_correctly_under_chaos(self):
        _, _, _, _, result, _ = _run_drill(seed=2015)
        assert result.rows == EXPECT

    def test_recovery_used_segment_retry(self):
        _, _, _, _, result, _ = _run_drill(seed=2015)
        # The crash and the corruption each cost (at least) one retry.
        assert result.stats.segment_retries >= 2

    def test_fault_and_recovery_events_logged(self):
        _, _, _, injector, _, victim = _run_drill(seed=2015)
        kinds = [event.kind for event in injector.log]
        assert "node_crash" in kinds
        assert "block_bitflip" in kinds
        assert "recovery:failover_start" in kinds
        assert "recovery:failover_done" in kinds
        assert "recovery:scrub_start" in kinds
        repaired = [
            event.target
            for event in injector.log
            if event.kind == "recovery:block_repaired"
        ]
        assert victim in repaired

    def test_zero_data_loss_after_repair(self):
        env, managed, session, _, _, _ = _run_drill(seed=2015)
        # Every copy is intact again: a fresh scrub finds nothing to fix.
        report = managed.replication.scrub(
            managed.backups.s3_block_reader
        )
        assert report.repaired == []
        assert report.unrepairable == []
        assert report.blocks_checked > 0
        assert session.execute("SELECT count(*), sum(v) FROM t").rows == EXPECT

    def test_cluster_returns_to_read_write(self):
        env, managed, session, _, _, _ = _run_drill(seed=2015)
        assert not managed.engine.read_only
        assert managed.state is ClusterState.AVAILABLE
        messages = [message for _, message in managed.events]
        assert any(message.startswith("degraded:") for message in messages)
        assert "redundancy restored" in messages
        # Writes work again after recovery.
        session.execute("INSERT INTO t VALUES (-1, 0)")
        assert session.execute("SELECT count(*) FROM t").scalar() == ROWS + 1

    def test_same_seed_reproduces_identical_timeline(self):
        """Two same-seed drills produce the identical fault timeline and
        recovery log. Block ids come from a process-global counter, so the
        second in-process run sees them shifted by a constant; normalising
        that offset away, every event — time, kind, target, detail — must
        match (a fresh process matches without normalisation)."""
        _, _, _, first, _, _ = _run_drill(seed=2015)
        _, _, _, second, _, _ = _run_drill(seed=2015)
        assert _normalized(first.timeline()) == _normalized(second.timeline())
        assert len(first.timeline()) > 0

    def test_different_seeds_may_diverge(self):
        _, _, _, first, _, _ = _run_drill(seed=2015)
        _, _, _, second, _, _ = _run_drill(seed=77)
        # Not a hard guarantee for every seed pair, but these two differ —
        # the per-request S3 error draws come from the plan seed.
        assert _normalized(first.timeline()) != _normalized(second.timeline())


class TestDegradedReadOnlyMode:
    def test_writes_rejected_while_degraded(self):
        env, service, managed, session = _build_cluster(seed=5)
        managed.engine.set_read_only("redundancy lost")
        with pytest.raises(ClusterReadOnlyError, match="redundancy lost"):
            session.execute("INSERT INTO t VALUES (9, 9)")
        # Reads still flow: degrade, don't fail.
        assert session.execute("SELECT count(*) FROM t").scalar() == ROWS
        managed.engine.clear_read_only()
        session.execute("INSERT INTO t VALUES (9, 9)")

    def test_unrepairable_corruption_degrades_to_read_only(self):
        env, service, managed, session = _build_cluster(seed=6)
        # Corrupt a block everywhere: primary poisoned, mirror copy gone,
        # and no S3 backup reader — the scrub cannot repair it.
        victim = _victim_block(managed)
        info = managed.replication.replicas[victim]
        chaos = ChaosOrchestrator(env, managed, FaultPlan(seed=6))
        chaos.install()
        chaos.coordinator._s3_reader = None
        _, block = chaos._resolve_block(victim)
        block.corrupt()
        managed.replication._secondary_store.get(
            info.secondary_slice, {}
        ).pop(victim, None)
        report = chaos.coordinator.scrub()
        assert not report.succeeded
        assert managed.engine.read_only
        assert managed.state is ClusterState.READ_ONLY
        with pytest.raises(ClusterReadOnlyError):
            session.execute("INSERT INTO t VALUES (1, 1)")


class TestRetryExhaustion:
    def test_unhandled_fault_without_recovery_surfaces_typed_error(self):
        from repro import Cluster
        from repro.faults import FaultInjector

        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        session = cluster.connect()
        session.execute("CREATE TABLE t (k int)")
        session.execute("INSERT INTO t VALUES (1),(2),(3)")
        injector = FaultInjector(FaultPlan(seed=1).node_crash(0.0, "node-0"))
        cluster.attach_faults(injector)
        # No recovery_handler installed: the typed error surfaces raw.
        from repro.errors import NodeFailureError

        with pytest.raises(NodeFailureError):
            session.execute("SELECT count(*) FROM t")

    def test_unrecoverable_repeat_faults_exhaust_retries(self):
        from repro import Cluster
        from repro.faults import FaultInjector, FaultPlan

        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        session = cluster.connect()
        session.execute("CREATE TABLE t (k int)")
        session.execute("INSERT INTO t VALUES (1),(2),(3)")
        plan = FaultPlan(seed=1)
        for _ in range(10):  # more crashes than MAX_SEGMENT_RETRIES
            plan.node_crash(0.0, "node-0")
        cluster.attach_faults(FaultInjector(plan))
        # A handler that "recovers" but the node keeps crashing.
        cluster.recovery_handler = lambda exc: True
        with pytest.raises(QueryRetryExhaustedError) as info:
            session.execute("SELECT count(*) FROM t")
        assert info.value.attempts == session.MAX_SEGMENT_RETRIES + 1
