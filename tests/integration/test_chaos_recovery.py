"""The end-to-end chaos drill: a seeded fault schedule combining a
mid-query node crash, transient S3 errors, and a silently corrupted block
must (a) complete the query correctly via segment retry + replica
failover, (b) scrub-repair the corrupt block with zero data loss, and
(c) reproduce the identical fault timeline and recovery log when re-run
with the same seed.
"""

import pytest

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.controlplane.service import ClusterState
from repro.errors import ClusterReadOnlyError, QueryRetryExhaustedError
from repro.faults import ChaosOrchestrator, FaultPlan

ROWS = 4000
EXPECT = [(ROWS, sum(range(ROWS)))]


def _build_cluster(seed):
    env = CloudEnvironment(seed=seed)
    env.ec2.preconfigure("dw2.large", 12)
    service = RedshiftService(env)
    managed, _ = service.create_cluster(node_count=4, block_capacity=64)
    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    session.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(ROWS))
    )
    managed.replication.sync_from_cluster()
    service.snapshot_cluster(managed.cluster_id, label="pre-chaos")
    return env, service, managed, session


def _victim_block(managed):
    """A replicated block of the scanned column (v) whose primary lives on
    node-0, so corrupting it is independent of the node-1 crash in the
    drill plan and the drill query is guaranteed to read it."""
    replicas = managed.replication.replicas
    return next(
        block_id
        for block_id in sorted(replicas)
        if replicas[block_id].primary_slice.startswith("node-0-")
        and replicas[block_id].column == "v"
    )


def _normalized(timeline):
    """Rewrite ``blk-N`` ids as run-relative offsets so timelines from two
    in-process runs (which share the global block-id counter) compare."""
    import re

    numbers = [
        int(m)
        for key in timeline
        for part in key
        if isinstance(part, str)
        for m in re.findall(r"blk-(\d+)", part)
    ]
    base = min(numbers) if numbers else 0

    def fix(part):
        if not isinstance(part, str):
            return part
        return re.sub(
            r"blk-(\d+)", lambda m: f"blk+{int(m.group(1)) - base}", part
        )

    return [tuple(fix(part) for part in key) for key in timeline]


def _run_drill(seed):
    """The acceptance scenario from the issue, returning everything the
    assertions (and the reproducibility re-run) need."""
    env, service, managed, session = _build_cluster(seed)
    victim = _victim_block(managed)
    now = env.clock.now
    plan = (
        FaultPlan(seed=seed)
        .s3_errors(now, now + 3600.0, rate=0.3)
        .node_crash(now, "node-1")
        .block_bitflip(now, victim)
    )
    chaos = ChaosOrchestrator(env, managed, plan)
    injector = chaos.install()
    env.clock.advance(1.0)  # the scheduled bit-flip fires
    result = session.execute("SELECT count(*), sum(v) FROM t")
    return env, managed, session, injector, result, victim


class TestChaosDrill:
    def test_query_completes_correctly_under_chaos(self):
        _, _, _, _, result, _ = _run_drill(seed=2015)
        assert result.rows == EXPECT

    def test_recovery_used_segment_retry(self):
        _, _, _, _, result, _ = _run_drill(seed=2015)
        # The crash and the corruption each cost (at least) one retry.
        assert result.stats.segment_retries >= 2

    def test_fault_and_recovery_events_logged(self):
        _, _, _, injector, _, victim = _run_drill(seed=2015)
        kinds = [event.kind for event in injector.log]
        assert "node_crash" in kinds
        assert "block_bitflip" in kinds
        assert "recovery:failover_start" in kinds
        assert "recovery:failover_done" in kinds
        assert "recovery:scrub_start" in kinds
        repaired = [
            event.target
            for event in injector.log
            if event.kind == "recovery:block_repaired"
        ]
        assert victim in repaired

    def test_zero_data_loss_after_repair(self):
        env, managed, session, _, _, _ = _run_drill(seed=2015)
        # Every copy is intact again: a fresh scrub finds nothing to fix.
        report = managed.replication.scrub(
            managed.backups.s3_block_reader
        )
        assert report.repaired == []
        assert report.unrepairable == []
        assert report.blocks_checked > 0
        assert session.execute("SELECT count(*), sum(v) FROM t").rows == EXPECT

    def test_cluster_returns_to_read_write(self):
        env, managed, session, _, _, _ = _run_drill(seed=2015)
        assert not managed.engine.read_only
        assert managed.state is ClusterState.AVAILABLE
        messages = [message for _, message in managed.events]
        assert any(message.startswith("degraded:") for message in messages)
        assert "redundancy restored" in messages
        # Writes work again after recovery.
        session.execute("INSERT INTO t VALUES (-1, 0)")
        assert session.execute("SELECT count(*) FROM t").scalar() == ROWS + 1

    def test_same_seed_reproduces_identical_timeline(self):
        """Two same-seed drills produce the identical fault timeline and
        recovery log. Block ids come from a process-global counter, so the
        second in-process run sees them shifted by a constant; normalising
        that offset away, every event — time, kind, target, detail — must
        match (a fresh process matches without normalisation)."""
        _, _, _, first, _, _ = _run_drill(seed=2015)
        _, _, _, second, _, _ = _run_drill(seed=2015)
        assert _normalized(first.timeline()) == _normalized(second.timeline())
        assert len(first.timeline()) > 0

    def test_different_seeds_may_diverge(self):
        _, _, _, first, _, _ = _run_drill(seed=2015)
        _, _, _, second, _, _ = _run_drill(seed=77)
        # Not a hard guarantee for every seed pair, but these two differ —
        # the per-request S3 error draws come from the plan seed.
        assert _normalized(first.timeline()) != _normalized(second.timeline())


class TestDegradedReadOnlyMode:
    def test_writes_rejected_while_degraded(self):
        env, service, managed, session = _build_cluster(seed=5)
        managed.engine.set_read_only("redundancy lost")
        with pytest.raises(ClusterReadOnlyError, match="redundancy lost"):
            session.execute("INSERT INTO t VALUES (9, 9)")
        # Reads still flow: degrade, don't fail.
        assert session.execute("SELECT count(*) FROM t").scalar() == ROWS
        managed.engine.clear_read_only()
        session.execute("INSERT INTO t VALUES (9, 9)")

    def test_unrepairable_corruption_degrades_to_read_only(self):
        env, service, managed, session = _build_cluster(seed=6)
        # Corrupt a block everywhere: primary poisoned, mirror copy gone,
        # and no S3 backup reader — the scrub cannot repair it.
        victim = _victim_block(managed)
        info = managed.replication.replicas[victim]
        chaos = ChaosOrchestrator(env, managed, FaultPlan(seed=6))
        chaos.install()
        chaos.coordinator._s3_reader = None
        _, block = chaos._resolve_block(victim)
        block.corrupt()
        managed.replication._secondary_store.get(
            info.secondary_slice, {}
        ).pop(victim, None)
        report = chaos.coordinator.scrub()
        assert not report.succeeded
        assert managed.engine.read_only
        assert managed.state is ClusterState.READ_ONLY
        with pytest.raises(ClusterReadOnlyError):
            session.execute("INSERT INTO t VALUES (1, 1)")


class TestRetryExhaustion:
    def test_unhandled_fault_without_recovery_surfaces_typed_error(self):
        from repro import Cluster
        from repro.faults import FaultInjector

        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        session = cluster.connect()
        session.execute("CREATE TABLE t (k int)")
        session.execute("INSERT INTO t VALUES (1),(2),(3)")
        injector = FaultInjector(FaultPlan(seed=1).node_crash(0.0, "node-0"))
        cluster.attach_faults(injector)
        # No recovery_handler installed: the typed error surfaces raw.
        from repro.errors import NodeFailureError

        with pytest.raises(NodeFailureError):
            session.execute("SELECT count(*) FROM t")

    def test_unrecoverable_repeat_faults_exhaust_retries(self):
        from repro import Cluster
        from repro.faults import FaultInjector, FaultPlan

        cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
        session = cluster.connect()
        session.execute("CREATE TABLE t (k int)")
        session.execute("INSERT INTO t VALUES (1),(2),(3)")
        plan = FaultPlan(seed=1)
        for _ in range(10):  # more crashes than MAX_SEGMENT_RETRIES
            plan.node_crash(0.0, "node-0")
        cluster.attach_faults(FaultInjector(plan))
        # A handler that "recovers" but the node keeps crashing.
        cluster.recovery_handler = lambda exc: True
        with pytest.raises(QueryRetryExhaustedError) as info:
            session.execute("SELECT count(*) FROM t")
        assert info.value.attempts == session.MAX_SEGMENT_RETRIES + 1


class TestDiskFullSpillShedding:
    """DISK_FULL windows (and real temp-space exhaustion) turn spilling
    queries into clean sheds: a typed :class:`SpillCapacityError`, an
    ``stl_wlm_rule_action`` row, and zero leaked temp bytes."""

    BUDGET = 2048  # far below the working set: every run must spill
    QUERY = (
        "SELECT k, count(*), sum(v) FROM big "
        "GROUP BY k ORDER BY sum(v) DESC, k"
    )

    def _spilling_cluster(self, **cluster_kwargs):
        from repro import Cluster

        cluster = Cluster(
            node_count=2, slices_per_node=2, block_capacity=64,
            **cluster_kwargs,
        )
        session = cluster.connect(memory_limit=self.BUDGET)
        session.execute("SET enable_result_cache = off")
        session.execute("CREATE TABLE big (k int, v int) DISTKEY(k)")
        session.execute(
            "INSERT INTO big VALUES "
            + ",".join(f"({i % 40}, {i})" for i in range(2000))
        )
        return cluster, session

    def test_disk_full_window_sheds_with_typed_error(self):
        from repro.errors import SpillCapacityError
        from repro.faults import FaultInjector

        cluster, session = self._spilling_cluster()
        expected = session.execute(self.QUERY).rows  # sanity: spills fine
        injector = FaultInjector(FaultPlan(seed=3).add_disk_full_window())
        cluster.attach_faults(injector)
        used_before = cluster.total_bytes()
        with pytest.raises(SpillCapacityError):
            session.execute(self.QUERY)
        # Clean shed: every temp spill byte was reclaimed.
        assert cluster.total_bytes() == used_before
        assert any(e.kind == "disk_full" for e in injector.log)
        shed_rows = session.execute(
            "SELECT queue, action, label FROM stl_wlm_rule_action"
        ).rows
        assert any(action == "shed" for _, action, _ in shed_rows)
        # The window is the only failure cause: detach and the identical
        # query completes (still spilling) with identical rows.
        cluster.attach_faults(FaultInjector(FaultPlan()))
        assert session.execute(self.QUERY).rows == expected

    def test_disk_full_is_not_retried_as_recoverable(self):
        """Capacity exhaustion is not a transient fault: even with a
        recovery handler installed the query sheds instead of burning
        segment retries."""
        from repro.errors import SpillCapacityError
        from repro.faults import FaultInjector

        cluster, session = self._spilling_cluster()
        cluster.attach_faults(
            FaultInjector(FaultPlan(seed=4).add_disk_full_window())
        )
        calls = []
        cluster.recovery_handler = lambda exc: calls.append(exc) or True
        with pytest.raises(SpillCapacityError):
            session.execute(self.QUERY)
        assert calls == []  # the handler was never consulted

    def test_disk_full_window_expires(self):
        from repro.errors import SpillCapacityError
        from repro.faults import FaultInjector

        class _Clock:
            now = 0.0

        cluster, session = self._spilling_cluster()
        clock = _Clock()
        injector = FaultInjector(
            FaultPlan(seed=5).add_disk_full_window(at_s=0.0, until_s=10.0),
            clock=clock,
        )
        cluster.attach_faults(injector)
        with pytest.raises(SpillCapacityError):
            session.execute(self.QUERY)
        clock.now = 20.0  # past the window: temp space is back
        result = session.execute(self.QUERY)
        assert result.stats.spilled_bytes > 0
        assert result.rowcount == 40

    def test_real_temp_space_exhaustion_sheds(self):
        """No injected fault at all: a disk whose capacity holds the
        table but not the spill working set sheds with the same typed
        error and reclaims partial spill files."""
        from repro.errors import SpillCapacityError

        # 6000 bytes/disk: the loaded table peaks at ~4.4KB on the
        # fullest disk, but the leader sort's spill runs push past 6KB.
        cluster, session = self._spilling_cluster(disk_capacity_bytes=6000)
        used_before = cluster.total_bytes()
        with pytest.raises(SpillCapacityError):
            session.execute(self.QUERY)
        assert cluster.total_bytes() == used_before
