"""A scaled-down Amazon Retail workload (§1) run end-to-end on the engine.

The paper's numbers come from a multi-PB fleet; this test runs the same
*operations* — bulk click-log load, backfill, the click×product join,
backup, restore — at laptop scale and checks the structural claims the
perfmodel extrapolates from: loads parallelise, the co-located join moves
no data, backup is incremental, streaming restore answers from a partial
working set.
"""

import pytest

from repro import Cluster
from repro.backup import BackupManager
from repro.cloud import CloudEnvironment
from repro.restore import RestoreManager

CLICKS = 6000
PRODUCTS = 300


@pytest.fixture(scope="module")
def retail():
    env = CloudEnvironment(seed=2015)
    cluster = Cluster(node_count=4, slices_per_node=2, block_capacity=256)
    session = cluster.connect()
    session.execute(
        "CREATE TABLE clicks (ts int, product_id int, user_id int, "
        "dwell_ms int) DISTKEY(product_id) SORTKEY(ts)"
    )
    session.execute(
        "CREATE TABLE products (product_id int, category varchar(16), "
        "price float) DISTKEY(product_id)"
    )
    cluster.register_inline_source(
        "s3://retail/daily",
        [
            f"{i}|{i % PRODUCTS}|{i % 997}|{(i % 53) * 10}"
            for i in range(CLICKS)
        ],
    )
    cluster.register_inline_source(
        "s3://retail/products",
        [f"{i}|cat-{i % 12}|{(i % 40) * 2.5}" for i in range(PRODUCTS)],
    )
    session.execute("COPY products FROM 's3://retail/products'")
    session.execute("COPY clicks FROM 's3://retail/daily'")
    return env, cluster, session


class TestDailyLoad:
    def test_load_complete_and_distributed(self, retail):
        _, cluster, session = retail
        assert session.execute("SELECT count(*) FROM clicks").scalar() == CLICKS
        counts = [
            store.shard("clicks").row_count for store in cluster.slice_stores
        ]
        # Hash distribution across 8 slices: no slice is badly skewed.
        assert max(counts) < CLICKS / 2

    def test_compression_was_chosen_automatically(self, retail):
        _, cluster, _ = retail
        table = cluster.catalog.table("clicks")
        assert all(c.encode is not None for c in table.columns)

    def test_backfill_appends(self, retail):
        _, cluster, session = retail
        cluster.register_inline_source(
            "s3://retail/backfill",
            [f"{i}|{i % PRODUCTS}|{i % 997}|{0}" for i in range(10_000, 11_000)],
        )
        r = session.execute("COPY clicks FROM 's3://retail/backfill'")
        assert r.rowcount == 1000
        assert session.execute(
            "SELECT count(*) FROM clicks"
        ).scalar() == CLICKS + 1000


class TestClickProductJoin:
    def test_join_is_colocated_on_distkey(self, retail):
        _, _, session = retail
        r = session.execute(
            "SELECT p.category, count(*) views, sum(p.price) rev "
            "FROM clicks c JOIN products p ON c.product_id = p.product_id "
            "GROUP BY p.category ORDER BY views DESC"
        )
        assert len(r.rows) == 12
        assert r.stats.network.bytes_broadcast == 0
        assert r.stats.network.bytes_redistributed == 0

    def test_time_window_query_prunes(self, retail):
        _, _, session = retail
        r = session.execute(
            "SELECT count(*) FROM clicks WHERE ts BETWEEN 0 AND 599"
        )
        assert r.scalar() == 600
        assert r.stats.scan.blocks_skipped > 0


class TestOperationalCycle:
    def test_backup_restore_cycle(self, retail):
        env, cluster, session = retail
        backups = BackupManager(cluster, env.s3, "retail-backup", env.clock)
        first = backups.snapshot("user", label="day-1")
        assert first.blocks_uploaded > 0
        second = backups.snapshot("user", label="day-1b")
        assert second.blocks_uploaded == 0  # nothing changed: incremental

        restore = RestoreManager(env.s3, "retail-backup", env.clock)
        result = restore.streaming_restore("day-1")
        s2 = result.cluster.connect()
        # Working-set query runs before the dataset is local.
        r = s2.execute(
            "SELECT count(*) FROM clicks WHERE ts BETWEEN 0 AND 99"
        )
        assert r.scalar() == 100
        assert result.resident_fraction < 1.0
