"""Replication, failure injection, recovery, durability windows."""

import pytest

from repro import Cluster
from repro.errors import DurabilityLossError
from repro.replication import ReplicationManager


@pytest.fixture
def replicated():
    cluster = Cluster(node_count=4, slices_per_node=2, block_capacity=64)
    s = cluster.connect()
    s.execute("CREATE TABLE data (k int, v varchar(16)) DISTKEY(k)")
    cluster.register_inline_source(
        "inline://data", [f"{i}|value-{i}" for i in range(2000)]
    )
    s.execute("COPY data FROM 'inline://data'")
    manager = ReplicationManager(cluster, cohort_size=2)
    manager.sync_from_cluster()
    return cluster, s, manager


class TestPlacement:
    def test_every_block_has_a_secondary(self, replicated):
        _, _, manager = replicated
        assert manager.replicas
        for info in manager.replicas.values():
            assert info.primary_slice != info.secondary_slice

    def test_secondary_on_different_node(self, replicated):
        cluster, _, manager = replicated
        node_of = {
            s.slice_id: node.node_id
            for node in cluster.nodes
            for s in node.slices
        }
        for info in manager.replicas.values():
            assert node_of[info.primary_slice] != node_of[info.secondary_slice]

    def test_secondary_within_cohort(self, replicated):
        cluster, _, manager = replicated
        node_of = {
            s.slice_id: node.node_id
            for node in cluster.nodes
            for s in node.slices
        }
        for info in manager.replicas.values():
            primary_node = node_of[info.primary_slice]
            cohort = manager.cohorts.cohort_of(primary_node)
            assert node_of[info.secondary_slice] in cohort

    def test_sync_is_incremental(self, replicated):
        cluster, s, manager = replicated
        assert manager.sync_from_cluster() == 0  # nothing new
        cluster.register_inline_source("inline://more", ["9001|x"])
        s.execute("COPY data FROM 'inline://more'")
        assert manager.sync_from_cluster() > 0


class TestFailover:
    def test_read_from_secondary_after_primary_failure(self, replicated):
        _, _, manager = replicated
        block_id = next(iter(manager.replicas))
        info = manager.replicas[block_id]
        manager.fail_slice(info.primary_slice)
        block = manager.read_block(block_id)  # transparent failover
        assert block.block_id == block_id
        assert block.read()  # decodes fine

    def test_at_risk_blocks_tracked(self, replicated):
        cluster, _, manager = replicated
        assert manager.at_risk_blocks() == []
        failed = manager.fail_node("node-0")
        assert failed
        at_risk = manager.at_risk_blocks()
        assert at_risk  # single-copy blocks exist until re-replication

    def test_double_fault_loses_data_without_s3(self, replicated):
        _, _, manager = replicated
        block_id = next(iter(manager.replicas))
        info = manager.replicas[block_id]
        manager.fail_slice(info.primary_slice)
        manager.fail_slice(info.secondary_slice)
        with pytest.raises(DurabilityLossError):
            manager.read_block(block_id)

    def test_s3_copy_saves_double_fault(self, replicated, env):
        cluster, _, manager = replicated
        from repro.backup import BackupManager

        backups = BackupManager(cluster, env.s3, "b", env.clock)
        backups.snapshot()
        block_id = next(iter(manager.replicas))
        info = manager.replicas[block_id]
        manager.fail_slice(info.primary_slice)
        manager.fail_slice(info.secondary_slice)
        block = manager.read_block(block_id, backups.s3_block_reader)
        assert block.read()


class TestRecovery:
    def test_node_failure_recovery_preserves_queries(self, replicated):
        cluster, s, manager = replicated
        before = s.execute("SELECT count(*), sum(k) FROM data").rows
        for slice_id in manager.fail_node("node-1"):
            restored_bytes, duration = manager.recover_slice(slice_id)
            assert restored_bytes > 0
            assert duration >= 0
        after = s.execute("SELECT count(*), sum(k) FROM data").rows
        assert before == after

    def test_recovery_preserves_tombstones(self, replicated):
        cluster, s, manager = replicated
        s.execute("DELETE FROM data WHERE k < 1000")
        manager.sync_from_cluster()
        for slice_id in manager.fail_node("node-2"):
            manager.recover_slice(slice_id)
        assert s.execute("SELECT count(*) FROM data").scalar() == 1000

    def test_unsynced_slice_recovers_empty(self):
        cluster = Cluster(node_count=2, slices_per_node=1)
        manager = ReplicationManager(cluster)
        manager.fail_slice("node-0-s0")
        restored, _ = manager.recover_slice("node-0-s0")
        assert restored == 0
