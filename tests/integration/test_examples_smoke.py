"""Every script in examples/ must run clean: they are living documentation.

Each example executes in a subprocess the way a reader would run it
(``python examples/<name>.py``), with src/ on PYTHONPATH. A failure means
the README's promises drifted from the code.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    # Guard against the glob silently matching nothing (e.g. after a move).
    assert len(EXAMPLES) >= 8
    assert any(p.stem == "observability" for p in EXAMPLES)
