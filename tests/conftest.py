"""Shared fixtures: small clusters, loaded datasets, cloud environments."""

from __future__ import annotations

import pytest

from repro import Cluster
from repro.cloud import CloudEnvironment


@pytest.fixture
def cluster() -> Cluster:
    """An empty 2-node, 4-slice cluster with small blocks so multi-block
    behaviour (zone maps, sealing) shows up at test scale."""
    return Cluster(node_count=2, slices_per_node=2, block_capacity=64)


@pytest.fixture
def session(cluster):
    return cluster.connect()


@pytest.fixture
def loaded_cluster() -> Cluster:
    """A cluster pre-loaded with the users/clicks/tiny star used across
    the SQL tests: users KEY-distributed, clicks KEY on the join column,
    tiny replicated."""
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=64)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE users (id int NOT NULL, name varchar(32), age int) "
        "DISTKEY(id)"
    )
    s.execute(
        "CREATE TABLE clicks (user_id int, url varchar(64), n int, "
        "price float) DISTKEY(user_id) SORTKEY(n)"
    )
    s.execute("CREATE TABLE tiny (k int, label varchar(16)) DISTSTYLE ALL")
    s.execute(
        "INSERT INTO users VALUES (1,'alice',30),(2,'bob',25),"
        "(3,'carol',35),(4,NULL,NULL)"
    )
    s.execute("INSERT INTO tiny VALUES (0,'even'),(1,'odd')")
    rows = ",".join(
        f"({i % 4 + 1}, 'http://site/{i % 10}', {i}, {round((i % 37) * 1.25, 2)})"
        for i in range(800)
    )
    s.execute(f"INSERT INTO clicks VALUES {rows}")
    return cluster


@pytest.fixture
def loaded_session(loaded_cluster):
    return loaded_cluster.connect()


@pytest.fixture
def env() -> CloudEnvironment:
    return CloudEnvironment(seed=1234)
