"""Parser coverage for set operations and subquery expressions."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_expression, parse_statement


def stable(sql: str):
    first = parse_statement(sql)
    second = parse_statement(first.to_sql())
    assert first.to_sql() == second.to_sql()
    return first


class TestSetOperationParsing:
    def test_union_all(self):
        stmt = stable("SELECT a FROM t UNION ALL SELECT b FROM u")
        q = stmt.query
        assert isinstance(q, ast.SetOperation)
        assert q.op == "union" and q.all

    def test_union_distinct_keyword(self):
        q = parse_statement("SELECT a FROM t UNION DISTINCT SELECT b FROM u").query
        assert not q.all

    def test_intersect_and_except(self):
        for op in ("INTERSECT", "EXCEPT"):
            q = parse_statement(f"SELECT a FROM t {op} SELECT b FROM u").query
            assert q.op == op.lower()
            assert not q.all

    def test_left_associativity(self):
        q = parse_statement(
            "SELECT 1 UNION SELECT 2 EXCEPT SELECT 3"
        ).query
        assert q.op == "except"
        assert isinstance(q.left, ast.SetOperation)
        assert q.left.op == "union"

    def test_parenthesized_grouping(self):
        q = parse_statement(
            "SELECT 1 EXCEPT (SELECT 2 UNION SELECT 3)"
        ).query
        assert q.op == "except"
        assert isinstance(q.right, ast.SetOperation)

    def test_order_limit_attach_to_whole(self):
        q = stable(
            "SELECT a FROM t UNION SELECT b FROM u ORDER BY 1 DESC LIMIT 3"
        ).query
        assert isinstance(q, ast.SetOperation)
        assert q.limit == 3
        assert q.order_by[0].descending

    def test_set_op_inside_subquery_ref(self):
        q = parse_statement(
            "SELECT * FROM (SELECT 1 x UNION SELECT 2 x) AS s"
        ).query
        assert isinstance(q.from_item, ast.SubqueryRef)
        assert isinstance(q.from_item.query, ast.SetOperation)

    def test_set_op_inside_cte(self):
        q = parse_statement(
            "WITH c AS (SELECT 1 UNION SELECT 2) SELECT * FROM c"
        ).query
        assert isinstance(q.ctes[0].query, ast.SetOperation)


class TestSubqueryParsing:
    def test_scalar_subquery(self):
        e = parse_expression("(SELECT max(x) FROM t)")
        assert isinstance(e, ast.ScalarSubquery)

    def test_scalar_subquery_in_arithmetic(self):
        e = parse_expression("1 + (SELECT count(*) FROM t)")
        assert isinstance(e.right, ast.ScalarSubquery)

    def test_in_subquery(self):
        e = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(e, ast.InExpr)
        assert e.subquery is not None
        assert e.items == []

    def test_not_in_subquery(self):
        e = parse_expression("x NOT IN (SELECT y FROM t)")
        assert e.negated and e.subquery is not None

    def test_in_list_still_works(self):
        e = parse_expression("x IN (1, 2)")
        assert e.subquery is None and len(e.items) == 2

    def test_parenthesized_expression_not_subquery(self):
        e = parse_expression("(1 + 2) * 3")
        assert isinstance(e, ast.BinaryOp)

    def test_subquery_with_cte_inside(self):
        e = parse_expression("(WITH c AS (SELECT 1 x) SELECT x FROM c)")
        assert isinstance(e, ast.ScalarSubquery)

    def test_rendering_roundtrip(self):
        stable("SELECT a FROM t WHERE b IN (SELECT c FROM u) AND "
               "d > (SELECT avg(e) FROM v)")
