"""Workload capture, replay, diff, and synthesis."""

from __future__ import annotations

import pytest

from repro import Cluster
from repro.errors import ReplayError
from repro.replay import (
    CapturedWorkload,
    FleetProfile,
    TableSpec,
    TraceStats,
    capture_workload,
    diff_capture,
    diff_reports,
    replay,
    synthesize,
    synthesize_like,
)

SPEC = TableSpec("t", "k", "v", key_low=0, key_high=50)


def prepared_cluster() -> Cluster:
    cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
    session = cluster.connect()
    session.execute("CREATE TABLE t (k int, v int)")
    session.execute(
        "INSERT INTO t VALUES "
        + ",".join(f"({i % 50}, {i})" for i in range(300))
    )
    # Drop the setup statements from the audit log so captures hold only
    # the workload run after preparation (the SimpleReplay shape: the
    # target cluster is restored from the same data, not rebuilt by DDL).
    cluster.systables.store.clear("stl_query")
    return cluster


class TestCapture:
    def test_capture_projects_stl_query(self):
        cluster = prepared_cluster()
        session = cluster.connect(user_name="ana")
        session.execute("SELECT count(*) FROM t")
        session.execute("SELECT sum(v) FROM t WHERE k < 10")
        workload = capture_workload(cluster)
        # stl_query records the parser's normalized rendering.
        texts = [q.text for q in workload.queries]
        assert "SELECT COUNT(*) FROM t" in texts
        by_ana = [q for q in workload.queries if q.user_name == "ana"]
        assert len(by_ana) == 2
        assert all(q.session_id == session.session_id for q in by_ana)

    def test_offsets_are_anchored_and_ordered(self):
        cluster = prepared_cluster()
        session = cluster.connect()
        for low in range(4):
            session.execute(f"SELECT count(*) FROM t WHERE k >= {low}")
        workload = capture_workload(cluster)
        offsets = [q.offset_s for q in workload.queries]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_failed_and_system_queries_are_skipped(self):
        cluster = prepared_cluster()
        session = cluster.connect()
        with pytest.raises(Exception):
            session.execute("SELECT count(*) FROM no_such_table")
        session.execute("SELECT count(*) FROM stl_query")
        workload = capture_workload(cluster)
        texts = [q.text for q in workload.queries]
        assert all("no_such_table" not in text for text in texts)
        assert all("stl_query" not in text for text in texts)
        with_failed = capture_workload(cluster, include_failed=True)
        assert len(with_failed) == len(workload) + 1

    def test_select_fingerprints_are_captured(self):
        cluster = prepared_cluster()
        cluster.connect().execute("SELECT count(*) FROM t")
        workload = capture_workload(cluster)
        selects = [
            q for q in workload.queries if q.text.startswith("SELECT")
        ]
        assert selects
        assert all(q.result_fingerprint for q in selects)

    def test_json_round_trip(self):
        cluster = prepared_cluster()
        workload = capture_workload(cluster)
        again = CapturedWorkload.from_json(workload.to_json())
        assert again.queries == workload.queries

    def test_malformed_json_raises_replay_error(self):
        with pytest.raises(ReplayError):
            CapturedWorkload.from_json("{not json")
        with pytest.raises(ReplayError):
            CapturedWorkload.from_json('{"queries": [{"bogus": 1}]}')

    def test_capture_without_systables_raises(self):
        cluster = prepared_cluster()
        cluster.systables = None
        with pytest.raises(ReplayError):
            capture_workload(cluster)


class TestReplay:
    def test_replay_reproduces_results_bit_identically(self):
        source = prepared_cluster()
        session = source.connect()
        for low in range(0, 40, 5):
            session.execute(
                f"SELECT count(*), sum(v) FROM t WHERE k >= {low}"
            )
        workload = capture_workload(source)
        target = prepared_cluster()
        report = replay(workload, target, speedup=8.0)
        diff = diff_capture(workload, report)
        assert report.error_count == 0
        assert diff.compared > 0
        assert diff.results_identical
        assert diff.latency is not None

    def test_replay_preserves_session_interleaving(self):
        source = prepared_cluster()
        a = source.connect(user_name="a")
        b = source.connect(user_name="b")
        a.execute("SELECT count(*) FROM t")
        b.execute("SELECT sum(v) FROM t")
        a.execute("SELECT min(k) FROM t")
        workload = capture_workload(source)
        target = prepared_cluster()
        report = replay(workload, target, speedup=10.0)
        by_session = {}
        for q in report.queries:
            by_session.setdefault(q.session_id, []).append(q)
        assert len(by_session) == 2
        # Within a session, replay preserves the captured order.
        captured_sessions = workload.sessions()
        for session_id, stream in by_session.items():
            captured_ids = [
                q.query_id for q in captured_sessions[session_id]
            ]
            assert [q.query_id for q in stream] == captured_ids

    def test_replay_records_errors_without_raising(self):
        source = prepared_cluster()
        source.connect().execute("SELECT count(*) FROM t")
        workload = capture_workload(source)
        empty = Cluster(node_count=1, slices_per_node=2)  # no table t
        report = replay(workload, empty, speedup=10.0)
        assert report.error_count >= 1
        diff = diff_capture(workload, report)
        assert diff.new_errors
        assert not diff.results_identical

    def test_bad_speedup_rejected(self):
        with pytest.raises(ReplayError):
            replay(CapturedWorkload(), prepared_cluster(), speedup=0)

    def test_diff_reports_compares_two_replays(self):
        source = prepared_cluster()
        session = source.connect()
        for low in (0, 10, 20):
            session.execute(f"SELECT count(*) FROM t WHERE k >= {low}")
        workload = capture_workload(source)
        r1 = replay(workload, prepared_cluster(), speedup=10.0)
        r2 = replay(workload, prepared_cluster(), speedup=10.0)
        diff = diff_reports(r1, r2)
        assert diff.compared == 3
        assert diff.results_identical

    def test_forced_executor_overrides_capture(self):
        source = prepared_cluster()
        source.connect(executor="vectorized").execute(
            "SELECT count(*) FROM t"
        )
        workload = capture_workload(source)
        assert workload.queries[-1].executor == "vectorized"
        target = prepared_cluster()
        report = replay(workload, target, speedup=10.0, executor="volcano")
        assert report.error_count == 0
        # count(*) is integer-exact, so even across executors it matches.
        diff = diff_capture(workload, report)
        assert diff.results_identical


class TestSynthesize:
    def test_same_seed_same_workload(self):
        a = synthesize(FleetProfile(duration_s=0.2), [SPEC], seed=11)
        b = synthesize(FleetProfile(duration_s=0.2), [SPEC], seed=11)
        assert a.queries == b.queries
        c = synthesize(FleetProfile(duration_s=0.2), [SPEC], seed=12)
        assert a.queries != c.queries

    def test_fleet_mix_present(self):
        workload = synthesize(
            FleetProfile(
                dashboards=2, adhoc=2, etl=2, duration_s=0.5
            ),
            [SPEC],
            seed=3,
        )
        users = {q.user_name for q in workload.queries}
        assert any(u.startswith("dashboard") for u in users)
        assert any(u.startswith("adhoc") for u in users)
        assert any(u.startswith("etl") for u in users)
        assert any(q.text.startswith("INSERT") for q in workload.queries)
        assert any(q.text.startswith("SELECT") for q in workload.queries)

    def test_synthetic_workload_replays_cleanly(self):
        workload = synthesize(
            FleetProfile(
                dashboards=2, adhoc=1, etl=1, duration_s=0.2
            ),
            [SPEC],
            seed=5,
        )
        assert len(workload) > 0
        target = prepared_cluster()
        report = replay(workload, target, speedup=20.0)
        assert report.error_count == 0
        assert len(report.queries) == len(workload)

    def test_empty_tables_rejected(self):
        with pytest.raises(ReplayError):
            synthesize(FleetProfile(), [])

    def test_synthesize_like_matches_shape(self):
        source = prepared_cluster()
        a = source.connect(user_name="r1")
        b = source.connect(user_name="r2")
        for _ in range(5):
            a.execute("SELECT count(*) FROM t")
            b.execute("SELECT sum(v) FROM t")
        workload = capture_workload(source)
        stats = TraceStats.from_workload(workload)
        assert stats.read_fraction > 0.5
        like = synthesize_like(stats, [SPEC], seed=9)
        assert len(like.sessions()) == stats.sessions
        assert like.read_fraction > 0.5
