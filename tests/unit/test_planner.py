"""Binder and physical planner: resolution, typing, distribution choices."""

import pytest

from repro import Cluster
from repro.errors import (
    AmbiguousColumnError,
    AnalysisError,
    ColumnNotFoundError,
    TableNotFoundError,
)
from repro.plan import (
    Binder,
    PhysicalHashJoin,
    PhysicalPlanner,
    PhysicalScan,
    JoinDistribution,
    explain,
)
from repro.sql.parser import parse_statement


@pytest.fixture
def setup():
    cluster = Cluster(node_count=2, slices_per_node=2)
    s = cluster.connect()
    s.execute("CREATE TABLE big (k int, v int, s varchar(16)) DISTKEY(k)")
    s.execute("CREATE TABLE big2 (k int, w int) DISTKEY(k)")
    s.execute("CREATE TABLE evens (k int, v int) DISTSTYLE EVEN")
    s.execute("CREATE TABLE dims (k int, label varchar(8)) DISTSTYLE ALL")
    # Give the planner size signals.
    s.execute("INSERT INTO dims VALUES (1, 'a'), (2, 'b')")
    rows = ",".join(f"({i%50},{i},'s{i%7}')" for i in range(500))
    s.execute(f"INSERT INTO big VALUES {rows}")
    rows2 = ",".join(f"({i%50},{i})" for i in range(500))
    s.execute(f"INSERT INTO big2 VALUES {rows2}")
    s.execute(f"INSERT INTO evens VALUES {rows2}")
    binder = Binder(cluster.catalog)
    planner = PhysicalPlanner(cluster.catalog, cluster.slice_count)
    return cluster, binder, planner


def plan(setup, sql):
    _cluster, binder, planner = setup
    stmt = parse_statement(sql)
    return planner.plan(binder.bind_select(stmt.query))


def find(node, kind):
    if isinstance(node, kind):
        return node
    for child in node.children:
        found = find(child, kind)
        if found is not None:
            return found
    return None


class TestBinder:
    def test_unknown_table(self, setup):
        with pytest.raises(TableNotFoundError):
            plan(setup, "SELECT * FROM nope")

    def test_unknown_column(self, setup):
        with pytest.raises(ColumnNotFoundError):
            plan(setup, "SELECT zzz FROM big")

    def test_ambiguous_column(self, setup):
        with pytest.raises(AmbiguousColumnError):
            plan(setup, "SELECT k FROM big, big2")

    def test_qualified_disambiguation(self, setup):
        node = plan(setup, "SELECT big.k FROM big, big2")
        assert node is not None

    def test_column_not_in_group_by_rejected(self, setup):
        with pytest.raises(AnalysisError):
            plan(setup, "SELECT v, count(*) FROM big GROUP BY k")

    def test_group_by_ordinal_and_alias(self, setup):
        plan(setup, "SELECT s AS tag, count(*) FROM big GROUP BY 1")
        plan(setup, "SELECT s AS tag, count(*) FROM big GROUP BY tag")

    def test_group_by_expression_matching(self, setup):
        plan(setup, "SELECT k % 10, count(*) FROM big GROUP BY k % 10")

    def test_nested_aggregate_rejected(self, setup):
        with pytest.raises(AnalysisError):
            plan(setup, "SELECT sum(count(*)) FROM big")

    def test_aggregate_in_where_rejected(self, setup):
        with pytest.raises(AnalysisError):
            plan(setup, "SELECT k FROM big WHERE count(*) > 1")

    def test_order_by_ordinal_out_of_range(self, setup):
        with pytest.raises(AnalysisError):
            plan(setup, "SELECT k FROM big ORDER BY 3")

    def test_select_star_expansion_types(self, setup):
        _c, binder, _p = setup
        stmt = parse_statement("SELECT * FROM big")
        logical = binder.bind_select(stmt.query)
        assert [c.name for c in logical.output] == ["k", "v", "s"]


class TestScanPlanning:
    def test_projection_pushdown_only_reads_needed_columns(self, setup):
        node = plan(setup, "SELECT v FROM big")
        scan = find(node, PhysicalScan)
        assert len(scan.column_indexes) == 3  # scans currently expose all
        # (binder keeps whole-table scan output; the executor reads only
        # the chains named in column_indexes)

    def test_zone_predicates_extracted(self, setup):
        node = plan(setup, "SELECT * FROM big WHERE v >= 100 AND v < 200")
        scan = find(node, PhysicalScan)
        ops = sorted(op for _, op, _ in scan.zone_predicates)
        assert ops == ["<", ">="]

    def test_zone_predicate_literal_flip(self, setup):
        node = plan(setup, "SELECT * FROM big WHERE 100 > v")
        scan = find(node, PhysicalScan)
        assert scan.zone_predicates == [(1, "<", 100)]

    def test_between_becomes_two_zone_predicates(self, setup):
        node = plan(setup, "SELECT * FROM big WHERE v BETWEEN 10 AND 20")
        scan = find(node, PhysicalScan)
        assert len(scan.zone_predicates) == 2

    def test_selectivity_reduces_estimate(self, setup):
        unfiltered = plan(setup, "SELECT * FROM big")
        filtered = plan(setup, "SELECT * FROM big WHERE v = 3")
        assert filtered.est_rows < unfiltered.est_rows


class TestJoinStrategy:
    def test_distkey_join_is_colocated(self, setup):
        node = plan(
            setup, "SELECT * FROM big JOIN big2 ON big.k = big2.k"
        )
        join = find(node, PhysicalHashJoin)
        assert join.strategy is JoinDistribution.DS_DIST_NONE

    def test_all_table_join_is_colocated(self, setup):
        node = plan(
            setup, "SELECT * FROM evens JOIN dims ON evens.k = dims.k"
        )
        join = find(node, PhysicalHashJoin)
        assert join.strategy is JoinDistribution.DS_DIST_NONE

    def test_small_inner_broadcasts(self, setup):
        node = plan(
            setup,
            "SELECT * FROM evens e JOIN (SELECT k FROM evens WHERE v = 1) s "
            "ON e.k = s.k",
        )
        join = find(node, PhysicalHashJoin)
        assert join.strategy in (
            JoinDistribution.DS_BCAST_INNER,
            JoinDistribution.DS_DIST_BOTH,
        )

    def test_filter_pushes_through_join(self, setup):
        node = plan(
            setup,
            "SELECT * FROM big JOIN big2 ON big.k = big2.k WHERE big.v > 100 "
            "AND big2.w < 50",
        )
        join = find(node, PhysicalHashJoin)
        left_scan = find(join.left, PhysicalScan)
        right_scan = find(join.right, PhysicalScan)
        assert left_scan.filters, "left conjunct should have been pushed"
        assert right_scan.filters, "right conjunct should have been pushed"

    def test_left_join_does_not_push_nullable_side_filter(self, setup):
        node = plan(
            setup,
            "SELECT * FROM big LEFT JOIN big2 ON big.k = big2.k "
            "WHERE big2.w IS NULL",
        )
        join = find(node, PhysicalHashJoin)
        right_scan = find(join.right, PhysicalScan)
        assert not right_scan.filters  # must stay above the join

    def test_non_equi_join_nested_loop(self, setup):
        from repro.plan import PhysicalNestedLoopJoin

        node = plan(setup, "SELECT * FROM dims a JOIN dims b ON a.k < b.k")
        assert find(node, PhysicalNestedLoopJoin) is not None

    def test_full_join_without_keys_rejected(self, setup):
        with pytest.raises(AnalysisError):
            plan(setup, "SELECT * FROM big FULL JOIN big2 ON big.k < big2.k")


class TestAggregatePlanning:
    def test_group_on_distkey_is_local(self, setup):
        node = plan(setup, "SELECT k, count(*) FROM big GROUP BY k")
        from repro.plan import PhysicalAggregate

        agg = find(node, PhysicalAggregate)
        assert agg.local_only

    def test_group_on_other_column_needs_merge(self, setup):
        node = plan(setup, "SELECT v, count(*) FROM big GROUP BY v")
        from repro.plan import PhysicalAggregate

        agg = find(node, PhysicalAggregate)
        assert not agg.local_only


class TestExplain:
    def test_explain_mentions_strategy_and_filters(self, setup):
        node = plan(
            setup,
            "SELECT big.k, count(*) FROM big JOIN big2 ON big.k = big2.k "
            "WHERE big.v > 5 GROUP BY big.k",
        )
        text = explain(node)
        assert "DS_DIST_NONE" in text
        assert "Seq Scan on big" in text
        assert "rows=" in text
