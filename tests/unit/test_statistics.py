"""Statistics lifecycle: ANALYZE/COPY refresh, mutation staleness, and
the svl_table_stats / svl_column_stats / svl_query_summary surfaces."""

import pytest

from repro import Cluster


@pytest.fixture
def cluster():
    return Cluster(node_count=2, slices_per_node=2)


@pytest.fixture
def session(cluster):
    s = cluster.connect()
    s.execute("SET enable_result_cache = off")
    return s


@pytest.fixture
def analyzed(cluster, session):
    session.execute("CREATE TABLE t (id int, g int, name varchar(16))")
    session.execute(
        "INSERT INTO t VALUES "
        + ",".join(f"({i}, {i % 5}, 'n{i}')" for i in range(50))
    )
    session.execute("ANALYZE t")
    return cluster.catalog.table("t")


class TestStalenessLifecycle:
    """Every mutation path must flip ``TableStatistics.stale`` so the
    planner stops trusting NDV/min-max until the next ANALYZE."""

    def test_analyze_clears_stale_and_fills_stats(self, analyzed):
        stats = analyzed.statistics
        assert stats.stale is False
        assert stats.row_count == 50
        id_stats = stats.columns["id"]
        assert id_stats.low == 0
        assert id_stats.high == 49
        assert id_stats.distinct_count == pytest.approx(50, abs=3)
        assert stats.columns["g"].distinct_count == pytest.approx(5, abs=1)
        assert id_stats.null_fraction == 0.0

    def test_insert_marks_stale_and_tracks_rowcount(self, analyzed, session):
        session.execute("INSERT INTO t VALUES (100, 1, 'x'), (101, 2, 'y')")
        assert analyzed.statistics.stale is True
        assert analyzed.statistics.row_count == 52

    def test_delete_marks_stale_and_tracks_rowcount(self, analyzed, session):
        session.execute("DELETE FROM t WHERE g = 0")
        assert analyzed.statistics.stale is True
        assert analyzed.statistics.row_count == 40

    def test_update_marks_stale(self, analyzed, session):
        session.execute("UPDATE t SET g = 9 WHERE id < 10")
        assert analyzed.statistics.stale is True

    def test_vacuum_marks_stale(self, analyzed, session):
        session.execute("DELETE FROM t WHERE g = 1")
        session.execute("ANALYZE t")
        assert analyzed.statistics.stale is False
        session.execute("VACUUM t")
        assert analyzed.statistics.stale is True

    def test_analyze_after_mutations_refreshes(self, analyzed, session):
        session.execute("DELETE FROM t WHERE id >= 25")
        session.execute("ANALYZE t")
        stats = analyzed.statistics
        assert stats.stale is False
        assert stats.row_count == 25
        assert stats.columns["id"].high == 24

    def test_bare_analyze_covers_all_tables(self, analyzed, cluster, session):
        session.execute("CREATE TABLE u (k int)")
        session.execute("INSERT INTO u VALUES (1), (2)")
        session.execute("INSERT INTO t VALUES (200, 0, 'z')")
        session.execute("ANALYZE")
        assert analyzed.statistics.stale is False
        assert cluster.catalog.table("u").statistics.stale is False
        assert cluster.catalog.table("u").statistics.row_count == 2


class TestCopyStatistics:
    @pytest.fixture
    def source(self, cluster, session):
        session.execute("CREATE TABLE t (id int, g int)")
        cluster.register_inline_source(
            "stats://t", [f"{i}|{i % 3}" for i in range(30)]
        )
        return cluster.catalog.table("t")

    def test_copy_refreshes_statistics_by_default(self, source, session):
        session.execute("COPY t FROM 'stats://t'")
        stats = source.statistics
        assert stats.stale is False
        assert stats.row_count == 30
        assert stats.columns["g"].distinct_count == pytest.approx(3, abs=1)

    def test_copy_statupdate_off_marks_stale(self, source, session):
        session.execute("COPY t FROM 'stats://t' STATUPDATE OFF")
        assert source.statistics.stale is True
        assert source.statistics.row_count == 30  # incremental count only


class TestStatsSystemTables:
    def test_svl_table_stats_rows(self, analyzed, session):
        rows = session.execute(
            "SELECT table_name, row_count, stale FROM svl_table_stats"
        ).rows
        assert ("t", 50, 0) in rows
        session.execute("INSERT INTO t VALUES (100, 1, 'x')")
        rows = session.execute(
            "SELECT table_name, row_count, stale FROM svl_table_stats"
        ).rows
        assert ("t", 51, 1) in rows

    def test_svl_column_stats_rows(self, analyzed, session):
        rows = session.execute(
            "SELECT column_name, low, high, ndv FROM svl_column_stats "
            "WHERE table_name = 't' ORDER BY column_name"
        ).rows
        by_name = {r[0]: r[1:] for r in rows}
        assert by_name["id"][0] == "0"
        assert by_name["id"][1] == "49"
        assert by_name["id"][2] == pytest.approx(50, abs=3)
        assert by_name["g"][:2] == ("0", "4")

    def test_never_analyzed_table_has_no_column_rows(self, session):
        session.execute("CREATE TABLE fresh (k int)")
        rows = session.execute(
            "SELECT * FROM svl_column_stats WHERE table_name = 'fresh'"
        ).rows
        assert rows == []


class TestEstimateSurfaces:
    def test_explain_analyze_shows_est_vs_actual(self, analyzed, session):
        text = "\n".join(
            r[0]
            for r in session.execute(
                "EXPLAIN ANALYZE SELECT g, count(*) FROM t "
                "WHERE id < 25 GROUP BY g"
            ).rows
        )
        assert "actual rows=" in text
        assert "est=" in text

    def test_plain_explain_has_no_actuals(self, analyzed, session):
        text = "\n".join(
            r[0]
            for r in session.execute("EXPLAIN SELECT * FROM t").rows
        )
        assert "actual rows=" not in text

    def test_query_summary_misestimation_factor(self, analyzed, session):
        session.execute("SELECT count(*) FROM t WHERE id < 25")
        rows = session.execute(
            "SELECT rows, est_rows, misest_factor FROM svl_query_summary "
            "WHERE query = (SELECT max(query) FROM svl_query_summary)"
        ).rows
        assert rows
        for actual, est, factor in rows:
            expected = max(actual, est, 1.0) / max(min(actual, est), 1.0)
            assert factor == pytest.approx(expected)
            assert factor >= 1.0
        # Fresh stats on a simple scan should estimate well: the worst
        # operator misestimation stays within a small factor.
        assert max(r[2] for r in rows) < 3.0
