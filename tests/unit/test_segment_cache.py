"""The compiled-segment cache: pipeline fragment reuse across queries.

The compiled executor's generated source depends only on the pipeline's
plan-fragment shape (bound expressions render index-qualified SQL), so
equal :func:`fragment_signature` values may share one compiled function.
These tests pin the signature's soundness boundaries — equal shapes
share, different literals/shapes don't — correctness of reuse (including
join pipelines, whose hash tables are rebuilt per query from re-derived
join nodes), and the vectorized executor's kernel-code cache that forms
the second population of svl_compile_cache.
"""

import pytest

from repro import Cluster
from repro.exec.batch import KERNEL_CACHE_STATS


@pytest.fixture
def cluster():
    c = Cluster(node_count=1, slices_per_node=2, block_capacity=16)
    s = c.connect()
    s.execute("CREATE TABLE t1 (k int, v int)")
    s.execute("CREATE TABLE t2 (k int, v int)")
    s.execute("CREATE TABLE dim (k int, label varchar(8))")
    s.execute(
        "INSERT INTO t1 VALUES " + ",".join(f"({i}, {i * 2})" for i in range(48))
    )
    s.execute(
        "INSERT INTO t2 VALUES " + ",".join(f"({i}, {i * 5})" for i in range(48))
    )
    s.execute(
        "INSERT INTO dim VALUES "
        + ",".join(f"({k}, 'd{k % 3}')" for k in range(0, 48, 4))
    )
    return c


def _fresh_session(cluster):
    s = cluster.connect(executor="compiled")
    s.execute("SET enable_result_cache = off")  # measure compilation only
    return s


class TestPipelineReuse:
    def test_repeat_query_hits_segment_cache(self, cluster):
        s = _fresh_session(cluster)
        sql = "SELECT sum(v) FROM t1 WHERE k > 10"
        cold = s.execute(sql)
        assert cold.stats.segment_cache_misses > 0
        assert cold.stats.segment_cache_hits == 0
        warm = s.execute(sql)
        assert warm.stats.segment_cache_hits > 0
        assert warm.stats.segment_cache_misses == 0
        assert warm.rows == cold.rows

    def test_same_shape_shares_across_tables(self, cluster):
        """The table is not part of the signature: the same fragment shape
        over a same-layout table reuses the compiled function."""
        s = _fresh_session(cluster)
        r1 = s.execute("SELECT sum(v) FROM t1 WHERE k > 10")
        r2 = s.execute("SELECT sum(v) FROM t2 WHERE k > 10")
        assert r2.stats.segment_cache_hits > 0
        # And the shared code still computes each table's own answer.
        assert r1.rows == [(sum(i * 2 for i in range(11, 48)),)]
        assert r2.rows == [(sum(i * 5 for i in range(11, 48)),)]

    def test_different_literals_do_not_share(self, cluster):
        s = _fresh_session(cluster)
        s.execute("SELECT sum(v) FROM t1 WHERE k > 10")
        other = s.execute("SELECT sum(v) FROM t1 WHERE k > 20")
        assert other.stats.segment_cache_misses > 0
        assert other.rows == [(sum(i * 2 for i in range(21, 48)),)]

    def test_join_pipeline_reuses_with_fresh_hash_tables(self, cluster):
        """A cached join pipeline must execute against hash tables built
        from the *current* plan (build sides are per-query state)."""
        s = _fresh_session(cluster)
        sql = (
            "SELECT dim.label, count(*) FROM t1 "
            "JOIN dim ON t1.k = dim.k GROUP BY dim.label ORDER BY dim.label"
        )
        cold = s.execute(sql)
        warm = s.execute(sql)
        assert warm.stats.segment_cache_hits > 0
        assert warm.rows == cold.rows
        # Mutating the build side must flow into the cached pipeline's
        # next run — nothing about the data may be baked into the code.
        s.execute("INSERT INTO dim VALUES (1, 'dX')")
        after = s.execute(sql)
        assert after.stats.segment_cache_hits > 0
        assert after.rows != cold.rows

    def test_cache_survives_across_sessions(self, cluster):
        a = _fresh_session(cluster)
        b = _fresh_session(cluster)
        sql = "SELECT count(*) FROM t1 WHERE v > 8"
        a.execute(sql)
        assert b.execute(sql).stats.segment_cache_hits > 0

    def test_compile_time_drops_on_hit(self, cluster):
        s = _fresh_session(cluster)
        sql = "SELECT k, sum(v) FROM t1 WHERE v > 4 GROUP BY k"
        cold = s.execute(sql)
        warm = s.execute(sql)
        assert warm.stats.compile_seconds <= cold.stats.compile_seconds


class TestKernelCodeCache:
    def test_vectorized_kernel_code_reused(self, cluster):
        s = cluster.connect(executor="vectorized")
        s.execute("SET enable_result_cache = off")
        s.execute("SELECT count(*) FROM t1 WHERE v > 6")
        hits_before = KERNEL_CACHE_STATS.hits
        # Same comparison shape over the other table: the generated
        # kernel source is identical (literal arrives via the env).
        s.execute("SELECT count(*) FROM t2 WHERE v > 6")
        assert KERNEL_CACHE_STATS.hits > hits_before


class TestSvlCompileCache:
    def test_pipeline_and_kernel_rows(self, cluster):
        s = cluster.connect(executor="compiled")
        s.execute("SELECT sum(v) FROM t1 WHERE k > 3")
        s.execute("SET executor = vectorized")
        s.execute("SELECT sum(v) FROM t1 WHERE k > 3")
        rows = s.execute(
            "SELECT kind, signature, hits FROM svl_compile_cache"
        ).rows
        kinds = {row[0] for row in rows}
        assert "pipeline" in kinds
        assert "kernel" in kinds
        assert all(len(row[1]) == 64 for row in rows)  # sha256 hex

    def test_hits_column_counts_reuse(self, cluster):
        s = _fresh_session(cluster)
        sql = "SELECT max(v) FROM t1 WHERE k >= 7"
        s.execute(sql)
        s.execute(sql)
        s.execute(sql)
        rows = s.execute(
            "SELECT hits FROM svl_compile_cache WHERE kind = 'pipeline'"
        ).rows
        assert rows and max(h for (h,) in rows) >= 2
