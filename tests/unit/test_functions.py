"""Scalar functions, aggregates (partial/merge/final), and HyperLogLog."""

import datetime
import math

import pytest

from repro.datatypes import BIGINT, DOUBLE, INTEGER
from repro.errors import AnalysisError
from repro.sql.functions import (
    is_aggregate_function,
    is_scalar_function,
    make_aggregate,
    scalar_function,
)
from repro.sql.hll import HyperLogLog


class TestScalarRegistry:
    def test_lookup(self):
        assert is_scalar_function("UPPER")
        assert not is_scalar_function("no_such_fn")
        with pytest.raises(AnalysisError):
            scalar_function("no_such_fn")

    def test_arity_checked(self):
        fn = scalar_function("substring")
        with pytest.raises(AnalysisError):
            fn.check_arity(1)
        fn.check_arity(2)
        fn.check_arity(3)

    def test_null_propagation(self):
        assert scalar_function("upper")(None) is None
        assert scalar_function("length")(None) is None

    def test_null_handling_functions(self):
        assert scalar_function("coalesce")(None, 2) == 2
        assert scalar_function("nullif")(3, 3) is None
        assert scalar_function("nullif")(3, 4) == 3
        assert scalar_function("greatest")(None, 5, 2) == 5
        assert scalar_function("least")(None, 5, 2) == 2

    def test_string_functions(self):
        assert scalar_function("substring")("hello", 2, 3) == "ell"
        assert scalar_function("left")("hello", 2) == "he"
        assert scalar_function("right")("hello", 2) == "lo"
        assert scalar_function("strpos")("hello", "ll") == 3
        assert scalar_function("lpad")("7", 3, "0") == "007"
        assert scalar_function("replace")("aXbX", "X", "-") == "a-b-"
        assert scalar_function("initcap")("hello world") == "Hello World"
        assert scalar_function("reverse")("abc") == "cba"

    def test_math_functions(self):
        assert scalar_function("abs")(-3) == 3
        assert scalar_function("round")(2.567, 1) == 2.6
        assert scalar_function("round")(2.5) == 3  # half-up, not banker's
        assert scalar_function("floor")(2.9) == 2
        assert scalar_function("ceil")(2.1) == 3
        assert scalar_function("sign")(-9) == -1
        assert scalar_function("mod")(10, 3) == 1
        assert scalar_function("power")(2, 10) == 1024.0
        assert scalar_function("sqrt")(16) == 4.0

    def test_date_functions(self):
        ts = datetime.datetime(2015, 5, 31, 14, 30, 15)
        date_part = scalar_function("date_part")
        assert date_part("year", ts) == 2015
        assert date_part("quarter", ts) == 2
        assert date_part("dow", ts) == 0  # Sunday
        assert date_part("hour", ts) == 14
        trunc = scalar_function("date_trunc")
        assert trunc("month", ts) == datetime.datetime(2015, 5, 1)
        assert trunc("hour", ts) == datetime.datetime(2015, 5, 31, 14)
        dateadd = scalar_function("dateadd")
        assert dateadd("month", 1, datetime.date(2015, 1, 31)) == \
            datetime.datetime(2015, 2, 28)  # clamps to month end
        datediff = scalar_function("datediff")
        assert datediff(
            "day", datetime.date(2015, 1, 1), datetime.date(2015, 2, 1)
        ) == 31


class TestAggregates:
    def run(self, name, values, distinct=False, approximate=False):
        agg = make_aggregate(name, distinct, approximate)
        state = agg.create()
        for v in values:
            state = agg.accumulate(state, v)
        return agg.finalize(state)

    def test_count_ignores_nulls(self):
        assert self.run("count", [1, None, 2]) == 2

    def test_sum_of_nothing_is_null(self):
        assert self.run("sum", []) is None
        assert self.run("sum", [None, None]) is None

    def test_sum(self):
        assert self.run("sum", [1, 2, None, 3]) == 6

    def test_avg(self):
        assert self.run("avg", [1, 2, 3, None]) == 2.0
        assert self.run("avg", []) is None

    def test_min_max(self):
        assert self.run("min", [3, None, 1]) == 1
        assert self.run("max", [3, None, 1]) == 3

    def test_stddev_variance(self):
        vals = [2, 4, 4, 4, 5, 5, 7, 9]
        assert self.run("stddev", vals) == pytest.approx(2.138, abs=0.001)
        assert self.run("variance", vals) == pytest.approx(4.571, abs=0.001)
        assert self.run("stddev", [1]) is None  # n < 2

    def test_distinct_wrapper(self):
        assert self.run("count", [1, 1, 2, None, 2], distinct=True) == 2
        assert self.run("sum", [5, 5, 3], distinct=True) == 8

    def test_merge_equals_sequential(self):
        # The distributed invariant: merging per-slice partials must give
        # exactly the single-pass answer.
        for name in ("count", "sum", "avg", "min", "max", "stddev", "variance"):
            agg = make_aggregate(name)
            values = [1, 5, None, 2, 8, 3, None, 9, 4]
            whole = agg.create()
            for v in values:
                whole = agg.accumulate(whole, v)
            left = agg.create()
            right = agg.create()
            for v in values[:4]:
                left = agg.accumulate(left, v)
            for v in values[4:]:
                right = agg.accumulate(right, v)
            merged = agg.merge(left, right)
            a, b = agg.finalize(whole), agg.finalize(merged)
            if isinstance(a, float):
                assert a == pytest.approx(b)
            else:
                assert a == b

    def test_result_types(self):
        assert make_aggregate("count").result_type(INTEGER) == BIGINT
        assert make_aggregate("sum").result_type(INTEGER) == BIGINT
        assert make_aggregate("sum").result_type(DOUBLE) == DOUBLE
        assert make_aggregate("avg").result_type(INTEGER) == DOUBLE

    def test_unknown_aggregate(self):
        with pytest.raises(AnalysisError):
            make_aggregate("median")

    def test_approximate_only_for_count_distinct(self):
        with pytest.raises(AnalysisError):
            make_aggregate("sum", distinct=True, approximate=True)
        with pytest.raises(AnalysisError):
            make_aggregate("count", distinct=False, approximate=True)

    def test_approx_count_distinct_accuracy(self):
        result = self.run("count", range(50_000), distinct=True, approximate=True)
        assert abs(result - 50_000) / 50_000 < 0.05

    def test_is_aggregate_function(self):
        assert is_aggregate_function("COUNT")
        assert not is_aggregate_function("upper")


class TestHyperLogLog:
    def test_empty(self):
        assert HyperLogLog().cardinality() == 0

    def test_small_exact_via_linear_counting(self):
        hll = HyperLogLog(12)
        for i in range(100):
            hll.add(i)
        assert abs(hll.cardinality() - 100) <= 2

    def test_error_within_bound(self):
        hll = HyperLogLog(12)
        n = 200_000
        for i in range(n):
            hll.add(f"user-{i}")
        error = abs(hll.cardinality() - n) / n
        assert error < 3 * hll.standard_error()

    def test_duplicates_ignored(self):
        hll = HyperLogLog(10)
        for _ in range(1000):
            hll.add("same")
        assert hll.cardinality() == 1

    def test_merge_is_union(self):
        a, b = HyperLogLog(12), HyperLogLog(12)
        for i in range(0, 2000):
            a.add(i)
        for i in range(1000, 3000):
            b.add(i)
        a.merge(b)
        assert abs(a.cardinality() - 3000) / 3000 < 0.05

    def test_merge_requires_same_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_memory_is_constant(self):
        hll = HyperLogLog(12)
        assert hll.size_bytes == 4096
        for i in range(10_000):
            hll.add(i)
        assert hll.size_bytes == 4096

    def test_precision_validated(self):
        with pytest.raises(ValueError):
            HyperLogLog(3)
