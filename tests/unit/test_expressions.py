"""SQL expression semantics: three-valued logic, NULL propagation, LIKE,
CAST, and the closure evaluator."""

import datetime
import decimal

import pytest

from repro.datatypes import DATE, INTEGER, decimal_type, varchar_type
from repro.errors import DataError, DivisionByZeroError
from repro.sql import ast, parse_expression
from repro.sql.expressions import (
    cast_value,
    compile_expression,
    sql_add,
    sql_and,
    sql_div,
    sql_eq,
    sql_in,
    sql_like,
    sql_mod,
    sql_not,
    sql_or,
    sql_sub,
)


def evaluate(sql: str, row=(), resolve=None):
    expr = parse_expression(sql)
    fn = compile_expression(expr, resolve or (lambda ref: 0))
    return fn(row)


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False  # FALSE dominates
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True  # TRUE dominates
        assert sql_or(False, None) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(None) is None


class TestNullPropagation:
    def test_comparison_with_null(self):
        assert sql_eq(None, 1) is None
        assert sql_eq(1, None) is None

    def test_arithmetic_with_null(self):
        assert sql_add(None, 1) is None
        assert sql_sub(1, None) is None

    def test_in_with_null_semantics(self):
        assert sql_in(1, (1, None)) is True
        assert sql_in(2, (1, None)) is None  # unknown, not false
        assert sql_in(2, (1, 3)) is False
        assert sql_in(None, (1,)) is None


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert sql_div(7, 2) == 3
        assert sql_div(-7, 2) == -3  # not -4
        assert sql_div(7, -2) == -3

    def test_float_division(self):
        assert sql_div(7.0, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(DivisionByZeroError):
            sql_div(1, 0)
        with pytest.raises(DivisionByZeroError):
            sql_mod(1, 0)

    def test_mod_sign_follows_dividend(self):
        assert sql_mod(7, 3) == 1
        assert sql_mod(-7, 3) == -1

    def test_decimal_float_harmonized(self):
        assert sql_add(decimal.Decimal("1.5"), 0.5) == 2.0
        assert sql_eq(decimal.Decimal("2"), 2.0) is True

    def test_date_arithmetic(self):
        d = datetime.date(2015, 5, 31)
        assert sql_add(d, 1) == datetime.date(2015, 6, 1)
        assert sql_sub(d, datetime.date(2015, 5, 1)) == 30


class TestLike:
    def test_percent(self):
        assert sql_like("hello", "he%") is True
        assert sql_like("hello", "%lo") is True
        assert sql_like("hello", "x%") is False

    def test_underscore(self):
        assert sql_like("cat", "c_t") is True
        assert sql_like("cart", "c_t") is False

    def test_escaping_of_regex_chars(self):
        assert sql_like("a.b", "a.b") is True
        assert sql_like("axb", "a.b") is False  # dot is literal

    def test_backslash_escape(self):
        assert sql_like("50%", "50\\%") is True
        assert sql_like("505", "50\\%") is False

    def test_case_insensitive(self):
        assert sql_like("HELLO", "hello", case_insensitive=True) is True

    def test_null(self):
        assert sql_like(None, "%") is None


class TestCast:
    def test_string_to_int(self):
        assert cast_value("42", INTEGER) == 42

    def test_float_to_int_rounds_half_up(self):
        assert cast_value(2.5, INTEGER) == 3
        assert cast_value(-2.5, INTEGER) == -3

    def test_int_to_decimal(self):
        assert cast_value(5, decimal_type(6, 2)) == decimal.Decimal("5.00")

    def test_string_to_date(self):
        assert cast_value("2015-05-31", DATE) == datetime.date(2015, 5, 31)

    def test_anything_to_varchar(self):
        assert cast_value(3.5, varchar_type(10)) == "3.5"
        assert cast_value(True, varchar_type(10)) == "t"

    def test_invalid_cast(self):
        with pytest.raises(DataError):
            cast_value("not a number", INTEGER)

    def test_null_casts_to_null(self):
        assert cast_value(None, INTEGER) is None


class TestCompiledEvaluation:
    def test_literal(self):
        assert evaluate("1 + 2 * 3") == 7

    def test_case(self):
        assert evaluate("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END") == "b"

    def test_case_null_condition_falls_through(self):
        assert evaluate("CASE WHEN NULL THEN 'a' END") is None

    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("5 NOT BETWEEN 1 AND 10") is False

    def test_bound_ref(self):
        expr = ast.BoundRef(1, INTEGER, "b")
        fn = compile_expression(expr, lambda r: 0)
        assert fn((10, 20)) == 20

    def test_typed_literal(self):
        assert evaluate("DATE '2015-01-02'") == datetime.date(2015, 1, 2)

    def test_functions(self):
        assert evaluate("upper('abc')") == "ABC"
        assert evaluate("coalesce(NULL, NULL, 3)") == 3

    def test_concat(self):
        assert evaluate("'a' || 'b' || 1") == "ab1"

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True
