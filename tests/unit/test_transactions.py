"""Transaction manager: snapshots, visibility, conflicts."""

import pytest

from repro.engine.transactions import BOOTSTRAP_XID, TransactionManager
from repro.errors import SerializationError, TransactionError


class TestLifecycle:
    def test_begin_commit(self):
        tm = TransactionManager()
        xid = tm.begin()
        assert not tm.is_committed(xid)
        tm.commit(xid)
        assert tm.is_committed(xid)

    def test_rollback_never_commits(self):
        tm = TransactionManager()
        xid = tm.begin()
        tm.rollback(xid)
        assert not tm.is_committed(xid)

    def test_double_commit_rejected(self):
        tm = TransactionManager()
        xid = tm.begin()
        tm.commit(xid)
        with pytest.raises(TransactionError):
            tm.commit(xid)

    def test_unknown_xid_rejected(self):
        tm = TransactionManager()
        with pytest.raises(TransactionError):
            tm.snapshot(99)

    def test_bootstrap_always_committed(self):
        tm = TransactionManager()
        assert tm.is_committed(BOOTSTRAP_XID)


class TestVisibility:
    def test_own_writes_visible(self):
        tm = TransactionManager()
        xid = tm.begin()
        snap = tm.snapshot(xid)
        assert snap.can_see(insert_xid=xid, delete_xid=None)

    def test_uncommitted_others_invisible(self):
        tm = TransactionManager()
        writer = tm.begin()
        reader = tm.begin()
        snap = tm.snapshot(reader)
        assert not snap.can_see(insert_xid=writer, delete_xid=None)

    def test_snapshot_taken_at_begin(self):
        tm = TransactionManager()
        reader = tm.begin()
        writer = tm.begin()
        tm.commit(writer)
        # Repeatable read: the commit happened after the reader began.
        snap = tm.snapshot(reader)
        assert not snap.can_see(insert_xid=writer, delete_xid=None)

    def test_committed_before_begin_visible(self):
        tm = TransactionManager()
        writer = tm.begin()
        tm.commit(writer)
        reader = tm.begin()
        snap = tm.snapshot(reader)
        assert snap.can_see(insert_xid=writer, delete_xid=None)

    def test_delete_visibility(self):
        tm = TransactionManager()
        writer = tm.begin()
        tm.commit(writer)
        deleter = tm.begin()
        reader = tm.begin()
        # Deleter sees its own delete; concurrent reader does not.
        assert not tm.snapshot(deleter).can_see(BOOTSTRAP_XID, deleter)
        assert tm.snapshot(reader).can_see(BOOTSTRAP_XID, deleter)


class TestConflicts:
    def test_concurrent_delete_conflict(self):
        tm = TransactionManager()
        a = tm.begin()
        b = tm.begin()
        tm.record_delete(a, "t", "s0", 5)
        tm.record_delete(b, "t", "s0", 5)
        tm.commit(a)  # first committer wins
        with pytest.raises(SerializationError):
            tm.commit(b)

    def test_sequential_deletes_ok(self):
        tm = TransactionManager()
        a = tm.begin()
        tm.record_delete(a, "t", "s0", 5)
        tm.commit(a)
        b = tm.begin()  # begins after a committed: sees the delete
        tm.record_delete(b, "t", "s0", 5)
        tm.commit(b)

    def test_disjoint_rows_no_conflict(self):
        tm = TransactionManager()
        a = tm.begin()
        b = tm.begin()
        tm.record_delete(a, "t", "s0", 1)
        tm.record_delete(b, "t", "s0", 2)
        tm.commit(a)
        tm.commit(b)

    def test_failed_commit_removes_transaction(self):
        tm = TransactionManager()
        a = tm.begin()
        b = tm.begin()
        tm.record_delete(a, "t", "s0", 1)
        tm.record_delete(b, "t", "s0", 1)
        tm.commit(a)
        with pytest.raises(SerializationError):
            tm.commit(b)
        assert tm.active_count == 0
