"""SQL parser: statement coverage and parse→render→parse stability."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_expression, parse_statement, parse_statements


def stable(sql: str):
    """Parse, render, parse again; rendered forms must agree."""
    first = parse_statement(sql)
    second = parse_statement(first.to_sql())
    assert first.to_sql() == second.to_sql()
    return first


class TestSelect:
    def test_minimal(self):
        stmt = stable("SELECT 1")
        assert isinstance(stmt, ast.SelectStatement)

    def test_star_and_qualified_star(self):
        q = stable("SELECT *, t.* FROM t").query
        assert isinstance(q.items[0].expression, ast.Star)
        assert q.items[1].expression.table == "t"

    def test_aliases(self):
        q = stable("SELECT a AS x, b y FROM t").query
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"

    def test_distinct(self):
        assert stable("SELECT DISTINCT a FROM t").query.distinct

    def test_where_group_having_order_limit_offset(self):
        q = stable(
            "SELECT a, count(*) FROM t WHERE a > 1 GROUP BY a "
            "HAVING count(*) > 2 ORDER BY 2 DESC LIMIT 5 OFFSET 3"
        ).query
        assert q.where is not None
        assert len(q.group_by) == 1
        assert q.having is not None
        assert q.order_by[0].descending
        assert (q.limit, q.offset) == (5, 3)

    def test_join_kinds(self):
        for kind in ("JOIN", "INNER JOIN", "LEFT JOIN", "LEFT OUTER JOIN",
                     "RIGHT JOIN", "FULL OUTER JOIN"):
            q = parse_statement(f"SELECT * FROM a {kind} b ON a.x = b.x").query
            assert isinstance(q.from_item, ast.Join)

    def test_cross_join_and_comma(self):
        q1 = parse_statement("SELECT * FROM a CROSS JOIN b").query
        q2 = parse_statement("SELECT * FROM a, b").query
        assert q1.from_item.kind is ast.JoinKind.CROSS
        assert q2.from_item.kind is ast.JoinKind.CROSS

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM a JOIN b")

    def test_subquery_in_from(self):
        q = stable("SELECT x FROM (SELECT a x FROM t) AS sub").query
        assert isinstance(q.from_item, ast.SubqueryRef)
        assert q.from_item.alias == "sub"

    def test_ctes(self):
        q = stable(
            "WITH a AS (SELECT 1 x), b AS (SELECT 2 y) SELECT * FROM a, b"
        ).query
        assert [c.name for c in q.ctes] == ["a", "b"]

    def test_nested_joins_left_associative(self):
        q = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        ).query
        assert isinstance(q.from_item.left, ast.Join)


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert e.to_sql() == "(1 + (2 * 3))"

    def test_logical_precedence(self):
        e = parse_expression("a OR b AND NOT c")
        assert e.to_sql() == "(a OR (b AND (NOT c)))"

    def test_comparison_chain(self):
        e = parse_expression("a < b = c")  # left-assoc comparisons
        assert e.to_sql() == "((a < b) = c)"

    def test_unary_minus(self):
        assert parse_expression("-a * 2").to_sql() == "((- a) * 2)"

    def test_between_and_not_between(self):
        assert parse_expression("x BETWEEN 1 AND 2").to_sql() == \
            "(x BETWEEN 1 AND 2)"
        assert "NOT BETWEEN" in parse_expression("x NOT BETWEEN 1 AND 2").to_sql()

    def test_in_list(self):
        e = parse_expression("x IN (1, 2, 3)")
        assert isinstance(e, ast.InExpr)
        assert len(e.items) == 3

    def test_like_ilike(self):
        assert not parse_expression("x LIKE 'a%'").case_insensitive
        assert parse_expression("x ILIKE 'a%'").case_insensitive
        assert parse_expression("x NOT LIKE 'a%'").negated

    def test_is_null(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_case_searched(self):
        e = parse_expression("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(e, ast.CaseExpr)
        assert e.default is not None

    def test_case_simple_desugars(self):
        e = parse_expression("CASE a WHEN 1 THEN 'x' END")
        cond = e.whens[0][0]
        assert isinstance(cond, ast.BinaryOp) and cond.op == "="

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_cast_forms(self):
        a = parse_expression("CAST(x AS decimal(10,2))")
        b = parse_expression("x::decimal(10,2)")
        assert a.to_sql() == b.to_sql()

    def test_typed_literals(self):
        e = parse_expression("DATE '2015-05-31'")
        assert isinstance(e, ast.Literal) and e.type_name == "date"

    def test_function_calls(self):
        e = parse_expression("substring(name, 1, 3)")
        assert isinstance(e, ast.FunctionCall)
        assert len(e.args) == 3

    def test_count_star_and_distinct(self):
        star = parse_expression("COUNT(*)")
        assert isinstance(star.args[0], ast.Star)
        distinct = parse_expression("COUNT(DISTINCT x)")
        assert distinct.distinct

    def test_approximate(self):
        e = parse_expression("APPROXIMATE COUNT(DISTINCT x)")
        assert e.approximate and e.distinct

    def test_approximate_requires_call(self):
        with pytest.raises(ParseError):
            parse_expression("APPROXIMATE 5")

    def test_concat_operator(self):
        assert parse_expression("a || b || c").to_sql() == "((a || b) || c)"

    def test_string_escape(self):
        e = parse_expression("'it''s'")
        assert e.value == "it's"


class TestDdlDml:
    def test_create_table_full(self):
        stmt = stable(
            "CREATE TABLE t (a int NOT NULL ENCODE delta, b varchar(10)) "
            "DISTSTYLE KEY DISTKEY(a) SORTKEY(a, b)"
        )
        assert stmt.diststyle == "key"
        assert stmt.distkey == "a"
        assert stmt.sortkey == ["a", "b"]
        assert stmt.columns[0].encode == "delta"
        assert stmt.columns[0].not_null

    def test_create_table_interleaved(self):
        stmt = stable("CREATE TABLE t (a int, b int) INTERLEAVED SORTKEY(a, b)")
        assert stmt.sortkey_interleaved

    def test_create_if_not_exists(self):
        assert stable("CREATE TABLE IF NOT EXISTS t (a int)").if_not_exists

    def test_create_table_constraints_ignored(self):
        stmt = parse_statement(
            "CREATE TABLE t (a int PRIMARY KEY, b int REFERENCES u(x))"
        )
        assert len(stmt.columns) == 2

    def test_ctas(self):
        stmt = stable("CREATE TABLE t2 DISTSTYLE ALL AS SELECT a FROM t")
        assert isinstance(stmt, ast.CreateTableAsStatement)
        assert stmt.diststyle == "all"

    def test_drop(self):
        assert stable("DROP TABLE IF EXISTS t").if_exists

    def test_insert_values_multi_row(self):
        stmt = stable("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert len(stmt.rows) == 2
        assert stmt.columns == ["a", "b"]

    def test_insert_select(self):
        stmt = stable("INSERT INTO t SELECT a FROM u")
        assert stmt.query is not None

    def test_update(self):
        stmt = stable("UPDATE t SET a = a + 1, b = 'x' WHERE a < 5")
        assert len(stmt.assignments) == 2

    def test_delete(self):
        assert stable("DELETE FROM t WHERE a = 1").where is not None

    def test_copy_options(self):
        stmt = stable(
            "COPY t FROM 's3://b/k' DELIMITER ',' NULL AS 'N' GZIP "
            "COMPUPDATE OFF STATUPDATE ON"
        )
        assert stmt.source == "s3://b/k"
        assert stmt.options["delimiter"] == ","
        assert stmt.options["compupdate"] is False
        assert stmt.options["statupdate"] is True

    def test_copy_requires_string_source(self):
        with pytest.raises(ParseError):
            parse_statement("COPY t FROM somewhere")

    def test_maintenance(self):
        assert stable("ANALYZE COMPRESSION t").compression
        assert stable("VACUUM REINDEX t").reindex
        assert stable("VACUUM").table is None

    def test_explain(self):
        stmt = stable("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.ExplainStatement)

    def test_transactions(self):
        kinds = [type(s).__name__ for s in parse_statements("BEGIN; COMMIT; ROLLBACK")]
        assert kinds == ["BeginStatement", "CommitStatement", "RollbackStatement"]

    def test_script_parsing_with_stray_semicolons(self):
        stmts = parse_statements(";;SELECT 1;; SELECT 2;")
        assert len(stmts) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_statement("GRANT ALL ON t TO bob")
