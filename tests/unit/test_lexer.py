"""SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql import Token, TokenType, tokenize


def types(sql):
    return [t.type for t in tokenize(sql)[:-1]]  # strip EOF


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.matches_keyword("select") for t in tokens[:-1])

    def test_identifiers_folded(self):
        assert texts("FooBar") == ["foobar"]

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"FooBar"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].text == "FooBar"

    def test_quoted_identifier_escape(self):
        assert tokenize('"a""b"')[0].text == 'a"b'

    def test_string_literal(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_numbers(self):
        assert texts("1 2.5 .5 1e3 1.5E-2") == ["1", "2.5", ".5", "1e3", "1.5E-2"]
        assert all(t is TokenType.NUMBER for t in types("1 2.5 .5 1e3 1.5E-2"))

    def test_number_followed_by_dot_method(self):
        # "1." parses the dot into the number; "t.c" keeps the dot separate.
        tokens = tokenize("t.c")
        assert [t.text for t in tokens[:-1]] == ["t", ".", "c"]

    def test_multi_char_operators(self):
        assert texts("<> <= >= != || ::") == ["<>", "<=", ">=", "!=", "||", "::"]

    def test_line_comments_skipped(self):
        assert texts("a -- comment\n b") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* b")

    def test_positions_reported(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a @ b")
        assert "line 1" in str(err.value)

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF
