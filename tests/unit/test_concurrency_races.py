"""Regression tests for the shared-structure races the server exposed.

Each test here stresses one structure the way concurrent server
sessions do — many threads hammering the same cache, store, or manager
— and pins the behavior the locking/single-flight work guarantees.
Before that work these failed with lost updates, "deque mutated during
iteration" / "set changed size during iteration", or duplicate
executions of the same cached query.
"""

from __future__ import annotations

import threading

from repro import Cluster
from repro.engine.resultcache import QueryResultCache
from repro.engine.transactions import TransactionManager
from repro.exec.segmentcache import SegmentCache
from repro.storage import epoch
from repro.systables.store import SystemEventStore

THREADS = 16


def run_all(workers: list[threading.Thread]) -> None:
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30)
    assert all(not worker.is_alive() for worker in workers)


class TestResultCacheSingleFlight:
    def test_one_leader_many_waiters(self):
        """Misses behind an in-flight execution wait and then hit."""
        import time

        cache = QueryResultCache()
        entry, leads = cache.lead_or_wait("k")
        assert entry is None and leads  # this thread is the leader
        served: list[tuple] = []
        lock = threading.Lock()

        def waiter() -> None:
            got, leads_too = cache.lead_or_wait("k")
            assert not leads_too
            with lock:
                served.append(got.rows)

        threads = [threading.Thread(target=waiter) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the waiters block on the flight
        cache.store(
            "k", "SELECT 1", "compiled", ["c"], [(1,)],
            ("t",), (epoch.table_epoch("t"),),
        )
        cache.finish_flight("k")
        for thread in threads:
            thread.join(timeout=30)
        assert all(not thread.is_alive() for thread in threads)
        assert served == [((1,),)] * THREADS
        assert cache.stores == 1
        assert cache.flight_waits >= 1  # at least the blocked waiters

    def test_failed_leader_wakes_waiters_to_reelect(self):
        """A leader that stores nothing hands the flight to a waiter."""
        cache = QueryResultCache()
        leaders: list[int] = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def query() -> None:
            barrier.wait()
            entry, leads = cache.lead_or_wait("k")
            if entry is not None:
                return
            try:
                if leads:
                    with lock:
                        leaders.append(1)
                    # First leader fails (stores nothing); a re-elected
                    # waiter stores on its turn.
                    if len(leaders) > 1:
                        cache.store(
                            "k", "SELECT 1", "compiled", ["c"], [(1,)],
                            ("t",), (epoch.table_epoch("t"),),
                        )
            finally:
                if leads:
                    cache.finish_flight("k")

        run_all([threading.Thread(target=query) for _ in range(4)])
        assert len(leaders) >= 2  # the flight was re-led after the failure
        assert cache.lookup("k") is not None

    def test_sessions_coalesce_on_shared_cluster(self):
        """End to end: concurrent identical SELECTs execute once."""
        cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
        setup = cluster.connect()
        setup.execute("CREATE TABLE t (k int, v int)")
        setup.execute(
            "INSERT INTO t VALUES "
            + ",".join(f"({i % 10}, {i})" for i in range(100))
        )
        cache = cluster.result_cache
        base_stores = cache.stores
        barrier = threading.Barrier(8)
        answers: list[int] = []
        lock = threading.Lock()

        def client() -> None:
            session = cluster.connect()
            barrier.wait()
            value = session.execute("SELECT sum(v) FROM t").scalar()
            with lock:
                answers.append(value)

        run_all([threading.Thread(target=client) for _ in range(8)])
        assert answers == [4950] * 8
        # One execution stored; everyone else hit or waited on its flight.
        assert cache.stores == base_stores + 1


class TestSegmentCacheKeepFirst:
    def test_concurrent_stores_keep_incumbent(self):
        """Racing stores of one signature keep the first entry (and its
        hit counter) instead of silently resetting it."""
        cache = SegmentCache()
        cache.store("sig", "rows", lambda: 1, {})
        incumbent = cache.lookup("sig")
        assert incumbent is not None and incumbent.hits == 1
        barrier = threading.Barrier(THREADS)

        def racer() -> None:
            barrier.wait()
            cache.store("sig", "rows", lambda: 2, {})

        run_all([threading.Thread(target=racer) for _ in range(THREADS)])
        assert cache.stores == 1
        assert cache.duplicate_stores == THREADS
        entry = cache.lookup("sig")
        assert entry.fn() == 1  # the incumbent's function survived
        assert entry.hits == 2  # counter accumulated across the races


class TestSystemEventStoreUnderConcurrency:
    def test_readers_never_see_mutated_deque(self):
        """rows() snapshots under the lock, so concurrent appends can't
        raise "deque mutated during iteration"."""
        store = SystemEventStore(max_rows_per_table=500)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer() -> None:
            i = 0
            while not stop.is_set():
                store.append("stl_query", (i, "SELECT 1"))
                i += 1

        def reader() -> None:
            try:
                for _ in range(2000):
                    for row in store.rows("stl_query"):
                        assert len(row) == 2
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)
            finally:
                stop.set()

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(4)]
        run_all(writers + readers)
        assert errors == []

    def test_concurrent_appends_all_land(self):
        store = SystemEventStore(max_rows_per_table=100_000)
        barrier = threading.Barrier(THREADS)

        def writer(tag: int) -> None:
            barrier.wait()
            for i in range(200):
                store.append("stl_scan", (tag, i))

        run_all(
            [
                threading.Thread(target=writer, args=(t,))
                for t in range(THREADS)
            ]
        )
        assert store.row_count("stl_scan") == THREADS * 200


class TestStatementSnapshot:
    def test_sees_commits_after_transaction_start(self):
        """statement_snapshot refreshes the committed set, closing the
        begin-to-epoch-capture gap that let the result cache store
        stale-but-valid entries (a commit invisible to the frozen
        transaction-start snapshot but already counted in the captured
        table epochs)."""
        manager = TransactionManager()
        reader = manager.begin()
        writer = manager.begin()
        manager.commit(writer)
        frozen = manager.snapshot(reader)
        assert not frozen.can_see(writer, None)  # repeatable read
        fresh = manager.statement_snapshot(reader)
        assert fresh.can_see(writer, None)
        assert fresh.xid == reader


class TestTransactionManagerUnderConcurrency:
    def test_concurrent_begin_commit_is_consistent(self):
        """Interleaved begins/commits while other threads snapshot the
        committed set: no "set changed size during iteration", every
        commit lands exactly once."""
        manager = TransactionManager()
        barrier = threading.Barrier(THREADS + 2)
        committed: list[int] = []
        lock = threading.Lock()
        errors: list[Exception] = []
        done = threading.Event()

        def worker() -> None:
            barrier.wait()
            for _ in range(50):
                xid = manager.begin()
                manager.snapshot(xid)
                manager.commit(xid)
                with lock:
                    committed.append(xid)

        def snapshotter() -> None:
            barrier.wait()
            try:
                while not done.is_set():
                    frozen = manager.committed_xids
                    manager.snapshot_latest()
                    assert len(frozen) >= 1
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        workers = [threading.Thread(target=worker) for _ in range(THREADS)]
        snapshotters = [
            threading.Thread(target=snapshotter) for _ in range(2)
        ]
        for thread in workers + snapshotters:
            thread.start()
        for thread in workers:
            thread.join(timeout=30)
        done.set()
        for thread in snapshotters:
            thread.join(timeout=30)
        assert errors == []
        assert len(committed) == len(set(committed)) == THREADS * 50
        assert all(manager.is_committed(xid) for xid in committed)
        assert manager.active_count == 0
