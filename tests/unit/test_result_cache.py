"""The leader-side query result cache: hits, invalidation, bypass rules.

Covers the QueryResultCache structure itself (LRU, row-count limit,
counters), the session integration (warm hits are bit-identical, every
DML/VACUUM path invalidates, explicit transactions and system tables
bypass), the per-table precision of invalidation, the WLM admission
bypass, and the new system-table surface (stv_result_cache,
svl_query_summary.result_cache_hit, EXPLAIN ANALYZE annotations).
"""

import pytest

from repro import Cluster
from repro.engine.resultcache import QueryResultCache, result_cache_key
from repro.engine.wlm import AdmissionGate
from repro.errors import AnalysisError
from repro.storage import epoch


@pytest.fixture
def cluster():
    c = Cluster(node_count=1, slices_per_node=2, block_capacity=16)
    s = c.connect()
    s.execute("CREATE TABLE a (k int, v int)")
    s.execute("CREATE TABLE b (k int, v int)")
    s.execute(
        "INSERT INTO a VALUES " + ",".join(f"({i}, {i * 2})" for i in range(40))
    )
    s.execute(
        "INSERT INTO b VALUES " + ",".join(f"({i}, {i * 3})" for i in range(40))
    )
    return c


class TestQueryResultCacheStructure:
    def _store(self, cache, key, rows=((1,),), tables=("t",)):
        epochs = tuple(epoch.table_epoch(t) for t in tables)
        cache.store(key, "SELECT 1", "compiled", ["c"], list(rows), tables, epochs)

    def test_store_then_lookup_hits(self):
        cache = QueryResultCache()
        self._store(cache, "k1")
        entry = cache.lookup("k1")
        assert entry is not None
        assert entry.rows == ((1,),)
        assert cache.hits == 1 and cache.misses == 0
        assert entry.hits == 1

    def test_lookup_absent_is_miss(self):
        cache = QueryResultCache()
        assert cache.lookup("nope") is None
        assert cache.misses == 1

    def test_epoch_move_invalidates_lazily(self):
        cache = QueryResultCache()
        self._store(cache, "k1", tables=("t",))
        epoch.bump("t")
        assert cache.lookup("k1") is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_unrelated_table_epoch_keeps_entry(self):
        cache = QueryResultCache()
        self._store(cache, "k1", tables=("t",))
        epoch.bump("other_table")
        assert cache.lookup("k1") is not None

    def test_wildcard_bump_invalidates_everything(self):
        cache = QueryResultCache()
        self._store(cache, "k1", tables=("t",))
        epoch.bump()  # unattributed: counts against every table
        assert cache.lookup("k1") is None

    def test_lru_eviction_at_capacity(self):
        cache = QueryResultCache(capacity=2)
        self._store(cache, "k1")
        self._store(cache, "k2")
        cache.lookup("k1")  # k1 becomes most-recent
        self._store(cache, "k3")
        assert cache.evictions == 1
        assert cache.lookup("k2") is None  # the LRU victim
        assert cache.lookup("k1") is not None

    def test_oversized_results_not_cached(self):
        cache = QueryResultCache(max_rows=2)
        self._store(cache, "k1", rows=((1,), (2,), (3,)))
        assert len(cache) == 0

    def test_key_separates_sql_plan_and_executor(self):
        base = result_cache_key("SELECT 1", "plan", "compiled")
        assert result_cache_key("SELECT 2", "plan", "compiled") != base
        assert result_cache_key("SELECT 1", "plan2", "compiled") != base
        assert result_cache_key("SELECT 1", "plan", "volcano") != base
        assert result_cache_key("SELECT 1", "plan", "compiled") == base


class TestSessionIntegration:
    def test_warm_hit_is_bit_identical(self, cluster):
        s = cluster.connect()
        sql = "SELECT k, sum(v) FROM a GROUP BY k ORDER BY k"
        cold = s.execute(sql)
        warm = s.execute(sql)
        assert warm.rows == cold.rows
        assert warm.columns == cold.columns
        assert not cold.stats.result_cache_hit
        assert warm.stats.result_cache_hit
        assert warm.stats.result_cache_status == "hit"
        assert cold.stats.result_cache_status == "miss"

    def test_hit_skips_execution(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a"
        s.execute(sql)
        warm = s.execute(sql)
        assert warm.stats.scan.blocks_read == 0
        assert warm.stats.operators[0].operator == "Result Cache"

    def test_hits_shared_across_sessions(self, cluster):
        s1 = cluster.connect()
        s2 = cluster.connect()
        sql = "SELECT sum(v) FROM a"
        s1.execute(sql)
        assert s2.execute(sql).stats.result_cache_hit

    def test_insert_invalidates(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a"
        assert s.execute(sql).rows == [(40,)]
        s.execute("INSERT INTO a VALUES (99, 99)")
        fresh = s.execute(sql)
        assert not fresh.stats.result_cache_hit
        assert fresh.rows == [(41,)]

    def test_delete_invalidates(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a"
        s.execute(sql)
        s.execute("DELETE FROM a WHERE k < 10")
        fresh = s.execute(sql)
        assert not fresh.stats.result_cache_hit
        assert fresh.rows == [(30,)]

    def test_update_invalidates(self, cluster):
        s = cluster.connect()
        sql = "SELECT sum(v) FROM a WHERE k = 0"
        before = s.execute(sql).rows
        s.execute("UPDATE a SET v = 1000 WHERE k = 0")
        fresh = s.execute(sql)
        assert not fresh.stats.result_cache_hit
        assert fresh.rows != before

    def test_vacuum_invalidates(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a"
        s.execute(sql)
        s.execute("VACUUM a")
        assert not s.execute(sql).stats.result_cache_hit

    def test_mutating_one_table_keeps_the_other_cached(self, cluster):
        s = cluster.connect()
        sql_a = "SELECT sum(v) FROM a"
        sql_b = "SELECT sum(v) FROM b"
        s.execute(sql_a)
        s.execute(sql_b)
        s.execute("INSERT INTO b VALUES (99, 99)")
        assert s.execute(sql_a).stats.result_cache_hit
        assert not s.execute(sql_b).stats.result_cache_hit

    def test_join_entry_depends_on_both_tables(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a JOIN b ON a.k = b.k"
        s.execute(sql)
        assert s.execute(sql).stats.result_cache_hit
        s.execute("INSERT INTO b VALUES (1, 1)")
        assert not s.execute(sql).stats.result_cache_hit

    def test_executors_do_not_share_entries(self, cluster):
        sql = "SELECT sum(v) FROM a"
        compiled = cluster.connect(executor="compiled")
        volcano = cluster.connect(executor="volcano")
        compiled.execute(sql)
        cold = volcano.execute(sql)
        assert not cold.stats.result_cache_hit
        assert volcano.execute(sql).stats.result_cache_hit

    def test_set_enable_result_cache_off_and_on(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a"
        s.execute("SET enable_result_cache = off")
        s.execute(sql)
        repeat = s.execute(sql)
        assert not repeat.stats.result_cache_hit
        assert repeat.stats.result_cache_status == ""
        s.execute("SET enable_result_cache = on")
        s.execute(sql)
        assert s.execute(sql).stats.result_cache_hit

    def test_set_enable_result_cache_rejects_garbage(self, cluster):
        s = cluster.connect()
        with pytest.raises(AnalysisError):
            s.execute("SET enable_result_cache = maybe")

    def test_explicit_transaction_bypasses(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM a"
        s.execute(sql)  # cached in autocommit
        s.execute("BEGIN")
        s.execute("INSERT INTO a VALUES (1, 1)")
        # Inside the txn the session must see its own uncommitted row,
        # not the cached pre-txn result.
        assert s.execute(sql).rows == [(41,)]
        assert not s.execute(sql).stats.result_cache_hit
        s.execute("ROLLBACK")

    def test_commit_of_concurrent_writer_invalidates(self, cluster):
        """The MVCC staleness window: a SELECT that runs while another
        session's transaction holds uncommitted writes must not pin its
        (correct-at-the-time) result past that transaction's commit."""
        writer = cluster.connect()
        reader = cluster.connect()
        sql = "SELECT count(*) FROM a"
        writer.execute("BEGIN")
        writer.execute("INSERT INTO a VALUES (500, 500)")
        assert reader.execute(sql).rows == [(40,)]  # can't see the insert
        writer.execute("COMMIT")
        fresh = reader.execute(sql)
        assert fresh.rows == [(41,)]
        assert not fresh.stats.result_cache_hit

    def test_system_table_queries_bypass(self, cluster):
        s = cluster.connect()
        sql = "SELECT count(*) FROM stl_query"
        first = s.execute(sql)
        second = s.execute(sql)
        assert not second.stats.result_cache_hit
        assert second.stats.result_cache_status == ""
        # stl_query grows with every statement; a cached answer would
        # have frozen it.
        assert second.rows[0][0] > first.rows[0][0]

    def test_wlm_gate_bypassed_on_hits(self, cluster):
        gate = AdmissionGate()
        cluster.wlm_gate = gate
        s = cluster.connect()
        sql = "SELECT sum(v) FROM a"
        s.execute(sql)
        s.execute(sql)
        s.execute(sql)
        assert gate.admissions == 1
        assert gate.bypasses == 2


class TestSystemTableSurface:
    def test_stv_result_cache_rows(self, cluster):
        s = cluster.connect()
        s.execute("SELECT sum(v) FROM a")
        s.execute("SELECT sum(v) FROM a")
        rows = s.execute(
            "SELECT querytxt, executor, rows, tables, hits, valid "
            "FROM stv_result_cache"
        ).rows
        entry = next(r for r in rows if r[3] == "a")
        querytxt, executor, nrows, tables, hits, valid = entry
        assert "sum" in querytxt.lower()
        assert executor == "compiled"
        assert nrows == 1
        assert hits == 1
        assert valid == 1

    def test_stv_result_cache_shows_stale_entries_invalid(self, cluster):
        s = cluster.connect()
        s.execute("SELECT sum(v) FROM a")
        s.execute("INSERT INTO a VALUES (1, 1)")
        rows = s.execute(
            "SELECT valid FROM stv_result_cache WHERE tables = 'a'"
        ).rows
        assert rows and all(v == (0,) for v in rows)

    def test_svl_query_summary_result_cache_hit_column(self, cluster):
        s = cluster.connect()
        s.execute("SELECT sum(v) FROM a")
        s.execute("SELECT sum(v) FROM a")
        hit_rows = s.execute(
            "SELECT operator, rows FROM svl_query_summary "
            "WHERE result_cache_hit = 1"
        ).rows
        assert ("Result Cache", 1) in hit_rows

    def test_explain_analyze_annotates_miss_then_hit(self, cluster):
        s = cluster.connect(executor="vectorized")
        sql = "EXPLAIN ANALYZE SELECT sum(v) FROM a"
        cold = "\n".join(row[0] for row in s.execute(sql).rows)
        assert "Result cache: miss" in cold
        warm = "\n".join(row[0] for row in s.execute(sql).rows)
        assert "Result cache: hit" in warm
        assert "(never executed)" in warm
