"""CloudTrail, DynamoDB, cloud COPY sources, and WLM."""

import gzip
import json

import pytest

from repro import Cluster
from repro.cloud import (
    CloudEnvironment,
    SimDynamoDB,
    SshCommandRegistry,
    attach_cloud_sources,
)
from repro.engine.wlm import (
    AdmissionStatus,
    QueryArrival,
    QueueConfig,
    WorkloadManager,
)
from repro.errors import CloudError, CopyError


class TestCloudTrail:
    def test_records_and_lookup(self, env):
        env.cloudtrail.record("alice", "redshift:deploy", "c1", {"nodes": 2})
        env.clock.advance(100)
        env.cloudtrail.record("bob", "redshift:resize", "c1")
        env.cloudtrail.record("alice", "redshift:deploy", "c2")
        assert len(env.cloudtrail.lookup(action="redshift:deploy")) == 2
        assert len(env.cloudtrail.lookup(resource="c1")) == 2
        assert len(env.cloudtrail.lookup(since=50)) == 2

    def test_control_plane_actions_are_audited(self, env):
        from repro.controlplane import RedshiftService

        service = RedshiftService(env)
        managed, _ = service.create_cluster(node_count=2, block_capacity=64)
        service.snapshot_cluster(managed.cluster_id, label="s")
        service.delete_cluster(managed.cluster_id)
        actions = {e.action for e in env.cloudtrail.events}
        assert "redshift:deploy" in actions
        assert "redshift:backup" in actions
        assert "redshift:delete" in actions

    def test_archive_to_s3(self, env):
        env.cloudtrail.record("a", "x:y", "r")
        key = env.cloudtrail.archive_to_s3(env.s3, "audit")
        body = env.s3.get_object("audit", key).data.decode()
        assert json.loads(body)["action"] == "x:y"


class TestDynamoDB:
    def test_crud(self):
        ddb = SimDynamoDB()
        table = ddb.create_table("users", hash_key="id")
        table.put_item({"id": 1, "name": "alice"})
        table.put_item({"id": 1, "name": "alice2"})  # overwrite
        assert table.item_count == 1
        assert table.get_item(1)["name"] == "alice2"
        assert table.get_item(99) is None

    def test_missing_hash_key_rejected(self):
        table = SimDynamoDB().create_table("t", hash_key="id")
        with pytest.raises(CloudError):
            table.put_item({"name": "no id"})

    def test_duplicate_table_rejected(self):
        ddb = SimDynamoDB()
        ddb.create_table("t", hash_key="id")
        with pytest.raises(CloudError):
            ddb.create_table("t", hash_key="id")

    def test_scan_time_tracks_capacity(self):
        ddb = SimDynamoDB()
        slow = ddb.create_table("slow", "id", read_capacity_units=10)
        fast = ddb.create_table("fast", "id", read_capacity_units=1000)
        for i in range(200):
            slow.put_item({"id": i})
            fast.put_item({"id": i})
        assert slow.scan_seconds() > fast.scan_seconds()


class TestCloudCopySources:
    @pytest.fixture
    def wired(self, env):
        cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
        ssh = SshCommandRegistry()
        attach_cloud_sources(cluster, env, env.dynamodb, ssh)
        session = cluster.connect()
        session.execute("CREATE TABLE t (id int, v varchar(16))")
        return env, cluster, session, ssh

    def test_copy_from_s3_prefix_multiple_objects(self, wired):
        env, _, session, _ = wired
        env.s3.create_bucket("data")
        env.s3.put_object("data", "in/part-0", b"1|a\n2|b\n")
        env.s3.put_object("data", "in/part-1", b"3|c\n")
        env.s3.put_object("data", "other/x", b"9|z\n")
        r = session.execute("COPY t FROM 's3://data/in/'")
        assert r.rowcount == 3

    def test_copy_from_s3_gzip(self, wired):
        env, _, session, _ = wired
        env.s3.create_bucket("data")
        env.s3.put_object("data", "in/part-0.gz", gzip.compress(b"7|g\n8|h\n"))
        r = session.execute("COPY t FROM 's3://data/in/' GZIP")
        assert r.rowcount == 2
        assert session.execute("SELECT v FROM t WHERE id = 7").scalar() == "g"

    def test_copy_from_empty_prefix_fails(self, wired):
        env, _, session, _ = wired
        env.s3.create_bucket("data")
        with pytest.raises(CopyError):
            session.execute("COPY t FROM 's3://data/nothing/'")

    def test_copy_from_dynamodb(self, wired):
        env, _, session, _ = wired
        table = env.dynamodb.create_table("kv", hash_key="id")
        for i in range(20):
            table.put_item({"id": i, "v": f"item-{i}"})
        r = session.execute("COPY t FROM 'dynamodb://kv' JSON")
        assert r.rowcount == 20
        assert session.execute("SELECT count(*) FROM t").scalar() == 20

    def test_copy_over_ssh(self, wired):
        _, _, session, ssh = wired
        ssh.register(
            "etl-host/dump", lambda: (f"{i}|row{i}" for i in range(5))
        )
        r = session.execute("COPY t FROM 'ssh://etl-host/dump'")
        assert r.rowcount == 5

    def test_unregistered_ssh_endpoint(self, wired):
        _, _, session, _ = wired
        with pytest.raises(CopyError):
            session.execute("COPY t FROM 'ssh://unknown/cmd'")


class TestWlm:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueueConfig("q", slots=0, memory_fraction=0.5)
        with pytest.raises(ValueError):
            QueueConfig("q", slots=1, memory_fraction=0.0)
        with pytest.raises(ValueError):
            WorkloadManager(
                [
                    QueueConfig("a", 2, 0.7),
                    QueueConfig("b", 2, 0.7),
                ]
            )
        with pytest.raises(ValueError):
            WorkloadManager([QueueConfig("a", 2, 0.5), QueueConfig("a", 2, 0.5)])

    def test_no_contention_no_wait(self):
        wlm = WorkloadManager([QueueConfig("q", slots=2, memory_fraction=1.0)])
        trace = [QueryArrival("q", i * 100.0, 10.0) for i in range(5)]
        report = wlm.simulate(trace)["q"]
        assert report.mean_wait_s == 0.0

    def test_slot_contention_queues(self):
        wlm = WorkloadManager([QueueConfig("q", slots=1, memory_fraction=1.0)])
        trace = [QueryArrival("q", 0.0, 10.0), QueryArrival("q", 1.0, 10.0)]
        report = wlm.simulate(trace)["q"]
        waits = sorted(o.wait_s for o in report.outcomes)
        assert waits == [0.0, 9.0]

    def test_more_slots_less_wait(self):
        trace = [QueryArrival("q", float(i), 30.0) for i in range(20)]
        narrow = WorkloadManager(
            [QueueConfig("q", slots=2, memory_fraction=1.0)]
        ).simulate(trace)["q"]
        wide = WorkloadManager(
            [QueueConfig("q", slots=10, memory_fraction=1.0)]
        ).simulate(trace)["q"]
        assert wide.mean_wait_s < narrow.mean_wait_s

    def test_short_query_queue_isolation(self):
        """The canonical WLM win: a dedicated queue shields dashboards
        from long-running ETL."""
        etl = [QueryArrival("all", float(i * 2), 300.0, "etl") for i in range(5)]
        dash = [
            QueryArrival("all", 10.0 + i, 1.0, "dash") for i in range(20)
        ]
        single = WorkloadManager(
            [QueueConfig("all", slots=5, memory_fraction=1.0)]
        ).simulate(etl + dash)["all"]
        dash_wait_mixed = mean_wait(
            o for o in single.outcomes if o.arrival.label == "dash"
        )

        split = WorkloadManager(
            [
                QueueConfig("etl", slots=3, memory_fraction=0.7),
                QueueConfig("short", slots=2, memory_fraction=0.3),
            ]
        )
        retagged = [
            QueryArrival("etl", a.arrival_s, a.duration_s, a.label)
            for a in etl
        ] + [
            QueryArrival("short", a.arrival_s, a.duration_s, a.label)
            for a in dash
        ]
        reports = split.simulate(retagged)
        dash_wait_isolated = reports["short"].mean_wait_s
        assert dash_wait_isolated < dash_wait_mixed / 5

    def test_memory_per_slot(self):
        wlm = WorkloadManager([QueueConfig("q", slots=4, memory_fraction=0.8)])
        assert wlm.memory_per_slot_fraction("q") == pytest.approx(0.2)

    def test_unknown_queue(self):
        wlm = WorkloadManager()
        with pytest.raises(KeyError):
            wlm.simulate([QueryArrival("nope", 0.0, 1.0)])

    def test_queue_depth_metric(self):
        wlm = WorkloadManager([QueueConfig("q", slots=1, memory_fraction=1.0)])
        trace = [QueryArrival("q", 0.0, 100.0)] + [
            QueryArrival("q", 1.0 + i, 1.0) for i in range(5)
        ]
        report = wlm.simulate(trace)["q"]
        assert report.max_queue_depth == 5


class TestWlmAdmissionControl:
    """Overload protection: timeouts and shedding keep a swamped queue from
    taking the whole warehouse down with it (escalators, not elevators)."""

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueConfig("q", slots=1, memory_fraction=1.0, max_queue_depth=-1)
        with pytest.raises(ValueError):
            QueueConfig(
                "q", slots=1, memory_fraction=1.0, admission_timeout_s=-5.0
            )

    def test_defaults_never_shed_or_time_out(self):
        wlm = WorkloadManager([QueueConfig("q", slots=1, memory_fraction=1.0)])
        trace = [QueryArrival("q", 0.0, 100.0) for _ in range(50)]
        report = wlm.simulate(trace)["q"]
        assert report.shed_count == 0
        assert report.timed_out_count == 0
        assert len(report.completed) == 50

    def test_admission_timeout_abandons_without_taking_a_slot(self):
        wlm = WorkloadManager(
            [
                QueueConfig(
                    "q", slots=1, memory_fraction=1.0, admission_timeout_s=30.0
                )
            ]
        )
        trace = [
            QueryArrival("q", 0.0, 100.0, "long"),
            QueryArrival("q", 1.0, 10.0, "victim"),  # would wait 99s
            QueryArrival("q", 150.0, 10.0, "late"),  # slot free by then
        ]
        report = wlm.simulate(trace)["q"]
        assert report.timed_out_count == 1
        victim = next(
            o for o in report.outcomes if o.arrival.label == "victim"
        )
        assert victim.status is AdmissionStatus.TIMED_OUT
        # It gave up exactly at the timeout and consumed no slot time.
        assert victim.finished_s == pytest.approx(31.0)
        late = next(o for o in report.outcomes if o.arrival.label == "late")
        assert late.status is AdmissionStatus.COMPLETED
        assert late.wait_s == 0.0

    def test_queue_shedding_at_max_depth(self):
        wlm = WorkloadManager(
            [
                QueueConfig(
                    "q", slots=1, memory_fraction=1.0, max_queue_depth=2
                )
            ]
        )
        # One running + two waiting; the fourth arrival is shed at the door.
        trace = [QueryArrival("q", float(i), 100.0, f"q{i}") for i in range(4)]
        report = wlm.simulate(trace)["q"]
        assert report.shed_count == 1
        shed = next(
            o for o in report.outcomes if o.status is AdmissionStatus.SHED
        )
        assert shed.arrival.label == "q3"
        assert shed.wait_s == 0.0  # rejected instantly, not queued

    def test_shed_queries_free_no_capacity(self):
        """Shedding keeps the survivors' waits bounded by the depth cap."""
        capped = WorkloadManager(
            [
                QueueConfig(
                    "q", slots=1, memory_fraction=1.0, max_queue_depth=1
                )
            ]
        )
        trace = [QueryArrival("q", float(i), 50.0) for i in range(10)]
        report = capped.simulate(trace)["q"]
        # With at most one query waiting, no admitted query waits > 50s.
        assert all(o.wait_s <= 50.0 for o in report.completed)
        assert report.shed_count > 0

    def test_wait_statistics_exclude_non_completed(self):
        wlm = WorkloadManager(
            [
                QueueConfig(
                    "q", slots=1, memory_fraction=1.0, admission_timeout_s=5.0
                )
            ]
        )
        trace = [
            QueryArrival("q", 0.0, 100.0),
            QueryArrival("q", 1.0, 10.0),  # times out after 5s
        ]
        report = wlm.simulate(trace)["q"]
        assert report.timed_out_count == 1
        # The timed-out query's wait does not pollute the latency stats.
        assert report.mean_wait_s == 0.0


def mean_wait(outcomes) -> float:
    outcomes = list(outcomes)
    return sum(o.wait_s for o in outcomes) / len(outcomes)
