"""System-table event store: bounded retention, snapshots, clock binding."""

import pytest

from repro import Cluster
from repro.cloud.simclock import SimClock
from repro.errors import AnalysisError, TableAlreadyExistsError
from repro.systables import SYSTEM_TABLE_COLUMNS, SystemEventStore


class TestSystemEventStore:
    def test_append_and_read_back(self):
        store = SystemEventStore(max_rows_per_table=10)
        store.append("stl_query", (1, "a"))
        store.append("stl_query", (2, "b"))
        assert store.rows("stl_query") == [(1, "a"), (2, "b")]
        assert store.row_count("stl_query") == 2
        assert store.rows("svl_query_summary") == []

    def test_retention_is_bounded_fifo(self):
        store = SystemEventStore(max_rows_per_table=3)
        for i in range(10):
            store.append("stl_query", (i,))
        # Deterministic count-based eviction: exactly the last 3 survive.
        assert store.rows("stl_query") == [(7,), (8,), (9,)]
        assert store.row_count("stl_query") == 3

    def test_retention_is_per_table(self):
        store = SystemEventStore(max_rows_per_table=2)
        for i in range(5):
            store.append("stl_query", (i,))
            store.append("stl_wlm_rule_action", (i * 10,))
        assert store.rows("stl_query") == [(3,), (4,)]
        assert store.rows("stl_wlm_rule_action") == [(30,), (40,)]

    def test_replace_swaps_snapshot(self):
        store = SystemEventStore(max_rows_per_table=10)
        store.replace("stv_wlm_query_state", [(1,), (2,)])
        store.replace("stv_wlm_query_state", [(3,)])
        assert store.rows("stv_wlm_query_state") == [(3,)]

    def test_replace_respects_bound(self):
        store = SystemEventStore(max_rows_per_table=2)
        store.replace("stv_wlm_query_state", [(i,) for i in range(5)])
        assert store.rows("stv_wlm_query_state") == [(3,), (4,)]

    def test_clear(self):
        store = SystemEventStore(max_rows_per_table=10)
        store.append("stl_query", (1,))
        store.clear()
        assert store.rows("stl_query") == []


class TestSystemTablesOnCluster:
    def test_schemas_registered_in_catalog(self):
        cluster = Cluster(node_count=1)
        for name in SYSTEM_TABLE_COLUMNS:
            assert cluster.catalog.has_table(name)
            assert cluster.catalog.is_system_table(name)
            # System tables stay out of the user-table listing that drives
            # ANALYZE-all / VACUUM-all / resize.
            assert name not in cluster.catalog.table_names()

    def test_user_table_cannot_shadow_system_name(self):
        cluster = Cluster(node_count=1)
        s = cluster.connect()
        with pytest.raises(TableAlreadyExistsError):
            s.execute("CREATE TABLE stl_query (a INT)")

    def test_system_tables_cannot_be_dropped_or_written(self):
        cluster = Cluster(node_count=1)
        s = cluster.connect()
        with pytest.raises(AnalysisError):
            s.execute("DROP TABLE stl_query")
        with pytest.raises(AnalysisError):
            s.execute("INSERT INTO stl_query VALUES (1)")

    def test_bound_clock_stamps_rows_deterministically(self):
        clock = SimClock()
        cluster = Cluster(node_count=1)
        cluster.systables.bind_clock(clock)
        s = cluster.connect()
        clock.advance(100.0)
        s.execute("SELECT 1 x")
        clock.advance(50.0)
        s.execute("SELECT 2 y")
        rows = s.execute(
            "SELECT query, starttime, endtime FROM stl_query ORDER BY query"
        ).rows
        # SimClock does not move during execution, so start == end and
        # both stamps are exact simulation times.
        assert [(r[1], r[2]) for r in rows] == [(100.0, 100.0), (150.0, 150.0)]

    def test_stl_query_retention_bounded_on_cluster(self):
        cluster = Cluster(node_count=1, systable_max_rows=4)
        s = cluster.connect()
        for i in range(10):
            s.execute(f"SELECT {i} x")
        rows = s.execute("SELECT query FROM stl_query ORDER BY query").rows
        assert [r[0] for r in rows] == [7, 8, 9, 10]
