"""Key hierarchy, cohorting, and durability models."""

import pytest

from repro.cloud import SimKMS
from repro.errors import KmsError
from repro.replication import CohortPlan, DurabilityModel, annual_durability
from repro.security import ClusterKeyHierarchy
from repro.util.units import HOUR


class TestKeyHierarchy:
    def _hierarchy(self):
        kms = SimKMS()
        master = kms.create_master_key("customer-master")
        return kms, ClusterKeyHierarchy(kms, master, "cluster-1")

    def test_block_encryption_roundtrip(self):
        _, h = self._hierarchy()
        blob = h.encrypt_block("blk-1", b"secret data")
        assert blob.ciphertext != b"secret data"
        assert h.decrypt_block(blob) == b"secret data"

    def test_blocks_have_distinct_keys(self):
        # "block-specific encryption keys (to avoid injection attacks from
        # one block to another)": equal plaintexts encrypt differently.
        _, h = self._hierarchy()
        a = h.encrypt_block("blk-1", b"same")
        b = h.encrypt_block("blk-2", b"same")
        assert a.ciphertext != b.ciphertext

    def test_cluster_key_rotation_rewraps_block_keys_only(self):
        _, h = self._hierarchy()
        blob = h.encrypt_block("blk-1", b"data")
        h.encrypt_block("blk-2", b"more")
        h.rotate_cluster_key()
        assert h.block_key_rotations == 2  # block *keys*, not block data
        assert h.decrypt_block(blob) == b"data"  # old data still readable

    def test_master_rotation_is_constant_work(self):
        _, h = self._hierarchy()
        for i in range(10):
            h.encrypt_block(f"blk-{i}", b"x")
        before = h.block_key_rotations
        h.rotate_master_key()
        assert h.block_key_rotations == before  # O(1), no block keys touched

    def test_repudiation(self):
        kms, h = self._hierarchy()
        blob = h.encrypt_block("blk-1", b"data")
        kms.revoke_master_key("customer-master")
        with pytest.raises(KmsError):
            h.decrypt_block(blob)

    def test_unknown_block_rejected(self):
        _, h = self._hierarchy()
        from repro.security.keyhierarchy import EncryptedBlob

        with pytest.raises(KmsError):
            h.decrypt_block(EncryptedBlob("never-seen", b"x"))


class TestCohorts:
    def test_partitioning(self):
        plan = CohortPlan([f"n{i}" for i in range(8)], cohort_size=4)
        assert plan.cohort_of("n0") == ["n0", "n1", "n2", "n3"]
        assert plan.cohort_of("n5") == ["n4", "n5", "n6", "n7"]
        assert plan.cohort_count == 2

    def test_peers_exclude_self(self):
        plan = CohortPlan(["a", "b", "c", "d"], cohort_size=2)
        assert plan.peers_of("a") == ["b"]
        assert plan.peers_of("d") == ["c"]

    def test_blast_radius_bounded_by_cohort(self):
        plan = CohortPlan([f"n{i}" for i in range(100)], cohort_size=4)
        assert plan.blast_radius("n50") == 4

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            CohortPlan(["a", "b"], cohort_size=1)


class TestDurability:
    def test_analytic_model_orderings(self):
        base = annual_durability(
            disk_afr=0.04, rereplication_window_s=2 * HOUR,
            disks_per_cohort=8, s3_backed=False,
        )
        faster_repair = annual_durability(
            disk_afr=0.04, rereplication_window_s=HOUR / 2,
            disks_per_cohort=8, s3_backed=False,
        )
        with_s3 = annual_durability(
            disk_afr=0.04, rereplication_window_s=2 * HOUR,
            disks_per_cohort=8, s3_backed=True,
        )
        assert faster_repair > base          # shorter window helps
        assert with_s3 > base                # the S3 copy dominates
        assert with_s3 > 1 - 1e-9            # paper's nine nines regime

    def test_afr_validated(self):
        with pytest.raises(ValueError):
            annual_durability(0.0, 1.0, 4, False)

    def test_monte_carlo_s3_prevents_loss(self):
        base = DurabilityModel(disk_count=2000, s3_backed=False, seed=3)
        backed = DurabilityModel(disk_count=2000, s3_backed=True, seed=3)
        lossy = base.simulate_years(10)
        safe = backed.simulate_years(10)
        assert safe["loss_events"] == 0
        assert safe["near_misses"] == lossy["loss_events"]

    def test_monte_carlo_window_matters(self):
        slow = DurabilityModel(
            disk_count=5000, rereplication_window_s=24 * HOUR, seed=5
        ).simulate_years(10)
        fast = DurabilityModel(
            disk_count=5000, rereplication_window_s=HOUR, seed=5
        ).simulate_years(10)
        assert fast["loss_events"] <= slow["loss_events"]

    def test_failures_scale_with_fleet(self):
        small = DurabilityModel(disk_count=100, seed=1).simulate_years(5)
        large = DurabilityModel(disk_count=10_000, seed=1).simulate_years(5)
        assert large["disk_failures"] > small["disk_failures"] * 50
