"""Units, RNG and statistics helpers."""

import pytest

from repro.util import (
    DeterministicRng,
    format_bytes,
    format_duration,
    mean,
    median,
    percentile,
    stdev,
)
from repro.util.units import GB, HOUR, KB, MB, MINUTE


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(10) == "10 B"

    def test_kilobytes(self):
        assert format_bytes(1536) == "1.50 KB"

    def test_gigabytes(self):
        assert format_bytes(3 * GB) == "3.00 GB"

    def test_boundary_is_inclusive(self):
        assert format_bytes(KB) == "1.00 KB"
        assert format_bytes(KB - 1) == "1023 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatDuration:
    def test_milliseconds(self):
        assert format_duration(0.25) == "250 ms"

    def test_seconds(self):
        assert format_duration(12.34) == "12.3 s"

    def test_minutes(self):
        assert format_duration(90) == "1.5 min"

    def test_hours(self):
        assert format_duration(2 * HOUR) == "2.0 h"

    def test_days(self):
        assert format_duration(36 * HOUR) == "1.5 d"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-0.1)


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_string_seeds_supported(self):
        a = DeterministicRng("hello")
        b = DeterministicRng("hello")
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert DeterministicRng(1).random() != DeterministicRng(2).random()

    def test_children_are_independent(self):
        parent = DeterministicRng(7)
        child_a = parent.child("a")
        # Drawing from one child must not perturb a sibling created later.
        first = child_a.random()
        parent2 = DeterministicRng(7)
        a2 = parent2.child("a")
        _ = parent2.child("b").random()
        assert a2.random() == first

    def test_exponential_requires_positive_rate(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).exponential(0)

    def test_bounded_normal_respects_bounds(self):
        rng = DeterministicRng(3)
        for _ in range(100):
            v = rng.bounded_normal(0.0, 10.0, -1.0, 1.0)
            assert -1.0 <= v <= 1.0

    def test_bounded_normal_invalid_bounds(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).bounded_normal(0, 1, 5, -5)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([5, 1, 3]) == 3

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_stdev_single_value(self):
        assert stdev([5]) == 0.0

    def test_stdev_known(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=0.001)
