"""The SQL type system: validation, coercion, text parsing."""

import datetime
import decimal

import pytest

from repro.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    REAL,
    SMALLINT,
    TIMESTAMP,
    can_coerce,
    char_type,
    coerce_value,
    common_type,
    decimal_type,
    parse_literal,
    render_literal,
    type_from_name,
    varchar_type,
)
from repro.datatypes.types import TypeKind
from repro.errors import DataError, TypeMismatchError


class TestValidation:
    def test_integer_ranges(self):
        assert SMALLINT.validate(32767) == 32767
        with pytest.raises(DataError):
            SMALLINT.validate(32768)
        assert INTEGER.validate(-(2 ** 31)) == -(2 ** 31)
        with pytest.raises(DataError):
            INTEGER.validate(2 ** 31)
        assert BIGINT.validate(2 ** 63 - 1) == 2 ** 63 - 1

    def test_null_always_allowed(self):
        for t in (SMALLINT, DOUBLE, BOOLEAN, DATE, varchar_type(4)):
            assert t.validate(None) is None

    def test_bool_is_not_an_integer(self):
        with pytest.raises(DataError):
            INTEGER.validate(True)

    def test_float_accepts_int(self):
        assert DOUBLE.validate(3) == 3.0
        assert isinstance(DOUBLE.validate(3), float)

    def test_varchar_length_enforced(self):
        t = varchar_type(3)
        assert t.validate("abc") == "abc"
        with pytest.raises(DataError):
            t.validate("abcd")

    def test_char_pads(self):
        assert char_type(4).validate("ab") == "ab  "

    def test_decimal_quantizes_to_scale(self):
        t = decimal_type(10, 2)
        assert t.validate(decimal.Decimal("1.5")) == decimal.Decimal("1.50")

    def test_decimal_precision_enforced(self):
        t = decimal_type(4, 2)
        with pytest.raises(DataError):
            t.validate(decimal.Decimal("123.45"))

    def test_date_rejects_datetime(self):
        with pytest.raises(DataError):
            DATE.validate(datetime.datetime(2015, 1, 1))

    def test_timestamp_promotes_date(self):
        ts = TIMESTAMP.validate(datetime.date(2015, 5, 31))
        assert ts == datetime.datetime(2015, 5, 31)

    def test_byte_widths(self):
        assert SMALLINT.byte_width == 2
        assert INTEGER.byte_width == 4
        assert BIGINT.byte_width == 8
        assert REAL.byte_width == 4
        assert DOUBLE.byte_width == 8
        assert varchar_type(40).byte_width == 40


class TestTypeNames:
    def test_aliases(self):
        assert type_from_name("int") == INTEGER
        assert type_from_name("int8") == BIGINT
        assert type_from_name("float") == DOUBLE
        assert type_from_name("bool") == BOOLEAN
        assert type_from_name("text").kind is TypeKind.VARCHAR

    def test_parameterised(self):
        t = type_from_name("decimal", 12, 3)
        assert (t.precision, t.scale) == (12, 3)
        assert type_from_name("varchar", 7).length == 7

    def test_unknown_rejected(self):
        with pytest.raises(DataError):
            type_from_name("blob")

    def test_params_on_plain_type_rejected(self):
        with pytest.raises(DataError):
            type_from_name("int", 4)

    def test_rendering(self):
        assert str(decimal_type(10, 2)) == "decimal(10,2)"
        assert str(varchar_type(16)) == "varchar(16)"
        assert str(BIGINT) == "bigint"


class TestCoercion:
    def test_integer_widening(self):
        assert can_coerce(SMALLINT, BIGINT)
        assert not can_coerce(BIGINT, SMALLINT)

    def test_int_to_float(self):
        assert can_coerce(INTEGER, DOUBLE)
        assert coerce_value(3, INTEGER, DOUBLE) == 3.0

    def test_date_to_timestamp(self):
        assert can_coerce(DATE, TIMESTAMP)
        v = coerce_value(datetime.date(2015, 1, 2), DATE, TIMESTAMP)
        assert v == datetime.datetime(2015, 1, 2)

    def test_common_type_numeric(self):
        assert common_type(SMALLINT, BIGINT) == BIGINT
        assert common_type(INTEGER, DOUBLE) == DOUBLE

    def test_common_type_decimal_float_is_double(self):
        assert common_type(decimal_type(10, 2), REAL) == DOUBLE

    def test_common_type_char(self):
        assert common_type(varchar_type(5), varchar_type(9)).length == 9

    def test_no_common_type(self):
        with pytest.raises(TypeMismatchError):
            common_type(BOOLEAN, DATE)

    def test_null_coerces_to_anything(self):
        assert coerce_value(None, INTEGER, DOUBLE) is None


class TestTextParsing:
    def test_null_marker(self):
        assert parse_literal("", INTEGER) is None
        assert parse_literal("\\N", INTEGER, null_marker="\\N") is None

    def test_integers(self):
        assert parse_literal("42", INTEGER) == 42
        with pytest.raises(DataError):
            parse_literal("4.2", INTEGER)

    def test_booleans(self):
        for text in ("t", "TRUE", "yes", "1"):
            assert parse_literal(text, BOOLEAN) is True
        for text in ("f", "no", "0", "off"):
            assert parse_literal(text, BOOLEAN) is False
        with pytest.raises(DataError):
            parse_literal("maybe", BOOLEAN)

    def test_dates_and_timestamps(self):
        assert parse_literal("2015-05-31", DATE) == datetime.date(2015, 5, 31)
        assert parse_literal(
            "2015-05-31 12:34:56", TIMESTAMP
        ) == datetime.datetime(2015, 5, 31, 12, 34, 56)
        assert parse_literal(
            "2015-05-31T01:02:03.500000", TIMESTAMP
        ).microsecond == 500000

    def test_bad_date(self):
        with pytest.raises(DataError):
            parse_literal("31/05/2015", DATE)

    def test_roundtrip(self):
        cases = [
            (INTEGER, 17),
            (DOUBLE, 2.5),
            (BOOLEAN, True),
            (DATE, datetime.date(2014, 2, 28)),
            (TIMESTAMP, datetime.datetime(2014, 2, 28, 5, 6, 7)),
            (varchar_type(20), "hello world"),
        ]
        for sql_type, value in cases:
            text = render_literal(value, sql_type)
            assert parse_literal(text, sql_type) == value
