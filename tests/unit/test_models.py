"""Ops, growth and performance models (the figure generators)."""

import pytest

from repro.controlplane.patching import DefectModel
from repro.growth import DataGrowthModel
from repro.ops import (
    FeatureDeliveryModel,
    FleetOperationsSimulation,
    pareto_top_share,
    rank_causes,
)
from repro.perfmodel import (
    HadoopModel,
    LegacyWarehouseModel,
    RedshiftPerfModel,
    RetailWorkload,
)
from repro.util.units import TB


class TestPareto:
    def test_ranking(self):
        events = ["a"] * 5 + ["b"] * 3 + ["c"]
        assert rank_causes(events) == [("a", 5), ("b", 3), ("c", 1)]

    def test_tie_break_by_name(self):
        assert rank_causes(["b", "a"]) == [("a", 1), ("b", 1)]

    def test_top_share(self):
        events = ["hot"] * 90 + [f"cold{i}" for i in range(10)]
        assert pareto_top_share(events, top_n=1) == 0.9
        assert pareto_top_share([], top_n=10) == 0.0


class TestFeatureModel:
    def test_roughly_one_per_week(self):
        releases = FeatureDeliveryModel(seed=1).simulate(104)
        total = releases[-1].cumulative
        assert 80 <= total <= 160  # "averaged one feature per week"

    def test_cumulative_monotone(self):
        releases = FeatureDeliveryModel(seed=2).simulate(104)
        values = [r.cumulative for r in releases]
        assert values == sorted(values)

    def test_release_cadence(self):
        releases = FeatureDeliveryModel(release_interval_weeks=2, seed=3).simulate(52)
        assert len(releases) == 26

    def test_deterministic(self):
        a = FeatureDeliveryModel(seed=9).simulate(52)
        b = FeatureDeliveryModel(seed=9).simulate(52)
        assert [r.cumulative for r in a] == [r.cumulative for r in b]


class TestTicketSimulation:
    def test_fig5_shape(self):
        stats = FleetOperationsSimulation(seed=11).run(104)
        # Fleet grows (operational load correlates with success)...
        assert stats[-1].clusters > stats[0].clusters * 10
        # ...but tickets per cluster decline materially.
        first_quarter = sum(s.tickets_per_cluster for s in stats[:13]) / 13
        last_quarter = sum(s.tickets_per_cluster for s in stats[-13:]) / 13
        assert last_quarter < first_quarter * 0.6

    def test_pareto_concentration_exists(self):
        stats = FleetOperationsSimulation(seed=11).run(20)
        busy = [s for s in stats if s.tickets >= 20]
        assert busy, "simulation should produce paged weeks"
        assert all(s.top10_share > 0.3 for s in busy)

    def test_fixes_happen(self):
        stats = FleetOperationsSimulation(seed=11).run(30)
        assert sum(s.fixed_this_week for s in stats) >= 20


class TestGrowthModel:
    def test_gap_widens(self):
        model = DataGrowthModel()
        assert model.gap_ratio(2020) > model.gap_ratio(2010) > model.gap_ratio(2000)

    def test_dark_fraction_grows(self):
        points = DataGrowthModel().series()
        assert points[-1].dark_fraction > 0.9
        assert points[0].dark_fraction == 0.0

    def test_doubling_time_near_paper_quote(self):
        # "data doubling in size every 20 months"
        months = DataGrowthModel().doubling_months_late_era()
        assert 15 <= months <= 25

    def test_series_covers_figure_range(self):
        points = DataGrowthModel().series()
        assert points[0].year == 1990
        assert points[-1].year == 2020


class TestDefectModel:
    def test_failure_probability_superlinear(self):
        model = DefectModel()
        p2 = model.failure_probability(36)   # 2 weeks of changes
        p4 = model.failure_probability(72)   # 4 weeks
        assert p4 > 2 * p2 * 0.9  # roughly doubles or worse

    def test_bounds(self):
        model = DefectModel()
        assert 0 <= model.failure_probability(1) < 0.02
        assert model.failure_probability(10_000) <= 1.0


class TestPerfModel:
    def test_retail_numbers_same_order_of_magnitude(self):
        workload = RetailWorkload()
        model = RedshiftPerfModel()
        out = model.retail_summary(workload)
        paper = workload.PAPER_RESULTS
        for key in ("daily_load_s", "backfill_s", "backup_s", "restore_s", "join_s"):
            ratio = out[key] / paper[key]
            assert 0.2 <= ratio <= 5.0, (key, ratio)

    def test_join_beats_legacy_by_orders_of_magnitude(self):
        workload = RetailWorkload()
        join = workload.click_product_join()
        redshift = RedshiftPerfModel().join_seconds(join)
        legacy = LegacyWarehouseModel().join_seconds(join)
        assert legacy > 7 * 24 * 3600  # paper: "over a week"
        assert legacy / redshift > 100

    def test_colocation_helps(self):
        join = RetailWorkload().click_product_join()
        model = RedshiftPerfModel()
        assert model.join_seconds(join, colocated=True) < model.join_seconds(
            join, colocated=False
        )

    def test_scaling_near_linear(self):
        w = RetailWorkload()
        small = RedshiftPerfModel(node_count=10).load_seconds(w.daily_raw_bytes)
        large = RedshiftPerfModel(node_count=100).load_seconds(w.daily_raw_bytes)
        assert small / large == pytest.approx(10, rel=0.01)

    def test_comparator_scan_rates_match_paper_quotes(self):
        legacy = LegacyWarehouseModel()
        hadoop = HadoopModel()
        week_of_data = 7 * 2 * TB
        month_of_data = 30 * 2 * TB
        assert legacy.scan_seconds(week_of_data) == pytest.approx(3600)
        assert hadoop.scan_seconds(month_of_data) == pytest.approx(3600)

    def test_cost_model(self):
        model = RedshiftPerfModel(node_type="dw2.large", node_count=1)
        assert model.hourly_cost_usd() == pytest.approx(0.25)

    def test_unknown_node_type(self):
        with pytest.raises(KeyError):
            RedshiftPerfModel(node_type="m1.banana").retail_summary()
