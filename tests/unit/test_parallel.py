"""The parallel per-slice executor: morsels, pools, recovery, telemetry."""

import pytest

from repro import Cluster
from repro.exec import workers
from repro.exec.scan import shard_block_count
from repro.exec.workers import (
    MorselTask,
    PipelineSpec,
    PoolManager,
    WorkerPool,
    run_morsel,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.storage import epoch


def _load(cluster, rows=300):
    s = cluster.connect()
    s.execute("CREATE TABLE t (a int, b int) DISTKEY(a)")
    s.execute(
        "INSERT INTO t VALUES "
        + ",".join(f"({i}, {i % 7})" for i in range(rows))
    )
    return s


@pytest.fixture
def cluster():
    c = Cluster(node_count=2, slices_per_node=2, block_capacity=16)
    _load(c)
    yield c
    c.close()


def _spec(scan_filters=()):
    return PipelineSpec(
        table="t", column_names=["a", "b"], zone_predicates=[],
        filters=tuple(scan_filters),
    )


def _tasks_for(cluster, spec, morsel_blocks=2, row_ship_limit=0):
    """Morselize table t by hand, mirroring the executor's split."""
    tasks = []
    snapshot = cluster.transactions.snapshot_latest()
    for index, store in enumerate(cluster.slice_stores):
        blocks = shard_block_count(store.shard("t"))
        starts = list(range(0, blocks, morsel_blocks)) or [0]
        for j, start in enumerate(starts):
            tasks.append(
                MorselTask(
                    registry_id=cluster.worker_registry_id,
                    slice_index=index,
                    slice_id=store.slice_id,
                    block_start=start,
                    block_end=min(start + morsel_blocks, blocks),
                    include_tail=(j == len(starts) - 1),
                    pipeline=spec,
                    snapshot=snapshot,
                    row_ship_limit=row_ship_limit,
                )
            )
    return tasks


class TestMorsels:
    def test_concatenated_morsels_reproduce_the_serial_scan(self, cluster):
        """Every row exactly once, in serial scan order, however the
        block ranges are cut."""
        for quantum in (1, 2, 3, 100):
            rows = []
            for task in _tasks_for(cluster, _spec(), morsel_blocks=quantum):
                rows.extend(run_morsel(task, cluster.slice_stores).rows)
            assert sorted(rows) == [(i, i % 7) for i in range(300)]

    def test_morsel_scan_stats_sum_to_the_serial_scan(self, cluster):
        serial = cluster.connect(executor="volcano")
        want = serial.execute("SELECT a, b FROM t").stats.scan
        got_blocks = got_values = 0
        for task in _tasks_for(cluster, _spec()):
            result = run_morsel(task, cluster.slice_stores)
            got_blocks += result.scan.blocks_read
            got_values += result.scan.values_read
        assert got_blocks == want.blocks_read
        assert got_values == want.values_read

    def test_overflow_flags_instead_of_shipping(self, cluster):
        task = _tasks_for(cluster, _spec(), row_ship_limit=3)[0]
        result = run_morsel(task, cluster.slice_stores)
        assert result.overflow and result.rows is None

    def test_worker_registry_resolves_tasks_without_explicit_slices(
        self, cluster
    ):
        task = _tasks_for(cluster, _spec())[0]
        assert run_morsel(task).rows == run_morsel(
            task, cluster.slice_stores
        ).rows


class TestPools:
    def test_fork_pool_goes_stale_when_storage_mutates(self, cluster):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("platform has no fork")
        pool = WorkerPool(2, "fork")
        try:
            assert not pool.stale()
            epoch.bump()
            assert pool.stale()
        finally:
            pool.close()

    def test_thread_pool_never_goes_stale(self):
        pool = WorkerPool(2, "thread")
        try:
            epoch.bump()
            assert not pool.stale()
        finally:
            pool.close()

    def test_manager_reuses_then_replaces_on_mutation(self):
        manager = PoolManager()
        try:
            first = manager.pool(2, "thread")
            assert manager.pool(2, "thread") is first
            assert manager.pool(3, "thread") is not first
        finally:
            manager.close()

    def test_insert_between_queries_refreshes_fork_workers(self, cluster):
        """A forked worker must see rows loaded after the fork."""
        mode = workers.default_mode()
        s = cluster.connect(executor="parallel", parallelism=2, pool_mode=mode)
        assert s.execute("SELECT count(*) FROM t").scalar() == 300
        s.execute("INSERT INTO t VALUES (1000, 1), (1001, 2)")
        assert s.execute("SELECT count(*) FROM t").scalar() == 302


class TestRecovery:
    def test_injected_crashes_recover_and_are_logged(self, cluster):
        injector = FaultInjector(FaultPlan(seed=3).worker_crashes(rate=1.0))
        cluster.attach_faults(injector)
        s = cluster.connect(executor="parallel", parallelism=2)
        assert s.execute("SELECT sum(a) FROM t").scalar() == sum(range(300))
        kinds = {event.kind for event in injector.log}
        assert "worker_crash" in kinds
        assert "recovery:morsel_rerun" in kinds

    def test_crash_counts_reach_stv_slice_exec(self, cluster):
        injector = FaultInjector(FaultPlan(seed=3).worker_crashes(rate=1.0))
        cluster.attach_faults(injector)
        s = cluster.connect(executor="parallel", parallelism=2)
        s.execute("SELECT count(*) FROM t")
        total = s.execute("SELECT sum(crashes) FROM stv_slice_exec").scalar()
        morsels = s.execute("SELECT sum(morsels) FROM stv_slice_exec").scalar()
        assert total == morsels  # rate 1.0: every morsel crashed once


class TestTelemetry:
    def test_stv_slice_exec_covers_every_slice(self, cluster):
        s = cluster.connect(executor="parallel", parallelism=2)
        s.execute("SELECT count(*) FROM t")
        rows = s.execute(
            "SELECT slice, node, morsels, scanned_rows FROM stv_slice_exec"
            " ORDER BY slice"
        ).rows
        assert [r[0] for r in rows] == [
            st.slice_id for st in cluster.slice_stores
        ]
        assert all(r[0].startswith(r[1]) for r in rows)
        assert sum(r[3] for r in rows) == 300

    def test_query_summary_reports_workers_and_morsels(self, cluster):
        s = cluster.connect(executor="parallel", parallelism=3)
        s.execute("SELECT count(*) FROM t")
        rows = s.execute(
            "SELECT operator, workers, morsels FROM svl_query_summary "
            "WHERE workers > 0"
        ).rows
        assert rows and all(r[1] == 3 and r[2] > 0 for r in rows)

    def test_explain_prints_executor_and_degree(self, cluster):
        s = cluster.connect(executor="parallel", parallelism=4)
        header = s.execute("EXPLAIN SELECT count(*) FROM t").rows[0][0]
        assert header == "Executor: parallel (parallelism 4)"
        serial = cluster.connect(executor="compiled")
        assert (
            serial.execute("EXPLAIN SELECT 1").rows[0][0]
            == "Executor: compiled"
        )

    def test_explain_analyze_annotates_parallel_steps(self, cluster):
        s = cluster.connect(executor="parallel", parallelism=2)
        text = "\n".join(
            r[0] for r in s.execute("EXPLAIN ANALYZE SELECT sum(a) FROM t").rows
        )
        assert "workers=2" in text and "morsels=" in text


class TestSessionConfig:
    def test_set_statements_select_parallel_execution(self, cluster):
        s = cluster.connect()
        s.execute("SET executor = parallel")
        s.execute("SET parallelism = 2")
        result = s.execute("SELECT count(*) FROM t")
        assert result.scalar() == 300
        assert result.stats.slice_exec  # ran through the parallel engine

    def test_bad_parallelism_is_rejected(self, cluster):
        from repro.errors import AnalysisError

        s = cluster.connect()
        with pytest.raises(AnalysisError):
            s.execute("SET parallelism = 0")
        with pytest.raises(ValueError):
            cluster.connect(executor="parallel", parallelism=0)

    def test_thread_mode_matches_fork_results(self, cluster):
        sql = "SELECT b, count(*), sum(a) FROM t GROUP BY b ORDER BY b"
        want = cluster.connect(executor="volcano").execute(sql).rows
        for mode in ("serial", "thread", workers.default_mode()):
            s = cluster.connect(
                executor="parallel", parallelism=2, pool_mode=mode
            )
            assert s.execute(sql).rows == want, mode
