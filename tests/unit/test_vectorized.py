"""Block-decode cache, column batches, vector kernels, vectorized executor."""

import pytest

from repro import Cluster
from repro.compression import codec_by_name
from repro.datatypes import INTEGER
from repro.errors import AnalysisError, BlockCorruptionError
from repro.exec.batch import ColumnBatch, make_mask_kernel, make_value_kernel
from repro.sql import ast
from repro.storage import Block, ColumnChain
from repro.storage.blockcache import BlockDecodeCache


def _block(values):
    return Block.build(values, INTEGER, codec_by_name("raw"))


class TestBlockDecodeCache:
    def test_miss_then_hit_shares_decoded_list(self):
        cache = BlockDecodeCache(capacity=4)
        block = _block([1, 2, 3])
        values, hit = cache.lookup(block)
        assert (values, hit) == ([1, 2, 3], False)
        again, hit = cache.lookup(block)
        assert hit
        assert again is values
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)

    def test_lru_evicts_oldest(self):
        cache = BlockDecodeCache(capacity=2)
        a, b, c = _block([1]), _block([2]), _block([3])
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(c)
        assert cache.evictions == 1
        assert len(cache) == 2
        _, hit = cache.lookup(a)  # a was evicted
        assert not hit

    def test_hit_refreshes_recency(self):
        cache = BlockDecodeCache(capacity=2)
        a, b, c = _block([1]), _block([2]), _block([3])
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(a)  # a is now most-recent; b should be evicted next
        cache.lookup(c)
        _, hit_a = cache.lookup(a)
        assert hit_a
        _, hit_b = cache.lookup(b)
        assert not hit_b

    def test_invalidate(self):
        cache = BlockDecodeCache()
        block = _block([1])
        cache.lookup(block)
        assert cache.invalidate(block.block_id)
        assert not cache.invalidate(block.block_id)
        assert cache.invalidations == 1
        _, hit = cache.lookup(block)
        assert not hit

    def test_clear_keeps_counters(self):
        cache = BlockDecodeCache()
        cache.lookup(_block([1]))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BlockDecodeCache(capacity=0)

    def test_corrupt_invalidates_every_live_cache(self):
        first, second = BlockDecodeCache(), BlockDecodeCache()
        block = _block([1, 2])
        first.lookup(block)
        second.lookup(block)
        block.corrupt()
        assert len(first) == 0 and len(second) == 0
        # The re-read goes back to the block and fails its checksum:
        # corruption is never masked by a stale cache entry.
        with pytest.raises(BlockCorruptionError):
            first.lookup(block)

    def test_replace_block_invalidates(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=2)
        chain.append([1, 2])
        chain.seal()
        old = chain.blocks[0]
        cache = BlockDecodeCache()
        cache.lookup(old)
        repaired = Block.build(
            [7, 8], INTEGER, codec_by_name("raw"), block_id=old.block_id
        )
        assert chain.replace_block(old.block_id, repaired)
        values, hit = cache.lookup(repaired)
        assert not hit
        assert values == [7, 8]

    def test_vacuum_rewrite_invalidates(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=4)
        chain.append([3, 1, 2, 0])
        chain.seal()
        cache = BlockDecodeCache()
        cache.lookup(chain.blocks[0])
        chain.rewrite_in_order([3, 1, 2, 0])
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_adopt_blocks_invalidates_retired_set(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=2)
        chain.append([1, 2])
        chain.seal()
        cache = BlockDecodeCache()
        cache.lookup(chain.blocks[0])
        chain.adopt_blocks([_block([9, 8])])
        assert len(cache) == 0


class TestChecksumMemoization:
    def test_read_vector_does_not_retain_decoded_values(self):
        # Blocks live as long as their chain, so they must not memoize
        # decoded lists — the bounded BlockDecodeCache is the only
        # decoded-vector retainer (DESIGN.md §13).
        block = _block([1, 2, 3])
        first = block.read_vector()
        assert first == block.read_vector() == [1, 2, 3]
        assert first is not block.read_vector()
        assert block.read() is not block.read_vector()

    def test_verification_runs_once_per_content(self, monkeypatch):
        import repro.storage.block as blockmod

        calls = []
        real = blockmod._checksum
        monkeypatch.setattr(
            blockmod, "_checksum", lambda v: calls.append(1) or real(v)
        )
        block = _block([1, 2, 3])
        calls.clear()
        block.read()
        block.read()
        block.read_vector()
        assert len(calls) == 1

    def test_corrupt_resets_memo(self):
        block = _block([1, 2, 3])
        block.read()  # verified and memoized
        block.corrupt()
        with pytest.raises(BlockCorruptionError):
            block.read()


class TestColumnBatch:
    def test_from_rows_roundtrip(self):
        batch = ColumnBatch.from_rows([(1, "a"), (2, "b")], width=2)
        assert batch.count == 2
        assert batch.column(0) == [1, 2]
        assert batch.rows() == [(1, "a"), (2, "b")]

    def test_empty(self):
        batch = ColumnBatch.from_rows([], width=3)
        assert batch.count == 0
        assert batch.rows() == []

    def test_dead_column_materializes_as_nulls(self):
        batch = ColumnBatch([[1, 2], None], 2)
        assert batch.column(1) == [None, None]
        assert batch.rows() == [(1, None), (2, None)]

    def test_take_preserves_dead_columns(self):
        batch = ColumnBatch([[10, 20, 30], None], 3)
        taken = batch.take([0, 2])
        assert taken.count == 2
        assert taken.columns[1] is None
        assert taken.column(0) == [10, 30]


def _ref(index):
    return ast.BoundRef(index=index, sql_type=INTEGER, name=f"c{index}")


def _lit(value):
    return ast.Literal(value)


class TestKernels:
    def _batch(self):
        return ColumnBatch([[1, None, 3, 4], [4, 5, None, 1]], 4)

    def test_comparison_col_lit(self):
        mask = make_mask_kernel(ast.BinaryOp(">", _ref(0), _lit(2)))
        assert mask(self._batch()) == [False, False, True, True]

    def test_comparison_lit_col(self):
        mask = make_mask_kernel(ast.BinaryOp(">=", _lit(3), _ref(0)))
        assert mask(self._batch()) == [True, False, True, False]

    def test_comparison_col_col_null_safe(self):
        mask = make_mask_kernel(ast.BinaryOp("<", _ref(0), _ref(1)))
        assert mask(self._batch()) == [True, False, False, False]

    def test_and_or_three_valued(self):
        cond = ast.BinaryOp(
            "OR",
            ast.BinaryOp("AND",
                         ast.BinaryOp(">", _ref(0), _lit(0)),
                         ast.BinaryOp(">", _ref(1), _lit(4))),
            ast.BinaryOp("=", _ref(0), _lit(4)),
        )
        # Row 2 has NULL in c0: every comparison on it is UNKNOWN -> drop.
        assert make_mask_kernel(cond)(self._batch()) == [
            False, False, False, True,
        ]

    def test_between(self):
        expr = ast.BetweenExpr(
            operand=_ref(0), low=_lit(2), high=_lit(3), negated=False
        )
        assert make_mask_kernel(expr)(self._batch()) == [
            False, False, True, False,
        ]

    def test_is_null(self):
        expr = ast.IsNullExpr(operand=_ref(0), negated=False)
        assert make_mask_kernel(expr)(self._batch()) == [
            False, True, False, False,
        ]
        negated = ast.IsNullExpr(operand=_ref(0), negated=True)
        assert make_mask_kernel(negated)(self._batch()) == [
            True, False, True, True,
        ]

    def test_value_kernel_column_is_zero_copy(self):
        batch = self._batch()
        assert make_value_kernel(_ref(1))(batch) is batch.column(1)

    def test_value_kernel_literal_broadcasts(self):
        assert make_value_kernel(_lit(7))(self._batch()) == [7, 7, 7, 7]

    def test_value_kernel_arithmetic_propagates_null(self):
        expr = ast.BinaryOp("+", _ref(0), _ref(1))
        assert make_value_kernel(expr)(self._batch()) == [5, None, None, 5]

    def test_value_kernel_col_lit_arithmetic(self):
        expr = ast.BinaryOp("*", _ref(0), _lit(10))
        assert make_value_kernel(expr)(self._batch()) == [10, None, 30, 40]


class TestAccumulateMany:
    def test_bulk_matches_looped(self):
        from repro.sql.functions import make_aggregate

        values = [3, None, 1, 4, None, 1, 5, 9, 2, 6]
        for name in ("count", "sum", "min", "max", "avg"):
            agg = make_aggregate(name)
            looped = agg.create()
            for v in values:
                looped = agg.accumulate(looped, v)
            bulk = agg.accumulate_many(agg.create(), values)
            assert agg.finalize(bulk) == agg.finalize(looped), name

    def test_bulk_on_all_null_vector(self):
        from repro.sql.functions import make_aggregate

        for name in ("count", "sum", "min", "max"):
            agg = make_aggregate(name)
            state = agg.accumulate_many(agg.create(), [None, None])
            assert agg.finalize(state) == (0 if name == "count" else None)


@pytest.fixture
def small_cluster():
    cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=8)
    s = cluster.connect(executor="vectorized")
    s.execute("CREATE TABLE t (a int, b int) DISTSTYLE EVEN")
    rows = ",".join(f"({i % 5}, {i})" for i in range(64))
    s.execute(f"INSERT INTO t VALUES {rows}")
    return cluster


class TestVectorizedExecutor:
    def test_connect_with_vectorized(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        assert s.execute("SELECT count(*) FROM t").rows == [(64,)]

    def test_set_executor_statement(self, small_cluster):
        s = small_cluster.connect(executor="volcano")
        r = s.execute("SET executor = vectorized")
        assert r.command == "SET"
        assert s.execute("SELECT sum(b) FROM t").stats.executor == "vectorized"
        s.execute("SET executor TO compiled")
        assert s.execute("SELECT sum(b) FROM t").stats.executor == "compiled"

    def test_set_unknown_parameter_rejected(self, small_cluster):
        s = small_cluster.connect()
        with pytest.raises(AnalysisError):
            s.execute("SET wlm_mode = auto")
        with pytest.raises(AnalysisError):
            s.execute("SET executor = turbo")

    def test_scan_stats_block_granularity(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        r = s.execute("SELECT count(*) FROM t WHERE b >= 48")
        scan = r.stats.scan
        # 64 rows over 2 slices at capacity 8 = 8 logical blocks; blocks
        # are counted once regardless of the table's column count, while
        # chains_read counts each per-column block decode.
        assert scan.blocks_total == scan.blocks_read + scan.blocks_skipped
        assert scan.blocks_skipped > 0
        assert scan.chains_read >= scan.blocks_read

    def test_warm_cache_hits(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        # Result cache off: the repeat query must reach the block cache.
        s.execute("SET enable_result_cache = off")
        s.execute("SELECT sum(b) FROM t")
        cache = small_cluster.block_cache
        baseline = cache.hits
        r = s.execute("SELECT sum(b) FROM t")
        assert cache.hits > baseline
        assert r.stats.scan.cache_hits > 0
        assert r.stats.scan.cache_misses == 0

    def test_stv_block_cache_queryable(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        s.execute("SET enable_result_cache = off")
        s.execute("SELECT sum(b) FROM t")
        s.execute("SELECT sum(b) FROM t")
        rows = s.execute(
            "SELECT hits, misses, entries FROM stv_block_cache"
        ).rows
        assert len(rows) == 1
        hits, misses, entries = rows[0]
        assert hits > 0 and misses > 0 and entries > 0

    def test_svl_query_summary_records_cache_columns(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        s.execute("SET enable_result_cache = off")
        s.execute("SELECT sum(b) FROM t")
        s.execute("SELECT sum(b) FROM t")
        rows = s.execute(
            "SELECT cache_hits FROM svl_query_summary "
            "WHERE operator LIKE 'Seq Scan%' AND cache_hits > 0"
        ).rows
        assert rows

    def test_explain_analyze_reports_cache(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        s.execute("SET enable_result_cache = off")
        s.execute("SELECT sum(b) FROM t")
        lines = "\n".join(
            row[0]
            for row in s.execute("EXPLAIN ANALYZE SELECT sum(b) FROM t").rows
        )
        assert "cache_hits=" in lines
        assert "Block decode cache:" in lines

    def test_update_visible_to_vectorized_scan(self, small_cluster):
        s = small_cluster.connect(executor="vectorized")
        s.execute("UPDATE t SET a = 99 WHERE b = 63")
        assert s.execute("SELECT a FROM t WHERE b = 63").rows == [(99,)]
        s.execute("DELETE FROM t WHERE b >= 32")
        assert s.execute("SELECT count(*) FROM t").rows == [(32,)]

    def test_corruption_detected_through_cache(self, small_cluster):
        from repro.errors import ExecutionError

        s = small_cluster.connect(executor="vectorized")
        s.execute("SELECT sum(b) FROM t")  # populate the cache
        store = small_cluster.slice_stores[0]
        shard = store.shard("t")
        shard.chain("b").blocks[0].corrupt()
        with pytest.raises((BlockCorruptionError, ExecutionError)):
            s.execute("SELECT sum(b) FROM t")
