"""Z-order curves, compound & interleaved sort keys, projection baseline."""

import pytest

from repro.sortkeys import (
    CompoundSortKey,
    InterleavedSortKey,
    Projection,
    ProjectionSet,
    ZOrderMapper,
    deinterleave,
    interleave,
)


class TestInterleave:
    def test_known_values(self):
        assert interleave([0b11, 0b00], 2) == 0b0101
        assert interleave([0b00, 0b11], 2) == 0b1010
        assert interleave([1, 1, 1], 1) == 0b111

    def test_inverse(self):
        for coords in ([3, 0], [7, 7], [0, 0], [5, 2]):
            code = interleave(coords, 3)
            assert deinterleave(code, len(coords), 3) == coords

    def test_monotone_on_diagonal(self):
        codes = [interleave([i, i], 8) for i in range(256)]
        assert codes == sorted(codes)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interleave([4], 2)
        with pytest.raises(ValueError):
            interleave([-1], 2)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            interleave([1], 0)


class TestZOrderMapper:
    def test_requires_fit(self):
        mapper = ZOrderMapper(4)
        with pytest.raises(RuntimeError):
            mapper.code([1, 2])

    def test_rank_quantiles(self):
        mapper = ZOrderMapper(2).fit([list(range(100))])
        # 3 boundaries split 100 values into 4 buckets.
        assert mapper.rank(0, 0) == 0
        assert mapper.rank(0, 99) == 3

    def test_null_ranks_lowest(self):
        mapper = ZOrderMapper(4).fit([list(range(10))])
        assert mapper.rank(0, None) == 0

    def test_skewed_data_still_spreads(self):
        values = [1] * 900 + list(range(2, 102))
        mapper = ZOrderMapper(4).fit([values])
        assert mapper.rank(0, 1) < mapper.rank(0, 50) <= mapper.rank(0, 101)

    def test_strings_work(self):
        mapper = ZOrderMapper(3).fit(
            [[f"user-{i:03d}" for i in range(50)], list(range(50))]
        )
        assert mapper.code(["user-000", 0]) <= mapper.code(["user-049", 49])

    def test_dimension_count_checked(self):
        mapper = ZOrderMapper(4).fit([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            mapper.code([1])

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ZOrderMapper(0)
        with pytest.raises(ValueError):
            ZOrderMapper(25)


class TestCompoundSortKey:
    def test_lexicographic(self):
        key = CompoundSortKey(["a", "b"])
        order = key.sort_order([[2, 1, 1], ["x", "y", "x"]])
        assert order == [2, 1, 0]

    def test_nulls_first(self):
        key = CompoundSortKey(["a"])
        order = key.sort_order([[3, None, 1]])
        assert order == [1, 2, 0]

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            CompoundSortKey([])

    def test_vector_count_checked(self):
        key = CompoundSortKey(["a", "b"])
        with pytest.raises(ValueError):
            key.sort_order([[1, 2]])


class TestInterleavedSortKey:
    def test_orders_by_zcode(self):
        key = InterleavedSortKey(["x", "y"], bits_per_dim=4)
        xs = list(range(16)) * 16
        ys = [i // 16 for i in range(256)]
        order = key.sort_order([xs, ys])
        assert sorted(order) == list(range(256))

        # The zone-map-relevant property: cut the sorted order into
        # 16-row "blocks" and measure each block's bounding box in the
        # *trailing* dimension. A compound key leaves y unclustered
        # within late blocks of a given x... more precisely, for the
        # z-curve every 16-row block is a 4x4 tile (y-range 3), while a
        # compound (x, y) sort makes each block span the full y range
        # whenever the predicate is on y alone across x groups.
        def block_ranges(permutation, values):
            spans = []
            for start in range(0, 256, 16):
                chunk = [values[i] for i in permutation[start:start + 16]]
                spans.append(max(chunk) - min(chunk))
            return spans

        z_y_spans = block_ranges(order, ys)
        compound = CompoundSortKey(["x", "y"]).sort_order([xs, ys])
        # Compound blocks each hold one full x column => y spans 15.
        compound_y_spans = block_ranges(compound, ys)
        assert max(z_y_spans) <= 7          # tiles stay y-local
        assert min(compound_y_spans) == 15  # compound spreads y fully
        # And the z-curve keeps x local too (graceful degradation in
        # both dimensions rather than perfection in one).
        assert max(block_ranges(order, xs)) <= 7

    def test_describe(self):
        assert "INTERLEAVED" in InterleavedSortKey(["a"]).describe()


class TestProjections:
    def test_serving(self):
        p = Projection("p1", ("ts", "user"))
        assert p.serves("ts")
        assert not p.serves("user")  # only the leading column prunes

    def test_projection_set_choice_and_amplification(self):
        ps = ProjectionSet("clicks")
        assert ps.load_amplification == 1
        ps.add("by_ts", ["ts"])
        ps.add("by_user", ["user"])
        assert ps.load_amplification == 3
        assert ps.choose("user").name == "by_user"
        assert ps.choose("url") is None  # full scan fallback

    def test_duplicate_name_rejected(self):
        ps = ProjectionSet("t")
        ps.add("p", ["a"])
        with pytest.raises(ValueError):
            ps.add("p", ["b"])
