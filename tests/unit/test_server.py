"""The concurrent session server: lifecycle, admission, observability."""

from __future__ import annotations

import threading

import pytest

from repro import Cluster
from repro.engine.wlm import QueueConfig
from repro.errors import (
    AdmissionShedError,
    AdmissionTimeoutError,
    ServerError,
    SessionClosedError,
    TableNotFoundError,
)
from repro.server import ClusterServer, ServerConfig, SlotGate


def make_server(cluster, **config_kwargs) -> ClusterServer:
    return ClusterServer(cluster, ServerConfig(**config_kwargs))


class TestSessionLifecycle:
    def test_execute_round_trip(self, cluster):
        server = make_server(cluster)
        handle = server.open_session(user_name="alice")
        handle.execute("CREATE TABLE t (k int)")
        handle.execute("INSERT INTO t VALUES (1),(2),(3)")
        assert handle.execute("SELECT count(*) FROM t").scalar() == 3
        handle.close()
        server.shutdown()

    def test_submit_returns_future(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        handle.execute("CREATE TABLE t (k int)")
        futures = [
            handle.submit(f"INSERT INTO t VALUES ({i})") for i in range(5)
        ]
        for future in futures:
            future.result(timeout=10)
        assert handle.execute("SELECT count(*) FROM t").scalar() == 5
        server.shutdown()

    def test_statement_error_travels_through_future(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        with pytest.raises(TableNotFoundError):
            handle.execute("SELECT nope FROM missing")
        # The worker survives a failed statement.
        handle.execute("CREATE TABLE t (k int)")
        assert handle.execute("SELECT count(*) FROM t").scalar() == 0
        server.shutdown()

    def test_closed_session_refuses_work(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        handle.close()
        with pytest.raises(SessionClosedError):
            handle.submit("SELECT 1")
        server.shutdown()

    def test_close_finishes_queued_statements(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        handle.execute("CREATE TABLE t (k int)")
        futures = [
            handle.submit(f"INSERT INTO t VALUES ({i})") for i in range(8)
        ]
        handle.close()  # drains before stopping
        for future in futures:
            assert future.result(timeout=1).command == "INSERT"
        server.shutdown()

    def test_shutdown_refuses_new_sessions(self, cluster):
        server = make_server(cluster)
        server.shutdown()
        with pytest.raises(ServerError):
            server.open_session()

    def test_unknown_queue_is_refused(self, cluster):
        server = make_server(cluster)
        with pytest.raises(ServerError, match="no WLM queue"):
            server.open_session(queue="etl")
        server.shutdown()

    def test_per_session_transaction_state(self, cluster):
        """BEGIN on one session never leaks into another."""
        server = make_server(cluster)
        a = server.open_session()
        b = server.open_session()
        a.execute("CREATE TABLE t (k int)")
        a.execute("BEGIN")
        a.execute("INSERT INTO t VALUES (1)")
        # b's autocommit snapshot excludes a's uncommitted insert.
        assert b.execute("SELECT count(*) FROM t").scalar() == 0
        a.execute("COMMIT")
        assert b.execute("SELECT count(*) FROM t").scalar() == 1
        server.shutdown()


class TestConcurrency:
    def test_many_sessions_interleave(self, cluster):
        server = make_server(cluster)
        setup = server.open_session()
        setup.execute("CREATE TABLE t (k int, v int)")
        setup.execute(
            "INSERT INTO t VALUES "
            + ",".join(f"({i % 10}, {i})" for i in range(200))
        )
        errors: list[Exception] = []

        def client(i: int) -> None:
            try:
                handle = server.open_session(user_name=f"u{i}")
                for j in range(5):
                    count = handle.execute(
                        f"SELECT count(*) FROM t WHERE k = {j}"
                    ).scalar()
                    assert count == 20
                handle.close()
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        metrics = server.metrics()
        assert metrics.queries >= 40
        assert metrics.errors == 0
        server.shutdown()

    def test_drain_waits_for_idle(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        handle.execute("CREATE TABLE t (k int)")
        for i in range(10):
            handle.submit(f"INSERT INTO t VALUES ({i})")
        assert server.drain(timeout=10)
        assert handle.pending == 0
        server.shutdown()


class TestSlotGate:
    def test_slots_bound_concurrent_admissions(self):
        gate = SlotGate(QueueConfig("q", slots=2, memory_fraction=1.0))
        gate.admit()
        gate.release_held()
        assert gate.admissions == 1

    def test_shed_at_max_queue_depth(self):
        import time

        gate = SlotGate(
            QueueConfig(
                "q", slots=1, memory_fraction=1.0, max_queue_depth=1
            )
        )
        gate.admit()  # takes the only slot
        started = threading.Event()

        def waiter() -> None:
            started.set()
            gate.admit()  # blocks until the slot frees
            gate.release_held()

        thread = threading.Thread(target=waiter)
        thread.start()
        started.wait(timeout=5)
        deadline = time.perf_counter() + 5
        while gate.waiting < 1 and time.perf_counter() < deadline:
            time.sleep(0.001)  # let the waiter block on the semaphore
        # Depth 1 reached: the next arrival sheds at the door.
        with pytest.raises(AdmissionShedError):
            gate.admit()
        assert gate.sheds == 1
        gate.release_held()  # frees the slot; the waiter admits
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert gate.admissions == 2

    def test_timeout_when_no_slot_frees(self):
        gate = SlotGate(
            QueueConfig(
                "q",
                slots=1,
                memory_fraction=1.0,
                admission_timeout_s=0.05,
            )
        )
        gate.admit()
        holder_release = threading.Event()
        result: list[Exception] = []

        def contender() -> None:
            try:
                gate.admit()
            except AdmissionTimeoutError as exc:
                result.append(exc)
            holder_release.set()

        thread = threading.Thread(target=contender)
        thread.start()
        assert holder_release.wait(timeout=5)
        thread.join()
        assert len(result) == 1
        assert gate.timeouts == 1
        gate.release_held()

    def test_release_held_is_per_thread(self):
        gate = SlotGate(QueueConfig("q", slots=2, memory_fraction=1.0))
        gate.admit()
        gate.admit()  # INSERT ... SELECT shape: two admits, one statement
        gate.release_held()
        # Both slots are free again: two fresh admits succeed at once.
        gate.admit()
        gate.admit()
        gate.release_held()
        assert gate.admissions == 4

    def test_timed_out_query_is_recorded(self, cluster):
        server = ClusterServer(
            cluster,
            ServerConfig(
                queues=(
                    QueueConfig(
                        "default",
                        slots=1,
                        memory_fraction=1.0,
                        admission_timeout_s=0.05,
                    ),
                )
            ),
        )
        setup = server.open_session()
        setup.execute("CREATE TABLE t (k int)")
        setup.execute("INSERT INTO t VALUES (1)")
        gate = server._gates["default"]
        gate._slots.acquire()  # an operator pins the only slot
        with pytest.raises(AdmissionTimeoutError):
            setup.execute("SELECT count(*) FROM t")
        gate._slots.release()
        actions = setup.execute(
            "SELECT action FROM stl_wlm_rule_action"
        ).column("action")
        assert "timeout" in actions
        server.shutdown()


class TestObservability:
    def test_stv_sessions_lists_live_sessions(self, cluster):
        server = make_server(cluster)
        a = server.open_session(user_name="alice")
        b = server.open_session(user_name="bob")
        rows = a.execute(
            "SELECT session_id, user_name, queue FROM stv_sessions"
        ).rows
        users = {row[1] for row in rows}
        assert {"alice", "bob"} <= users
        b.close()
        rows = a.execute("SELECT user_name FROM stv_sessions").rows
        assert ("bob",) not in rows
        server.shutdown()

    def test_connection_log_records_lifecycle(self, cluster):
        server = make_server(cluster)
        handle = server.open_session(user_name="carol")
        sid = handle.session_id
        handle.close()
        probe = server.open_session()
        rows = probe.execute(
            "SELECT event, session_id, user_name FROM stl_connection_log"
        ).rows
        assert ("connect", sid, "carol") in rows
        assert ("disconnect", sid, "carol") in rows
        server.shutdown()

    def test_stl_query_carries_session_identity(self, cluster):
        server = make_server(cluster)
        handle = server.open_session(user_name="dave")
        handle.execute("CREATE TABLE t (k int)")
        handle.execute("SELECT count(*) FROM t")
        rows = handle.execute(
            "SELECT session_id, user_name FROM stl_query"
        ).rows
        assert (handle.session_id, "dave") in rows
        server.shutdown()

    def test_metrics_aggregate_across_closed_sessions(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        handle.execute("CREATE TABLE t (k int)")
        handle.execute("SELECT count(*) FROM t")
        handle.close()
        metrics = server.metrics()
        assert metrics.queries == 2
        assert metrics.qps > 0
        assert metrics.p50_ms > 0
        server.shutdown()

    def test_result_cache_hits_bypass_admission(self, cluster):
        server = make_server(cluster)
        handle = server.open_session()
        handle.execute("CREATE TABLE t (k int)")
        handle.execute("INSERT INTO t VALUES (1)")
        handle.execute("SELECT count(*) FROM t")
        handle.execute("SELECT count(*) FROM t")  # cache hit
        metrics = server.metrics()
        assert metrics.bypasses["default"] >= 1
        server.shutdown()
