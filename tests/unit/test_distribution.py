"""Distribution styles and stable hashing."""

import datetime
import decimal

import pytest

from repro.distribution import (
    AllDistribution,
    DistStyle,
    EvenDistribution,
    KeyDistribution,
    make_distribution,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_numeric_canonicalisation(self):
        # int/float/decimal representing the same value must co-locate,
        # or int-float equi-joins would break.
        assert stable_hash(1) == stable_hash(1.0)
        assert stable_hash(1) == stable_hash(decimal.Decimal("1.00"))

    def test_types_disambiguated(self):
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash(True) != stable_hash(1)

    def test_temporal(self):
        d = datetime.date(2015, 5, 31)
        ts = datetime.datetime(2015, 5, 31)
        assert stable_hash(d) == stable_hash(datetime.date(2015, 5, 31))
        assert stable_hash(d) != stable_hash(ts)

    def test_none_hashable(self):
        assert isinstance(stable_hash(None), int)

    def test_distribution_is_reasonably_uniform(self):
        buckets = [0] * 16
        for i in range(16000):
            buckets[stable_hash(i) % 16] += 1
        assert min(buckets) > 800
        assert max(buckets) < 1200

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])


class TestDistributions:
    def test_even_round_robin(self):
        d = EvenDistribution()
        assert d.target_slices(0, None, 4) == [0]
        assert d.target_slices(5, None, 4) == [1]

    def test_key_same_value_same_slice(self):
        d = KeyDistribution("id")
        a = d.target_slices(0, 42, 8)
        b = d.target_slices(99, 42, 8)
        assert a == b

    def test_key_requires_column(self):
        with pytest.raises(ValueError):
            KeyDistribution("")

    def test_all_targets_every_slice(self):
        assert AllDistribution().target_slices(0, None, 3) == [0, 1, 2]

    def test_colocation_rules(self):
        key = KeyDistribution("a")
        even = EvenDistribution()
        all_ = AllDistribution()
        assert key.colocated_with(key)
        assert key.colocated_with(all_)
        assert all_.colocated_with(even)
        assert not even.colocated_with(key)

    def test_factory(self):
        assert make_distribution("even").style is DistStyle.EVEN
        assert make_distribution("all").style is DistStyle.ALL
        assert make_distribution("key", "c").style is DistStyle.KEY
        with pytest.raises(ValueError):
            make_distribution("key")

    def test_describe(self):
        assert make_distribution("key", "uid").describe() == (
            "DISTSTYLE KEY DISTKEY(uid)"
        )
