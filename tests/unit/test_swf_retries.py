"""Workflow retry semantics: exhaustion, RETRIED history, clock accounting.

The workflow engine's retry behaviour is what turns control-plane actions
from elevators into escalators — these tests pin down exactly what each
attempt costs in simulated time and what the execution history records.
"""

import pytest

from repro.cloud.simclock import SimClock
from repro.cloud.swf import (
    SimWorkflowService,
    StepStatus,
    Workflow,
)
from repro.errors import WorkflowError
from repro.util.rng import DeterministicRng


def _failing_action(failures: int, duration: float = 5.0):
    """An action that raises *failures* times, then succeeds."""
    state = {"calls": 0}

    def action() -> float:
        state["calls"] += 1
        if state["calls"] <= failures:
            raise RuntimeError(f"boom #{state['calls']}")
        return duration

    return action


class TestRetryExhaustion:
    def test_exhaustion_raises_and_records_failed_result(self):
        swf = SimWorkflowService(SimClock())
        wf = Workflow("doomed").step(
            "never", _failing_action(failures=99), max_attempts=3,
            retry_delay_s=10.0,
        )
        with pytest.raises(WorkflowError, match="doomed"):
            swf.run(wf)
        execution = swf.history[0]
        assert not execution.succeeded
        assert len(execution.results) == 1
        result = execution.results[0]
        assert result.status is StepStatus.FAILED
        assert result.attempts == 3
        assert result.error == "boom #3"

    def test_failure_stops_later_steps(self):
        swf = SimWorkflowService(SimClock())
        ran = []
        wf = (
            Workflow("halts")
            .step("bad", _failing_action(failures=99), max_attempts=2)
            .step("good", lambda: ran.append(1) or 1.0)
        )
        with pytest.raises(WorkflowError):
            swf.run(wf)
        assert ran == []


class TestAttemptHistory:
    def test_retried_attempts_recorded_before_final_result(self):
        swf = SimWorkflowService(SimClock())
        wf = Workflow("flaky").step(
            "s", _failing_action(failures=2), max_attempts=5, retry_delay_s=10.0
        )
        execution = swf.run(wf)
        statuses = [r.status for r in execution.attempt_history]
        assert statuses == [
            StepStatus.RETRIED,
            StepStatus.RETRIED,
            StepStatus.SUCCEEDED,
        ]
        # results keeps its one-entry-per-step shape.
        assert len(execution.results) == 1
        assert execution.results[0].attempts == 3

    def test_retried_entries_carry_the_attempt_error(self):
        swf = SimWorkflowService(SimClock())
        wf = Workflow("flaky").step("s", _failing_action(failures=1))
        execution = swf.run(wf)
        retried = execution.attempt_history[0]
        assert retried.status is StepStatus.RETRIED
        assert retried.attempts == 1
        assert retried.error == "boom #1"

    def test_failed_step_history_has_all_attempts(self):
        swf = SimWorkflowService(SimClock())
        wf = Workflow("doomed").step(
            "s", _failing_action(failures=99), max_attempts=3
        )
        with pytest.raises(WorkflowError):
            swf.run(wf)
        statuses = [r.status for r in swf.history[0].attempt_history]
        assert statuses == [
            StepStatus.RETRIED,
            StepStatus.RETRIED,
            StepStatus.FAILED,
        ]


class TestClockAccounting:
    def test_fixed_delay_schedule(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)
        wf = Workflow("w").step(
            "s", _failing_action(failures=2, duration=5.0),
            max_attempts=3, retry_delay_s=30.0,
        )
        execution = swf.run(wf)
        # Two failed attempts cost 30s each; success costs its duration.
        assert clock.now == pytest.approx(65.0)
        assert execution.results[0].duration == pytest.approx(65.0)

    def test_exponential_backoff_schedule(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)
        wf = Workflow("w").step(
            "s", _failing_action(failures=3, duration=0.0),
            max_attempts=5, retry_delay_s=10.0, backoff_factor=2.0,
        )
        swf.run(wf)
        # Delays: 10, 20, 40.
        assert clock.now == pytest.approx(70.0)

    def test_backoff_respects_max_delay(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)
        wf = Workflow("w").step(
            "s", _failing_action(failures=3, duration=0.0),
            max_attempts=5, retry_delay_s=10.0, backoff_factor=10.0,
            max_delay_s=25.0,
        )
        swf.run(wf)
        # Delays: 10, min(100,25)=25, min(1000,25)=25.
        assert clock.now == pytest.approx(60.0)

    def test_retried_entries_account_backoff_gaps(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)
        wf = Workflow("w").step(
            "s", _failing_action(failures=2, duration=0.0),
            max_attempts=3, retry_delay_s=10.0, backoff_factor=2.0,
        )
        execution = swf.run(wf)
        first, second, final = execution.attempt_history
        assert first.started_at == 0.0
        # The second attempt starts after the first 10s backoff.
        assert second.started_at == pytest.approx(10.0)
        # The final attempt starts after the 20s second backoff.
        assert final.finished_at == pytest.approx(30.0)

    def test_jitter_adds_bounded_deterministic_delay(self):
        def run() -> float:
            clock = SimClock()
            swf = SimWorkflowService(clock, rng=DeterministicRng("swf-jitter"))
            wf = Workflow("w").step(
                "s", _failing_action(failures=2, duration=0.0),
                max_attempts=3, retry_delay_s=10.0, jitter_fraction=0.5,
            )
            swf.run(wf)
            return clock.now

        first, second = run(), run()
        assert first == second  # same seed, same jitter
        assert 20.0 <= first <= 30.0  # each 10s delay stretched by <= 50%

    def test_no_rng_means_no_jitter(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)  # rng omitted
        wf = Workflow("w").step(
            "s", _failing_action(failures=1, duration=0.0),
            max_attempts=2, retry_delay_s=10.0, jitter_fraction=0.5,
        )
        swf.run(wf)
        assert clock.now == pytest.approx(10.0)
