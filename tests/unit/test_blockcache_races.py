"""Regressions for the block-decode cache invalidation races and the
per-table epoch machinery.

The decode-outside-lock design of :meth:`BlockDecodeCache.lookup` had
two races (both fixed in this revision, both reproduced here by driving
the re-entrant seam a concurrent thread would use):

1. **Lost invalidation**: a miss decodes outside the lock; if the block
   is invalidated (mutated) during that decode, the stale decode must
   not be inserted afterwards.
2. **Lost insert race accounting**: when another thread populates the
   entry during the decode, the caller is served the cached vector — a
   hit — but was permanently counted as a miss with ``cached=False``.

Plus the third fix — ``epoch.current()`` reads under the module lock —
and the per-table epoch semantics the pool manager and result cache
build on.
"""

import multiprocessing
import threading
import time

import pytest

from repro.exec.workers import PoolManager
from repro.storage import epoch
from repro.storage.blockcache import BlockDecodeCache


class _Block:
    """A stand-in block whose decode can run arbitrary cache traffic,
    emulating what a concurrent thread does mid-decode."""

    def __init__(self, block_id, values, during_decode=None):
        self.block_id = block_id
        self._values = values
        self._during_decode = during_decode

    def read_vector(self):
        if self._during_decode is not None:
            self._during_decode()
        return list(self._values)


class TestLostInvalidationRace:
    def test_invalidation_during_decode_discards_insert(self):
        cache = BlockDecodeCache()
        # The mutation lands while the (pre-mutation) decode is running.
        stale = _Block(
            "blk-race", [1, 2, 3],
            during_decode=lambda: cache.invalidate("blk-race"),
        )
        values, cached = cache.lookup(stale)
        assert values == [1, 2, 3]  # the caller still gets its decode
        assert cached is False
        # The stale vector must NOT have repopulated the cache: the next
        # reader decodes the post-mutation content.
        fresh, cached = cache.lookup(_Block("blk-race", [9, 9, 9]))
        assert fresh == [9, 9, 9]
        assert cached is False

    def test_clear_during_decode_also_discards(self):
        cache = BlockDecodeCache()
        block = _Block("blk-c", [1], during_decode=cache.clear)
        cache.lookup(block)
        assert len(cache) == 0

    def test_invalidate_absent_entry_still_advances_generation(self):
        cache = BlockDecodeCache()
        # Invalidating a block that is not resident must still kill any
        # in-flight miss for it (the mutation predates the insert).
        assert cache.invalidate("blk-x") is False
        block = _Block(
            "blk-x", [1], during_decode=lambda: cache.invalidate("blk-x")
        )
        cache.lookup(block)
        assert len(cache) == 0

    def test_unrelated_traffic_does_not_block_insert(self):
        cache = BlockDecodeCache()
        values, cached = cache.lookup(_Block("blk-a", [1, 2]))
        assert cached is False
        values, cached = cache.lookup(_Block("blk-a", [1, 2]))
        assert cached is True


class TestLostInsertRaceAccounting:
    def test_losing_the_insert_race_counts_as_hit(self):
        cache = BlockDecodeCache()
        winner_values = [7, 7, 7]

        def other_thread_wins():
            # Emulates a second thread decoding and inserting the same
            # block while our decode is in flight.
            cache.lookup(_Block("blk-w", winner_values))

        values, cached = cache.lookup(
            _Block("blk-w", [0, 0, 0], during_decode=other_thread_wins)
        )
        # The caller is served the winner's cached vector: that is a hit,
        # and the provisional miss must have been reclassified.
        assert cached is True
        assert values == winner_values
        assert cache.hits == 1
        assert cache.misses == 1  # the winner's own (real) miss only


class TestEpochLocking:
    def test_current_reads_under_the_module_lock(self):
        """Regression: ``current()`` used to read the counter without the
        lock. A reader must serialize against in-flight bumps."""
        acquired = epoch._lock.acquire()
        assert acquired
        done = threading.Event()
        seen = []
        try:
            t = threading.Thread(
                target=lambda: (seen.append(epoch.current()), done.set())
            )
            t.start()
            # While the lock is held, the read must block.
            assert not done.wait(0.2)
        finally:
            epoch._lock.release()
        assert done.wait(2.0)
        assert seen and isinstance(seen[0], int)

    def test_bumps_are_monotonic_across_threads(self):
        observed = []

        def reader():
            for _ in range(200):
                observed.append(epoch.current())

        def writer():
            for _ in range(200):
                epoch.bump("race_table")

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert observed == sorted(observed) or all(
            a <= b for a, b in zip(observed, observed[1:])
        )


class TestPerTableEpochs:
    def test_bump_moves_only_that_table(self):
        before_other = epoch.table_epoch("tbl_other")
        moved = epoch.bump("tbl_mine")
        assert epoch.table_epoch("tbl_mine") == moved
        assert epoch.table_epoch("tbl_other") == before_other

    def test_wildcard_bump_moves_every_table(self):
        moved = epoch.bump()
        assert epoch.table_epoch("tbl_any") >= moved
        assert epoch.wildcard_epoch() == moved

    def test_global_counter_totally_orders_tables(self):
        a = epoch.bump("tbl_a")
        b = epoch.bump("tbl_b")
        assert b > a
        assert epoch.current() >= b


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork-based pools unavailable on this platform",
)
class TestPerTableReforks:
    def test_unrelated_mutation_keeps_pool(self):
        manager = PoolManager()
        try:
            first = manager.pool(1, "fork", tables={"tbl_scan"})
            assert manager.forks == 1
            epoch.bump("tbl_unrelated")
            again = manager.pool(1, "fork", tables={"tbl_scan"})
            assert again is first
            assert manager.forks == 1 and manager.reforks == 0
        finally:
            manager.close()

    def test_scanned_table_mutation_reforks(self):
        manager = PoolManager()
        try:
            first = manager.pool(1, "fork", tables={"tbl_scan"})
            epoch.bump("tbl_scan")
            again = manager.pool(1, "fork", tables={"tbl_scan"})
            assert again is not first
            assert manager.forks == 2 and manager.reforks == 1
        finally:
            manager.close()

    def test_without_tables_any_mutation_reforks(self):
        manager = PoolManager()
        try:
            first = manager.pool(1, "fork")
            epoch.bump("tbl_whatever")
            again = manager.pool(1, "fork")
            assert again is not first
            assert manager.reforks == 1
        finally:
            manager.close()

    def test_end_to_end_refork_reduction(self):
        """The tentpole's pool win: a parallel query over table a keeps
        its forked pool across mutations of table b, and still re-forks
        when a itself mutates."""
        from repro import Cluster

        cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=16)
        try:
            # Explicit degree: the default collapses to serial (no pool)
            # on single-core machines, and this test needs a real fork.
            s = cluster.connect(
                executor="parallel", parallelism=2, pool_mode="fork"
            )
            s.execute("SET enable_result_cache = off")
            s.execute("CREATE TABLE pa (k int)")
            s.execute("CREATE TABLE pb (k int)")
            s.execute(
                "INSERT INTO pa VALUES "
                + ",".join(f"({i})" for i in range(64))
            )
            s.execute(
                "INSERT INTO pb VALUES "
                + ",".join(f"({i})" for i in range(64))
            )
            manager = cluster.pool_manager
            assert s.execute("SELECT count(*) FROM pa").rows == [(64,)]
            forks = manager.forks
            # Mutating pb must not cost the pa-scan its warm pool ...
            s.execute("INSERT INTO pb VALUES (999)")
            assert s.execute("SELECT count(*) FROM pa").rows == [(64,)]
            assert manager.forks == forks
            # ... while mutating pa itself still re-forks.
            s.execute("INSERT INTO pa VALUES (999)")
            assert s.execute("SELECT count(*) FROM pa").rows == [(65,)]
            assert manager.forks == forks + 1
            assert manager.reforks >= 1
        finally:
            cluster.close()
