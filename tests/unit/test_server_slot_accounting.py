"""SlotGate held-slot accounting under worker death and early close.

The audit the burst PR asked for: a ``ServerSession`` worker that dies
on an *unexpected* (non-query) exception, or is closed with futures
still queued, must never strand WLM slots or ghost rows in
``stv_sessions``. No leak was found — the worker's ``finally`` releases
held slots on every exit path and ``close`` drains the FIFO before the
sentinel — so these tests stand as the guard that keeps it that way.
"""

import threading

import pytest

from repro import Cluster
from repro.engine.wlm import QueueConfig
from repro.server import ClusterServer, ServerConfig


@pytest.fixture
def tight_server(cluster):
    server = ClusterServer(
        cluster,
        ServerConfig(
            queues=(QueueConfig("default", slots=2, memory_fraction=1.0),)
        ),
    )
    yield server
    server.shutdown()


def _gate_free_slots(gate, cap):
    """How many slots are immediately acquirable (restored afterwards)."""
    got = 0
    for _ in range(cap):
        if gate._slots.acquire(blocking=False):
            got += 1
        else:
            break
    for _ in range(got):
        gate._slots.release()
    return got


class TestWorkerDeath:
    def test_unexpected_exception_mid_admission_releases_slots(
        self, tight_server
    ):
        """A statement that admits (holding real slots) and then blows
        up with a non-Repro exception must return its slots and leave
        the session serviceable."""
        handle = tight_server.open_session()
        gate = handle._gate
        real_execute = handle.session.execute

        def exploding_execute(sql):
            gate.admit("boom")  # the statement holds a real slot...
            raise RuntimeError("worker dies unexpectedly")

        handle.session.execute = exploding_execute
        with pytest.raises(RuntimeError):
            handle.execute("SELECT 1")

        assert _gate_free_slots(gate, gate.config.slots) == gate.config.slots
        assert gate.waiting == 0
        # The worker survived, the session still serves queries...
        handle.session.execute = real_execute
        assert handle.execute("SELECT 1").rows == [(1,)]
        # ...and stv_sessions reflects a live, idle session.
        rows = tight_server.session_rows()
        assert [r[0] for r in rows] == [handle.session_id]
        assert rows[0][3] == "idle"
        handle.close()
        assert tight_server.session_rows() == []

    def test_double_admission_fully_released_after_failure(
        self, tight_server
    ):
        """Statements may admit more than once (INSERT ... SELECT);
        every held slot must come back when the statement fails."""
        handle = tight_server.open_session()
        gate = handle._gate

        def greedy_execute(sql):
            gate.admit("first")
            gate.admit("second")
            raise RuntimeError("died holding two slots")

        handle.session.execute = greedy_execute
        with pytest.raises(RuntimeError):
            handle.execute("SELECT 1")
        assert _gate_free_slots(gate, gate.config.slots) == gate.config.slots
        handle.close()


class TestCloseWithQueuedWork:
    def test_close_resolves_queued_futures_with_balanced_slots(
        self, tight_server
    ):
        """Close puts the sentinel *behind* queued statements: they all
        execute (or error) through their futures, and the gate ends
        with every slot free."""
        handle = tight_server.open_session()
        gate = handle._gate
        release = threading.Event()
        real_execute = handle.session.execute

        def slow_execute(sql):
            release.wait(timeout=10.0)
            return real_execute(sql)

        handle.session.execute = slow_execute
        futures = [handle.submit("SELECT 1") for _ in range(5)]

        closer = threading.Thread(target=handle.close)
        closer.start()
        release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()

        for future in futures:
            assert future.result(timeout=1.0).rows == [(1,)]
        assert _gate_free_slots(gate, gate.config.slots) == gate.config.slots
        assert gate.waiting == 0
        assert tight_server.session_rows() == []

    def test_close_with_failing_queued_statements(self, tight_server):
        handle = tight_server.open_session()
        gate = handle._gate
        futures = [
            handle.submit("SELECT no_such_column FROM nowhere")
            for _ in range(3)
        ]
        handle.close()
        for future in futures:
            with pytest.raises(Exception):
                future.result(timeout=1.0)
        assert _gate_free_slots(gate, gate.config.slots) == gate.config.slots
        assert gate.waiting == 0
