"""Blocks, zone maps, chains, slice storage, disks."""

import pytest

from repro.datatypes import INTEGER, varchar_type
from repro.errors import BlockCorruptionError, DiskFailureError, StorageError
from repro.storage import (
    Block,
    ColumnChain,
    ScanStats,
    SimulatedDisk,
    SliceStorage,
    TableShard,
    ZoneMap,
)
from repro.compression import codec_by_name


class TestZoneMap:
    def test_build(self):
        z = ZoneMap.build([3, 1, None, 9])
        assert (z.low, z.high, z.null_count, z.count) == (1, 9, 1, 4)

    def test_all_null(self):
        z = ZoneMap.build([None, None])
        assert z.all_null
        assert not z.might_satisfy("=", 1)

    def test_might_satisfy_operators(self):
        z = ZoneMap.build(list(range(10, 20)))
        assert z.might_satisfy("=", 15)
        assert not z.might_satisfy("=", 25)
        assert z.might_satisfy("<", 11)
        assert not z.might_satisfy("<", 10)
        assert z.might_satisfy("<=", 10)
        assert z.might_satisfy(">", 18)
        assert not z.might_satisfy(">", 19)
        assert z.might_satisfy(">=", 19)
        assert not z.might_satisfy(">=", 20)

    def test_not_equal_skippable_only_for_constant_block(self):
        constant = ZoneMap.build([5, 5, 5])
        assert not constant.might_satisfy("<>", 5)
        mixed = ZoneMap.build([5, 6])
        assert mixed.might_satisfy("<>", 5)

    def test_null_literal_never_satisfied(self):
        z = ZoneMap.build([1, 2])
        assert not z.might_satisfy("=", None)

    def test_range_overlap(self):
        z = ZoneMap.build([10, 20])
        assert z.might_overlap_range(15, 25)
        assert z.might_overlap_range(None, 10)
        assert not z.might_overlap_range(21, None)
        assert not z.might_overlap_range(None, 9)

    def test_merge(self):
        a = ZoneMap.build([1, 2])
        b = ZoneMap.build([10, None])
        merged = a.merge(b)
        assert (merged.low, merged.high) == (1, 10)
        assert merged.null_count == 1
        assert merged.count == 4

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ZoneMap.build([1]).might_satisfy("~", 1)


class TestBlock:
    def test_roundtrip_and_metadata(self):
        block = Block.build([5, None, 7], INTEGER, codec_by_name("raw"))
        assert block.read() == [5, None, 7]
        assert block.count == 3
        assert block.zone_map.low == 5
        assert block.zone_map.high == 7

    def test_checksum_detects_corruption(self):
        block = Block.build([1, 2, 3], INTEGER, codec_by_name("raw"))
        block.corrupt()
        with pytest.raises(BlockCorruptionError):
            block.read()

    def test_serialize_roundtrip(self):
        block = Block.build(list(range(50)), INTEGER, codec_by_name("delta"))
        clone = Block.deserialize(block.serialize())
        assert clone.read() == block.read()
        assert clone.block_id == block.block_id

    def test_unique_ids(self):
        a = Block.build([1], INTEGER, codec_by_name("raw"))
        b = Block.build([1], INTEGER, codec_by_name("raw"))
        assert a.block_id != b.block_id


class TestColumnChain:
    def test_append_seals_full_blocks(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=10)
        chain.append(list(range(25)))
        assert chain.block_count == 3  # 2 sealed + tail
        assert len(chain.blocks) == 2
        chain.seal()
        assert len(chain.blocks) == 3
        assert chain.row_count == 25

    def test_read_all_preserves_order(self):
        chain = ColumnChain("c", INTEGER, "delta", block_capacity=7)
        chain.append(list(range(40)))
        assert chain.read_all() == list(range(40))

    def test_scan_with_zone_skipping(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=10)
        chain.append(list(range(100)))
        chain.seal()
        stats = ScanStats()
        got = [v for _, v in chain.scan((">=", 90), stats)]
        assert got == list(range(90, 100))
        assert stats.blocks_skipped == 9
        assert stats.blocks_read == 1

    def test_scan_offsets_account_for_skipped_blocks(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=10)
        chain.append(list(range(30)))
        chain.seal()
        # Zone maps are conservative: the whole surviving block is yielded
        # (callers re-filter), but offsets must stay global, accounting
        # for the two skipped blocks before it.
        pairs = list(chain.scan(("=", 25)))
        assert pairs == [(i, i) for i in range(20, 30)]

    def test_scan_includes_unsealed_tail(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=100)
        chain.append([1, 2, 3])
        assert [v for _, v in chain.scan()] == [1, 2, 3]

    def test_read_at_spans_blocks_and_tail(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=5)
        chain.append(list(range(12)))
        assert chain.read_at([0, 4, 5, 9, 11]) == [0, 4, 5, 9, 11]

    def test_read_at_empty(self):
        chain = ColumnChain("c", INTEGER)
        assert chain.read_at([]) == []

    def test_rewrite_in_order(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=4)
        chain.append([3, 1, 2, 0])
        chain.seal()
        sorted_chain = chain.rewrite_in_order([3, 1, 2, 0])
        assert sorted_chain.read_all() == [0, 1, 2, 3]

    def test_adopt_blocks(self):
        block = Block.build([9, 8], INTEGER, codec_by_name("raw"))
        chain = ColumnChain("c", INTEGER)
        chain.adopt_blocks([block])
        assert chain.read_all() == [9, 8]

    def test_set_codec_affects_future_blocks_only(self):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=5)
        chain.append(list(range(5)))
        chain.set_codec("delta")
        chain.append(list(range(5)))
        chain.seal()
        assert chain.blocks[0].codec_name == "raw"
        assert chain.blocks[1].codec_name == "delta"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ColumnChain("c", INTEGER, block_capacity=0)


class TestTableShard:
    def _shard(self):
        return TableShard(
            "t", [("a", INTEGER), ("b", varchar_type(8))], block_capacity=4
        )

    def test_append_rows(self):
        shard = self._shard()
        n = shard.append_rows([(1, "x"), (2, "y")], xid=5)
        assert n == 2
        assert shard.row_count == 2
        assert shard.insert_xids == [5, 5]
        assert shard.delete_xids == [None, None]

    def test_ragged_row_rejected(self):
        shard = self._shard()
        with pytest.raises(StorageError):
            shard.append_rows([(1,)], xid=1)

    def test_append_columns(self):
        shard = self._shard()
        shard.append_columns([[1, 2, 3], ["a", "b", "c"]], xid=1)
        assert shard.row_count == 3

    def test_append_columns_ragged_rejected(self):
        shard = self._shard()
        with pytest.raises(StorageError):
            shard.append_columns([[1], ["a", "b"]], xid=1)

    def test_mark_deleted_idempotent(self):
        shard = self._shard()
        shard.append_rows([(1, "x"), (2, "y")], xid=1)
        assert shard.mark_deleted([0], xid=2) == 1
        assert shard.mark_deleted([0], xid=3) == 0  # already tombstoned

    def test_rewrite_sorted_drops_dead_rows(self):
        shard = self._shard()
        shard.append_rows([(3, "c"), (1, "a"), (2, "b")], xid=1)
        shard.seal()
        shard.rewrite_sorted([1, 2, 0], xid=9)
        assert shard.chain("a").read_all() == [1, 2, 3]
        assert shard.sorted_prefix == 3
        assert shard.insert_xids == [9, 9, 9]

    def test_unknown_column(self):
        with pytest.raises(StorageError):
            self._shard().chain("zzz")


class TestSliceStorageAndDisk:
    def test_shard_lifecycle(self):
        store = SliceStorage("s0", SimulatedDisk("d0"))
        shard = store.create_shard("t", [("a", INTEGER)])
        assert store.has_shard("t")
        assert store.shard("t") is shard
        with pytest.raises(StorageError):
            store.create_shard("t", [("a", INTEGER)])
        store.drop_shard("t")
        assert not store.has_shard("t")
        with pytest.raises(StorageError):
            store.shard("t")

    def test_disk_accounting(self):
        disk = SimulatedDisk("d", capacity_bytes=100)
        disk.record_write(60)
        assert disk.used_bytes == 60
        disk.record_read(10)
        assert disk.stats.bytes_read == 10
        assert disk.stats.write_ops == 1

    def test_disk_full(self):
        disk = SimulatedDisk("d", capacity_bytes=100)
        disk.record_write(90)
        with pytest.raises(DiskFailureError):
            disk.record_write(20)

    def test_disk_failure_blocks_io(self):
        disk = SimulatedDisk("d")
        disk.fail()
        with pytest.raises(DiskFailureError):
            disk.record_read(1)
        disk.repair()
        disk.record_read(1)  # works again
        assert disk.used_bytes == 0
