"""The fault-injection framework itself: plans, the injector, backoff.

The framework's contract is determinism — the same seeded plan over the
same call sequence fires the same faults at the same simulated times — so
most tests here run a scenario twice and compare timelines.
"""

import math

import pytest

from repro.cloud import CloudEnvironment
from repro.cloud.simclock import SimClock
from repro.errors import (
    DiskMediaError,
    NodeFailureError,
    S3TransientError,
    ServiceUnavailableError,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    with_backoff,
)
from repro.util.rng import DeterministicRng


class TestFaultSpec:
    def test_window_must_end_after_start(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.S3_OUTAGE, at_s=10.0, until_s=5.0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.S3_ERROR_WINDOW, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.S3_ERROR_WINDOW, rate=-0.1)

    def test_slow_factor_bound(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.S3_SLOW_WINDOW, slow_factor=0.5)

    def test_empty_target_matches_everything(self):
        spec = FaultSpec(FaultKind.S3_OUTAGE)
        assert spec.matches("us-east-1")
        assert spec.matches("anything")

    def test_window_is_half_open(self):
        spec = FaultSpec(FaultKind.S3_OUTAGE, at_s=10.0, until_s=20.0)
        assert not spec.active_at(9.999)
        assert spec.active_at(10.0)
        assert spec.active_at(19.999)
        assert not spec.active_at(20.0)


class TestFaultPlanBuilders:
    def test_builders_chain_and_accumulate(self):
        plan = (
            FaultPlan(seed=7)
            .s3_outage(at_s=0, until_s=60)
            .s3_errors(at_s=0, until_s=600, rate=0.2)
            .s3_slow(at_s=0, until_s=600, factor=4.0)
            .ec2_capacity_gap(at_s=100)
            .disk_failure(at_s=50, disk_id="disk-node-0-s0")
            .disk_media_errors(at_s=0, until_s=60, rate=0.1)
            .block_bitflip(at_s=30, block="#3")
            .node_crash(at_s=10, node_id="node-1")
        )
        kinds = [spec.kind for spec in plan.faults]
        assert kinds == [
            FaultKind.S3_OUTAGE,
            FaultKind.S3_ERROR_WINDOW,
            FaultKind.S3_SLOW_WINDOW,
            FaultKind.EC2_CAPACITY_WINDOW,
            FaultKind.DISK_FAIL,
            FaultKind.DISK_MEDIA_WINDOW,
            FaultKind.BLOCK_BITFLIP,
            FaultKind.NODE_CRASH,
        ]


def _injector(plan: FaultPlan, clock: SimClock | None = None) -> FaultInjector:
    return FaultInjector(plan, clock or SimClock())


class TestInjectorWindows:
    def test_s3_outage_only_inside_window(self):
        clock = SimClock()
        injector = _injector(
            FaultPlan().s3_outage(at_s=10.0, until_s=20.0), clock
        )
        injector.s3_request("us-east-1")  # before: fine
        clock.advance(15.0)
        with pytest.raises(ServiceUnavailableError):
            injector.s3_request("us-east-1")
        clock.advance(10.0)
        injector.s3_request("us-east-1")  # after: fine again

    def test_s3_error_rate_one_always_fires(self):
        injector = _injector(FaultPlan().s3_errors(0.0, math.inf, rate=1.0))
        with pytest.raises(S3TransientError):
            injector.s3_request("us-east-1", "get_object")

    def test_s3_error_rate_zero_never_fires(self):
        injector = _injector(FaultPlan().s3_errors(0.0, math.inf, rate=0.0))
        for _ in range(100):
            injector.s3_request("us-east-1")

    def test_s3_errors_target_region_scoped(self):
        injector = _injector(
            FaultPlan().s3_errors(0.0, math.inf, rate=1.0, region="us-west-2")
        )
        injector.s3_request("us-east-1")  # other region unaffected
        with pytest.raises(S3TransientError):
            injector.s3_request("us-west-2")

    def test_slow_factors_multiply(self):
        injector = _injector(
            FaultPlan()
            .s3_slow(0.0, math.inf, factor=2.0)
            .s3_slow(0.0, math.inf, factor=3.0)
        )
        assert injector.s3_slow_factor("us-east-1") == pytest.approx(6.0)
        assert _injector(FaultPlan()).s3_slow_factor("r") == 1.0

    def test_disk_media_errors_scoped_to_disk(self):
        injector = _injector(
            FaultPlan().disk_media_errors(0.0, math.inf, rate=1.0, disk_id="d1")
        )
        injector.disk_io("d2", "read")
        with pytest.raises(DiskMediaError) as info:
            injector.disk_io("d1", "read")
        assert info.value.disk_id == "d1"

    def test_ec2_capacity_window(self):
        clock = SimClock()
        injector = _injector(FaultPlan().ec2_capacity_gap(at_s=5.0, until_s=10.0), clock)
        assert not injector.ec2_capacity_interrupted()
        clock.advance(7.0)
        assert injector.ec2_capacity_interrupted()
        clock.advance(5.0)
        assert not injector.ec2_capacity_interrupted()


class TestInjectorPointFaults:
    def test_node_crash_fires_once_at_its_time(self):
        clock = SimClock()
        injector = _injector(FaultPlan().node_crash(5.0, "node-1"), clock)
        injector.check_node("node-1")  # not armed yet
        clock.advance(5.0)
        injector.check_node("node-0")  # other node unaffected
        with pytest.raises(NodeFailureError) as info:
            injector.check_node("node-1")
        assert info.value.node_id == "node-1"
        injector.check_node("node-1")  # consumed: does not re-fire
        assert injector.crashed_nodes() == ["node-1"]
        injector.mark_node_recovered("node-1")
        assert injector.crashed_nodes() == []

    def test_fire_once_is_single_shot(self):
        injector = _injector(FaultPlan())
        spec = FaultSpec(FaultKind.BLOCK_BITFLIP, target="b1")
        assert injector.fire_once(spec, "hit")
        assert not injector.fire_once(spec, "hit")
        assert len(injector.log) == 1

    def test_dynamic_add_and_cancel(self):
        injector = _injector(FaultPlan())
        spec = injector.add(FaultSpec(FaultKind.S3_OUTAGE))
        with pytest.raises(ServiceUnavailableError):
            injector.s3_request("r")
        injector.cancel(spec)
        injector.s3_request("r")


class TestDeterminism:
    def test_same_plan_same_call_sequence_same_timeline(self):
        def run() -> list[tuple]:
            clock = SimClock()
            injector = FaultInjector(
                FaultPlan(seed=42).s3_errors(0.0, math.inf, rate=0.5), clock
            )
            for _ in range(50):
                clock.advance(1.0)
                try:
                    injector.s3_request("us-east-1", "get_object")
                except S3TransientError:
                    pass
            return injector.timeline()

        first, second = run(), run()
        assert first == second
        assert first  # rate 0.5 over 50 draws certainly fired at least once

    def test_different_seeds_diverge(self):
        def run(seed: int) -> list[tuple]:
            injector = FaultInjector(
                FaultPlan(seed=seed).s3_errors(0.0, math.inf, rate=0.5),
                SimClock(),
            )
            fired = []
            for i in range(50):
                try:
                    injector.s3_request("r")
                except S3TransientError:
                    fired.append(i)
            return fired

        assert run(1) != run(2)


class TestRetryPolicy:
    def test_exponential_delays(self):
        policy = RetryPolicy(
            base_delay_s=1.0, factor=2.0, max_delay_s=30.0, jitter_fraction=0.0
        )
        assert [policy.delay_for(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_delay_capped(self):
        policy = RetryPolicy(
            base_delay_s=10.0, factor=10.0, max_delay_s=25.0, jitter_fraction=0.0
        )
        assert policy.delay_for(3) == 25.0

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay_s=10.0, factor=1.0, jitter_fraction=0.5)
        delays = [policy.delay_for(1, DeterministicRng("j")) for _ in range(5)]
        repeat = [policy.delay_for(1, DeterministicRng("j")) for _ in range(5)]
        assert delays == repeat
        assert all(10.0 <= d <= 15.0 for d in delays)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)


class TestWithBackoff:
    def test_retries_transient_then_succeeds_accounting_time(self):
        clock = SimClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise S3TransientError("r", "503")
            return "ok"

        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, jitter_fraction=0.0)
        assert with_backoff(flaky, clock=clock, policy=policy) == "ok"
        assert calls["n"] == 3
        assert clock.now == pytest.approx(1.0 + 2.0)  # two backoffs

    def test_exhaustion_reraises_original_error(self):
        clock = SimClock()

        def always_fails():
            raise S3TransientError("r", "503")

        policy = RetryPolicy(
            max_attempts=3, base_delay_s=1.0, factor=1.0, jitter_fraction=0.0
        )
        with pytest.raises(S3TransientError):
            with_backoff(always_fails, clock=clock, policy=policy)
        assert clock.now == pytest.approx(2.0)  # attempts-1 backoffs

    def test_non_retryable_error_passes_straight_through(self):
        clock = SimClock()

        def outage():
            raise ServiceUnavailableError("down")

        with pytest.raises(ServiceUnavailableError):
            with_backoff(
                outage, clock=clock, retry_on=(S3TransientError,)
            )
        assert clock.now == 0.0  # no backoff was attempted

    def test_on_retry_callback_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise S3TransientError("r", "x")
            return 1

        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, jitter_fraction=0.0)
        with_backoff(
            flaky,
            clock=SimClock(),
            policy=policy,
            on_retry=lambda a, e, d: seen.append((a, d)),
        )
        assert seen == [(1, 1.0), (2, 2.0)]


class TestS3Integration:
    def test_outage_window_blocks_and_releases_requests(self):
        env = CloudEnvironment(seed=3)
        env.s3.create_bucket("b")
        env.s3.start_outage()
        with pytest.raises(ServiceUnavailableError):
            env.s3.put_object("b", "k", b"v")
        env.s3.end_outage()
        env.s3.put_object("b", "k", b"v")
        assert env.s3.get_object("b", "k").data == b"v"

    def test_environment_fault_plan_errors_fire_per_request(self):
        plan = FaultPlan(seed=9).s3_errors(0.0, math.inf, rate=1.0)
        env = CloudEnvironment(seed=9, fault_plan=plan)
        with pytest.raises(S3TransientError):
            env.s3.create_bucket("b")

    def test_slow_window_stretches_transfer_time(self):
        plan = FaultPlan(seed=1).s3_slow(0.0, math.inf, factor=4.0)
        env = CloudEnvironment(seed=1, fault_plan=plan)
        baseline = CloudEnvironment(seed=1)
        assert env.s3.transfer_time(1 << 20) == pytest.approx(
            4.0 * baseline.s3.transfer_time(1 << 20)
        )
