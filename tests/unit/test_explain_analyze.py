"""EXPLAIN ANALYZE: execute the query, annotate the plan with actuals."""

import pytest

from repro import Cluster
from repro.errors import AnalysisError


@pytest.fixture
def session():
    cluster = Cluster(node_count=2, slices_per_node=2)
    s = cluster.connect()
    s.execute("CREATE TABLE t (a INT, b INT)")
    s.execute(
        "INSERT INTO t VALUES " + ", ".join(f"({i}, {i * 2})" for i in range(50))
    )
    return s


class TestExplainAnalyze:
    def test_plain_explain_has_no_actuals(self, session):
        lines = [r[0] for r in session.execute("EXPLAIN SELECT a FROM t").rows]
        assert any(line.lstrip().startswith("XN ") for line in lines)
        assert not any("actual" in line for line in lines)

    def test_every_plan_step_gets_actuals(self, session):
        result = session.execute(
            "EXPLAIN ANALYZE SELECT a, sum(b) FROM t WHERE a < 30 GROUP BY a"
        )
        lines = [r[0] for r in result.rows]
        plan_lines = [l for l in lines if l.lstrip().startswith("XN ")]
        assert len(plan_lines) >= 2
        for line in plan_lines:
            assert "(actual rows=" in line or "(never executed)" in line

    def test_scan_actual_rows_match_table(self, session):
        result = session.execute("EXPLAIN ANALYZE SELECT a FROM t")
        scan_lines = [
            r[0] for r in result.rows if "Seq Scan" in r[0] and "actual" in r[0]
        ]
        assert len(scan_lines) == 1
        # Scan reports rows emitted by storage: all 50, pre-filter.
        assert "actual rows=50" in scan_lines[0]

    def test_filter_counts_post_predicate_rows(self, session):
        result = session.execute(
            "EXPLAIN ANALYZE SELECT a FROM t WHERE a < 10"
        )
        lines = [r[0] for r in result.rows]
        # The scan still reads all rows; the result has 10.
        assert any("actual rows=50" in l for l in lines if "Seq Scan" in l)
        assert any("(10 rows)" in l for l in lines if "Total runtime" in l)

    def test_runtime_trailer_present(self, session):
        result = session.execute("EXPLAIN ANALYZE SELECT count(*) FROM t")
        assert result.rows[-1][0].startswith("Total runtime: ")

    def test_analyze_rejects_non_select(self, session):
        with pytest.raises(AnalysisError):
            session.execute("EXPLAIN ANALYZE INSERT INTO t VALUES (999, 0)")
        # The rejected statement must not have executed.
        assert session.execute("SELECT count(*) FROM t WHERE a = 999").scalar() == 0

    def test_analyze_records_summary_rows(self, session):
        session.execute("EXPLAIN ANALYZE SELECT a FROM t WHERE a < 5")
        rows = session.execute(
            "SELECT operator, rows FROM svl_query_summary "
            "WHERE query = (SELECT max(query) FROM svl_query_summary)"
        ).rows
        assert any("Seq Scan" in op for op, _ in rows)
