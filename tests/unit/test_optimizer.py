"""Cost-based optimizer: DP join enumeration, the operator-selection
chain, the cardinality model, and the sort-merge join operator."""

import pytest

from repro import Cluster
from repro.plan import (
    Binder,
    JoinDecision,
    JoinDistribution,
    JoinSite,
    MergeJoinSelection,
    PhysicalHashJoin,
    PhysicalMergeJoin,
    PhysicalOperatorSelection,
    PhysicalPlanner,
    PhysicalScan,
    SideInfo,
    default_operator_selection,
    explain,
)
from repro.plan.optimizer import _movement_bytes
from repro.plan.physical import Partitioning
from repro.sql import ast
from repro.sql.parser import parse_statement

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


@pytest.fixture
def star():
    """Dimensions a/b (600 rows, 4-value grouping column) and fact c —
    joining a to b first explodes; fresh stats everywhere."""
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=256)
    s = cluster.connect()
    s.execute("SET enable_result_cache = off")
    s.execute("CREATE TABLE a (id int, g int) DISTKEY(id)")
    s.execute("CREATE TABLE b (id int, g int) DISTKEY(id)")
    s.execute("CREATE TABLE c (a_id int, b_id int, v int) DISTKEY(a_id)")
    s.execute(
        "INSERT INTO a VALUES "
        + ",".join(f"({i}, {i % 4})" for i in range(200))
    )
    s.execute(
        "INSERT INTO b VALUES "
        + ",".join(f"({i}, {i % 4})" for i in range(200))
    )
    s.execute(
        "INSERT INTO c VALUES "
        + ",".join(f"({i % 200}, {(i * 7) % 200}, {i})" for i in range(400))
    )
    s.execute("ANALYZE")
    return cluster, s


def _plan(cluster, sql, **planner_kwargs):
    binder = Binder(cluster.catalog)
    planner = PhysicalPlanner(
        cluster.catalog, cluster.slice_count, **planner_kwargs
    )
    stmt = parse_statement(sql)
    return planner.plan(binder.bind_select(stmt.query))


STAR_QUERY = (
    "SELECT count(*), sum(c.v) FROM a JOIN b ON a.g = b.g "
    "JOIN c ON c.a_id = a.id AND c.b_id = b.id"
)


class TestJoinEnumeration:
    def test_dp_flips_pathological_written_order(self, star):
        cluster, _ = star
        on = explain(_plan(cluster, STAR_QUERY, enable_cbo=True))
        off = explain(_plan(cluster, STAR_QUERY, enable_cbo=False))
        # Written order joins the exploding dimension pair first.
        assert "Hash Cond: (g = g)" in off
        assert "Hash Cond: (g = g)" not in on
        assert on != off

    def test_flipped_plan_results_identical(self, star):
        _, s = star
        baseline = None
        for executor in EXECUTORS:
            s.execute(f"SET executor = {executor}")
            s.execute("SET enable_cbo = off")
            off_rows = s.execute(STAR_QUERY).rows
            s.execute("SET enable_cbo = on")
            on_rows = s.execute(STAR_QUERY).rows
            assert on_rows == off_rows, executor
            if baseline is None:
                baseline = on_rows
            assert on_rows == baseline, executor

    def test_where_equalities_become_join_edges(self, star):
        """Cross-side WHERE equalities turn a written cross product into
        hash joins under the CBO."""
        cluster, s = star
        sql = (
            "SELECT count(*) FROM a, b, c "
            "WHERE c.a_id = a.id AND c.b_id = b.id"
        )
        on = explain(_plan(cluster, sql, enable_cbo=True))
        assert "Nested Loop" not in on
        assert on.count("Hash") >= 2
        s.execute("SET enable_cbo = on")
        with_cbo = s.execute(sql).rows
        s.execute("SET enable_cbo = off")
        assert s.execute(sql).rows == with_cbo

    def test_tie_keeps_written_order(self, star):
        """Cost-symmetric two-table joins plan identically with the CBO
        on and off — written order wins ties, so existing plan shapes
        (and EXPLAIN output) do not churn."""
        cluster, _ = star
        for sql in (
            "SELECT a.id, b.g FROM a JOIN b ON a.id = b.id",
            "SELECT count(*) FROM c JOIN a ON c.a_id = a.id WHERE a.g = 1",
        ):
            on = explain(_plan(cluster, sql, enable_cbo=True))
            off = explain(_plan(cluster, sql, enable_cbo=False))
            assert on == off, sql

    def test_region_cap_falls_back_to_written_order(self, star, monkeypatch):
        cluster, _ = star
        monkeypatch.setattr(PhysicalPlanner, "MAX_DP_LEAVES", 2)
        capped = explain(_plan(cluster, STAR_QUERY, enable_cbo=True))
        off = explain(_plan(cluster, STAR_QUERY, enable_cbo=False))
        assert capped == off

    def test_outer_joins_keep_written_order(self, star):
        cluster, _ = star
        sql = (
            "SELECT count(*) FROM a LEFT JOIN b ON a.id = b.id "
            "JOIN c ON c.a_id = a.id"
        )
        on = _plan(cluster, sql, enable_cbo=True)
        off = _plan(cluster, sql, enable_cbo=False)
        assert explain(on) == explain(off)


class TestCardinalityModel:
    def test_join_estimate_uses_ndv(self, star):
        cluster, _ = star
        plan = _plan(
            cluster,
            "SELECT a.id FROM c JOIN a ON c.a_id = a.id",
            enable_cbo=False,
        )
        join = _find(plan, PhysicalHashJoin)
        # |c| * |a| / max(ndv) = 400 * 200 / 200 = 400 (HLL NDV is
        # approximate; allow a few percent either way).
        assert join.est_rows == pytest.approx(400, rel=0.1)

    def test_stale_stats_fall_back_to_upper_bound(self, star):
        cluster, s = star
        # Mutations mark stats stale on both sides; with no usable NDV
        # the join estimate degrades to the upper bound max(|L|, |R|).
        s.execute("INSERT INTO a VALUES (9999, 9)")
        s.execute("INSERT INTO c VALUES (9999, 9999, 0)")
        plan = _plan(
            cluster,
            "SELECT a.id FROM c JOIN a ON c.a_id = a.id",
            enable_cbo=False,
        )
        join = _find(plan, PhysicalHashJoin)
        assert join.est_rows == pytest.approx(
            max(plan_scan_rows(plan, "c"), plan_scan_rows(plan, "a"))
        )

    def test_range_predicate_uses_min_max(self, star):
        cluster, _ = star
        plan = _plan(
            cluster, "SELECT id FROM a WHERE id < 50", enable_cbo=False
        )
        scan = _find(plan, PhysicalScan)
        # ids span [0, 199]; < 50 covers about a quarter.
        assert scan.est_rows == pytest.approx(200 * 50 / 199, rel=0.1)

    def test_equality_outside_min_max_estimates_empty(self, star):
        cluster, _ = star
        plan = _plan(
            cluster, "SELECT id FROM a WHERE g = 1234", enable_cbo=False
        )
        scan = _find(plan, PhysicalScan)
        assert scan.est_rows == 1.0  # floor; stats say zero

    def test_group_by_estimate_uses_ndv_product(self, star):
        cluster, _ = star
        from repro.plan import PhysicalAggregate

        plan = _plan(
            cluster, "SELECT g, count(*) FROM a GROUP BY g", enable_cbo=False
        )
        agg = _find(plan, PhysicalAggregate)
        assert agg.est_rows == pytest.approx(4, abs=1)

    def test_group_by_stale_falls_back_to_tenth(self, star):
        cluster, s = star
        from repro.plan import PhysicalAggregate

        s.execute("INSERT INTO a VALUES (9999, 9)")
        plan = _plan(
            cluster, "SELECT g, count(*) FROM a GROUP BY g", enable_cbo=False
        )
        agg = _find(plan, PhysicalAggregate)
        child = agg.child
        assert agg.est_rows == pytest.approx(child.est_rows * 0.1)


class TestOperatorSelection:
    def _site(self, **overrides):
        defaults = dict(
            kind=ast.JoinKind.INNER,
            equi_keys=[(0, 0)],
            left=SideInfo(
                est_rows=1000, row_width=8, partitioning=Partitioning("rr")
            ),
            right=SideInfo(
                est_rows=10, row_width=8, partitioning=Partitioning("rr")
            ),
            slices=4,
        )
        defaults.update(overrides)
        return JoinSite(**defaults)

    def test_small_inner_broadcasts(self):
        decision = default_operator_selection().select_join_operators(
            self._site()
        )
        assert decision.build_right is True
        assert decision.strategy is JoinDistribution.DS_BCAST_INNER

    def test_aligned_keys_are_colocated(self):
        site = self._site(
            left=SideInfo(
                est_rows=1000,
                row_width=8,
                partitioning=Partitioning("hash", (0,)),
            ),
            right=SideInfo(
                est_rows=10,
                row_width=8,
                partitioning=Partitioning("hash", (0,)),
            ),
        )
        decision = default_operator_selection().select_join_operators(site)
        assert decision.strategy is JoinDistribution.DS_DIST_NONE

    def test_large_build_redistributes_both(self):
        # Comparable side sizes: broadcasting the 90k-row build across
        # 4 slices (3x its bytes) loses to moving each side once.
        site = self._site(
            left=SideInfo(
                est_rows=100_000, row_width=8, partitioning=Partitioning("rr")
            ),
            right=SideInfo(
                est_rows=90_000, row_width=8, partitioning=Partitioning("rr")
            ),
        )
        decision = default_operator_selection().select_join_operators(site)
        assert decision.build_right is True
        assert decision.strategy is JoinDistribution.DS_DIST_BOTH

    def test_chained_stage_overrides_default(self):
        class ForceBroadcast(PhysicalOperatorSelection):
            def _apply_selection(self, decision, site):
                from dataclasses import replace

                return replace(
                    decision, strategy=JoinDistribution.DS_BCAST_INNER
                )

        chain = default_operator_selection().chain_with(ForceBroadcast())
        site = self._site(
            left=SideInfo(
                est_rows=1000,
                row_width=8,
                partitioning=Partitioning("hash", (0,)),
            ),
            right=SideInfo(
                est_rows=10,
                row_width=8,
                partitioning=Partitioning("hash", (0,)),
            ),
        )
        decision = chain.select_join_operators(site)
        assert decision.strategy is JoinDistribution.DS_BCAST_INNER

    def test_merge_selected_only_when_sorted_and_colocated(self):
        sorted_side = lambda: SideInfo(  # noqa: E731
            est_rows=100,
            row_width=8,
            partitioning=Partitioning("hash", (0,)),
            sorted_on=(0,),
        )
        site = self._site(left=sorted_side(), right=sorted_side())
        decision = default_operator_selection().select_join_operators(site)
        assert decision.algorithm == "merge"
        # One unsorted input keeps the hash join.
        unsorted = sorted_side()
        unsorted.sorted_on = ()
        site = self._site(left=sorted_side(), right=unsorted)
        decision = default_operator_selection().select_join_operators(site)
        assert decision.algorithm == "hash"
        # Merge never applies when rows still need to move.
        moving = self._site(left=sorted_side(), right=sorted_side())
        moving.left.partitioning = Partitioning("rr")
        decision = default_operator_selection().select_join_operators(moving)
        assert decision.algorithm == "hash"

    def test_movement_cost_units(self):
        left = SideInfo(
            est_rows=100, row_width=10, partitioning=Partitioning("rr")
        )
        right = SideInfo(
            est_rows=10, row_width=10, partitioning=Partitioning("rr")
        )
        site = JoinSite(
            kind=ast.JoinKind.INNER,
            equi_keys=[(0, 0)],
            left=left,
            right=right,
            slices=4,
        )

        def cost(strategy, build_right=True):
            return _movement_bytes(
                JoinDecision(strategy=strategy, build_right=build_right), site
            )

        assert cost(JoinDistribution.DS_DIST_NONE) == 0
        assert cost(JoinDistribution.DS_BCAST_INNER) == 100 * 3  # build x (slices-1)
        assert cost(JoinDistribution.DS_DIST_INNER) == 100
        assert cost(JoinDistribution.DS_DIST_OUTER) == 1000
        assert cost(JoinDistribution.DS_DIST_BOTH) == 1100


class TestMergeJoin:
    @pytest.fixture
    def sorted_pair(self):
        cluster = Cluster(node_count=2, slices_per_node=2)
        s = cluster.connect()
        s.execute("SET enable_result_cache = off")
        s.execute("CREATE TABLE l (k int, v int) DISTKEY(k) SORTKEY(k)")
        s.execute("CREATE TABLE r (k int, w int) DISTKEY(k) SORTKEY(k)")
        s.execute(
            "INSERT INTO l VALUES "
            + ",".join(f"({i % 40}, {i})" for i in range(120))
            + ", (NULL, -1)"
        )
        s.execute(
            "INSERT INTO r VALUES "
            + ",".join(f"({i}, {i * 10})" for i in range(0, 40, 2))
            + ", (NULL, -2)"
        )
        s.execute("ANALYZE")
        return cluster, s

    def test_sorted_colocated_join_uses_merge(self, sorted_pair):
        cluster, _ = sorted_pair
        plan = _plan(
            cluster,
            "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k",
            enable_cbo=True,
        )
        join = _find(plan, PhysicalMergeJoin)
        assert join is not None
        assert join.strategy is JoinDistribution.DS_DIST_NONE
        assert "Merge" in join.label()

    def test_merge_join_matches_hash_join_on_all_executors(self, sorted_pair):
        _, s = sorted_pair
        sql = (
            "SELECT l.k, l.v, r.w FROM l JOIN r ON l.k = r.k "
            "WHERE l.v % 3 = 0"
        )
        s.execute("SET enable_cbo = off")  # hash join reference
        reference = sorted(s.execute(sql).rows)
        for executor in EXECUTORS:
            s.execute(f"SET executor = {executor}")
            s.execute("SET enable_cbo = on")
            assert sorted(s.execute(sql).rows) == reference, executor

    def test_merge_join_residual_and_aggregate(self, sorted_pair):
        _, s = sorted_pair
        sql = (
            "SELECT count(*), sum(l.v) FROM l JOIN r "
            "ON l.k = r.k AND l.v < 100"
        )
        s.execute("SET enable_cbo = on")
        with_merge = s.execute(sql).rows
        s.execute("SET enable_cbo = off")
        assert s.execute(sql).rows == with_merge


def _find(node, kind):
    if isinstance(node, kind):
        return node
    for child in node.children:
        found = _find(child, kind)
        if found is not None:
            return found
    return None


def plan_scan_rows(plan, table_name):
    rows = []

    def walk(node):
        if isinstance(node, PhysicalScan) and node.table.name == table_name:
            rows.append(node.est_rows)
        for child in node.children:
            walk(child)

    walk(plan)
    return rows[0]
