"""Unit coverage for the memory governor and spill structures
(:mod:`repro.exec.spill`) and the accounted temp files backing them
(:mod:`repro.storage.spillfile`)."""

import pytest

from repro.errors import SpillCapacityError
from repro.exec.spill import (
    LogSpillFile,
    MemoryBudget,
    SpillLog,
    SpillableAggregateStates,
    SpillableHashTable,
    SpillableSorter,
    partition_of,
    row_nbytes,
    value_nbytes,
)
from repro.faults import FaultInjector, FaultPlan
from repro.storage.disk import SimulatedDisk
from repro.storage.spillfile import SpillManager


def _factory(disk=None, manager=None, injector=None):
    manager = manager or SpillManager(injector=injector)
    disk = disk or SimulatedDisk("unit-disk")
    return manager.file_factory(disk), manager, disk


class _SumAgg:
    """Minimal aggregate with the merge() contract finish() relies on."""

    @staticmethod
    def merge(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a + b


class TestMemoryBudget:
    def test_charge_release_and_peak(self):
        budget = MemoryBudget(100)
        budget.charge(60)
        budget.charge(60)
        assert budget.over_budget
        assert budget.peak_bytes == 120
        budget.release(80)
        assert budget.used_bytes == 40
        assert not budget.over_budget
        budget.release(1000)  # floors at zero
        assert budget.used_bytes == 0
        assert budget.peak_bytes == 120

    def test_unlimited_budget_never_over(self):
        budget = MemoryBudget(None)
        budget.charge(10**9)
        assert not budget.over_budget
        assert budget.peak_bytes == 10**9

    def test_size_estimates_are_deterministic(self):
        assert value_nbytes(None) == 8
        assert value_nbytes(True) == 8
        assert value_nbytes(7) == 28
        assert value_nbytes(1.5) == 24
        assert value_nbytes("ab") == 51
        assert value_nbytes((1, "a")) == 24 + 28 + 50
        assert row_nbytes((1, 2)) == 24 + 56
        # Stable hash partitioning: same key, same partition, in range.
        assert partition_of(("k", 1), 8) == partition_of(("k", 1), 8)
        assert 0 <= partition_of(("k", 1), 8) < 8


class TestSpillableHashTable:
    def _reference(self, pairs):
        table = {}
        for key, row in pairs:
            table.setdefault(key, []).append(row)
        return table

    def _pairs(self, n=300):
        return [((i % 23,), (i, i * 3)) for i in range(n)]

    def test_in_memory_when_under_budget(self):
        factory, manager, _ = _factory()
        table = SpillableHashTable(MemoryBudget(None), factory, "t")
        pairs = self._pairs(50)
        for key, row in pairs:
            table.insert(key, row)
        assert table.build() == self._reference(pairs)
        assert not table.spilled
        assert manager.bytes_written == 0

    def test_spilled_build_matches_in_memory_exactly(self):
        factory, manager, disk = _factory()
        budget = MemoryBudget(1024)
        table = SpillableHashTable(budget, factory, "t")
        pairs = self._pairs()
        for key, row in pairs:
            table.insert(key, row)
        built = table.build()
        reference = self._reference(pairs)
        # Probe output depends only on lookups and per-key row-list
        # order, both preserved (key *iteration* order is partition
        # order — why FULL joins, which walk the table, never spill).
        assert built == reference
        assert table.spilled
        assert table.partitions_spilled > 0
        assert table.bytes_written > 0
        assert table.bytes_read == table.bytes_written
        assert disk.used_bytes == manager.live_bytes  # still accounted
        table.done()
        manager.release_all()
        assert disk.used_bytes == 0

    def test_budget_bounded_during_build(self):
        factory, _, _ = _factory()
        budget = MemoryBudget(1024)
        table = SpillableHashTable(budget, factory, "t")
        pairs = self._pairs(500)
        total = sum(row_nbytes(k) + row_nbytes(r) for k, r in pairs)
        for key, row in pairs:
            table.insert(key, row)
        table.build()
        table.done()
        # Grace-hash profile: the peak is one resident partition, a
        # fraction of the full working set an in-memory build holds.
        assert budget.peak_bytes < total // 3
        assert budget.used_bytes == 0


class TestSpillableAggregateStates:
    def _run(self, limit):
        factory, manager, _ = _factory()
        states = SpillableAggregateStates(
            MemoryBudget(limit), factory, "agg", [_SumAgg()]
        )
        for i in range(400):
            key = (i % 31,)
            entry = states.get(key)
            if entry is None:
                entry = [0]
                states[key] = entry
            entry[0] += i
        finished = states.finish()
        manager.release_all()
        return states, finished

    def _reference(self):
        out = {}
        for i in range(400):
            out.setdefault((i % 31,), [0])[0] += i
        return out

    def test_spilled_finish_matches_unbounded(self):
        states, finished = self._run(limit=512)
        reference = self._reference()
        assert states.spilled
        assert finished == reference
        # First-seen group order survives the flush/merge round trip.
        assert list(finished) == list(reference)

    def test_unspilled_finish_returns_self(self):
        states, finished = self._run(limit=None)
        assert finished is states
        assert not states.spilled

    def test_post_flush_mutation_updates_spilled_generation(self):
        """States spill by reference: accumulating into an entry the
        caller still holds after a flush updates the spilled bytes."""
        factory, manager, _ = _factory()
        states = SpillableAggregateStates(
            MemoryBudget(60), factory, "agg", [_SumAgg()]
        )
        entry = [1]
        states[("k0",)] = entry
        i = 1
        while not states.spilled:  # over budget once a generation fills
            states[(f"k{i}",)] = [10]
            i += 1
        assert not states  # map cleared by the flush
        entry[0] += 5  # caller-side accumulation after the flush
        finished = states.finish()
        manager.release_all()
        assert finished[("k0",)] == [6]
        assert finished[(f"k{i - 1}",)] == [10]
        # First-seen order survives the round trip.
        assert list(finished) == [(f"k{j}",) for j in range(i)]


class TestSpillableSorter:
    def test_external_merge_matches_in_memory_stable_sort(self):
        factory, manager, _ = _factory()
        rows = [(i * 7 % 50, i) for i in range(400)]
        key = lambda row: row[0]
        sorter = SpillableSorter(MemoryBudget(1024), factory, "sort")
        merged = sorter.sort(rows, lambda r: sorted(r, key=key), key)
        assert merged == sorted(rows, key=key)  # sorted() is stable
        assert sorter.spilled
        assert sorter.partitions_spilled > 1  # real multi-run merge
        manager.release_all()

    def test_under_budget_sorts_in_memory(self):
        factory, manager, _ = _factory()
        rows = [(3, "a"), (1, "b"), (2, "c")]
        sorter = SpillableSorter(MemoryBudget(None), factory, "sort")
        out = sorter.sort(rows, lambda r: sorted(r), lambda row: row)
        assert out == sorted(rows)
        assert not sorter.spilled
        assert manager.bytes_written == 0


class TestSpillFileAccounting:
    def test_used_bytes_include_live_temp_space(self):
        factory, manager, disk = _factory()
        spill_file = factory("a")
        spill_file.write([(1,)], 100)
        spill_file.write([(2,)], 50)
        assert disk.used_bytes == 150
        assert manager.live_bytes == 150
        assert spill_file.read() == [(1,), (2,)]
        spill_file.release()
        spill_file.release()  # idempotent
        assert disk.used_bytes == 0
        assert manager.live_bytes == 0

    def test_capacity_exhaustion_raises_typed_error(self):
        disk = SimulatedDisk("small", capacity_bytes=120)
        factory, manager, _ = _factory(disk=disk)
        spill_file = factory("a")
        spill_file.write([(1,)], 100)
        with pytest.raises(SpillCapacityError):
            spill_file.write([(2,)], 100)
        manager.release_all()
        assert disk.used_bytes == 0

    def test_disk_full_window_raises_typed_error(self):
        injector = FaultInjector(FaultPlan(seed=9).add_disk_full_window())
        factory, manager, disk = _factory(injector=injector)
        with pytest.raises(SpillCapacityError, match="disk_full"):
            factory("a").write([(1,)], 10)
        assert disk.used_bytes == 0
        assert any(e.kind == "disk_full" for e in injector.log)

    def test_media_errors_retried_with_backoff(self):
        injector = FaultInjector(
            FaultPlan(seed=11).disk_media_errors(0.0, 1e9, rate=0.3)
        )
        disk = SimulatedDisk("flaky")
        disk.attach_injector(injector)
        factory, manager, _ = _factory(disk=disk, injector=injector)
        spill_file = factory("a")
        for _ in range(10):  # enough draws to hit the 30% rate
            spill_file.write([(1,)], 10)
            spill_file.read()
        retries = [e for e in injector.log if e.kind == "recovery:spill_retry"]
        assert retries  # at least one media hit was absorbed by retry
        manager.release_all()
        assert disk.used_bytes == 0

    def test_replay_applies_worker_ops_with_accounting(self):
        manager = SpillManager()
        disk = SimulatedDisk("replay-disk")
        manager.replay(
            disk, [("write", 100), ("write", 40), ("read", 140), ("delete", 40)]
        )
        assert disk.used_bytes == 100
        assert manager.bytes_written == 140
        assert manager.bytes_read == 140
        assert manager.live_bytes == 100  # outstanding, reclaimable
        manager.release_all()
        assert disk.used_bytes == 0


class TestSpillLog:
    def test_ops_logged_in_order_and_rows_stay_local(self):
        log = SpillLog()
        factory = log.file_factory()
        f = factory("p0")
        assert isinstance(f, LogSpillFile)
        f.write([(1,), (2,)], 64)
        f.write([(3,)], 32)
        assert f.read() == [(1,), (2,), (3,)]
        log.release_all()
        assert log.ops == [
            ("write", 64),
            ("write", 32),
            ("read", 96),
            ("delete", 96),
        ]
        log.release_all()  # idempotent: bytes already zeroed
        assert log.ops[-1] == ("delete", 96)
