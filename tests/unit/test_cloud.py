"""Simulated cloud substrate: clock, S3, EC2, SWF, CloudWatch, SNS, KMS."""

import pytest

from repro.cloud import (
    CloudEnvironment,
    SimClock,
    SimCloudWatch,
    SimEC2,
    SimKMS,
    SimS3,
    SimWorkflowService,
    Workflow,
)
from repro.cloud.kms import xor_cipher
from repro.errors import (
    InsufficientCapacityError,
    KmsError,
    NoSuchBucketError,
    NoSuchKeyError,
    ServiceUnavailableError,
    WorkflowError,
)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(10)
        assert clock.now == 10

    def test_backwards_rejected(self):
        clock = SimClock()
        clock.advance(5)
        with pytest.raises(ValueError):
            clock.run_until(1)

    def test_scheduled_events_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5, lambda: fired.append("b"))
        clock.schedule(1, lambda: fired.append("a"))
        clock.advance(10)
        assert fired == ["a", "b"]

    def test_cancel(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1, lambda: fired.append(1))
        handle.cancel()
        clock.advance(5)
        assert fired == []

    def test_repeating(self):
        clock = SimClock()
        fired = []
        series = clock.schedule_repeating(10, lambda: fired.append(clock.now))
        clock.advance(35)
        assert fired == [10, 20, 30]
        series.cancel()
        clock.advance(100)
        assert len(fired) == 3

    def test_events_scheduled_during_events(self):
        clock = SimClock()
        fired = []

        def first():
            clock.schedule(1, lambda: fired.append("second"))

        clock.schedule(1, first)
        clock.advance(5)
        assert fired == ["second"]


class TestSimS3:
    def test_put_get_roundtrip(self):
        s3 = SimS3()
        s3.create_bucket("b")
        s3.put_object("b", "k", b"hello")
        assert s3.get_object("b", "k").data == b"hello"

    def test_missing_key_and_bucket(self):
        s3 = SimS3()
        s3.create_bucket("b")
        with pytest.raises(NoSuchKeyError):
            s3.get_object("b", "nope")
        with pytest.raises(NoSuchBucketError):
            s3.get_object("nope", "k")

    def test_list_prefix(self):
        s3 = SimS3()
        s3.create_bucket("b")
        s3.put_object("b", "a/1", b"")
        s3.put_object("b", "a/2", b"")
        s3.put_object("b", "c/1", b"")
        assert s3.list_objects("b", "a/") == ["a/1", "a/2"]

    def test_transfer_time_scales_with_size(self):
        s3 = SimS3()
        assert s3.transfer_time(10 ** 9) > s3.transfer_time(10 ** 6)

    def test_outage(self):
        s3 = SimS3()
        s3.create_bucket("b")
        s3.start_outage()
        with pytest.raises(ServiceUnavailableError):
            s3.put_object("b", "k", b"")
        s3.end_outage()
        s3.put_object("b", "k", b"")

    def test_replication(self):
        a, b = SimS3("us-east-1"), SimS3("us-west-2")
        a.create_bucket("b")
        a.put_object("b", "k", b"data")
        copied = a.replicate_to(b, "b")
        assert copied == 1
        assert b.get_object("b", "k").data == b"data"

    def test_accounting(self):
        s3 = SimS3()
        s3.create_bucket("b")
        s3.put_object("b", "k", b"12345")
        s3.get_object("b", "k")
        assert s3.bytes_in == 5
        assert s3.bytes_out == 5


class TestSimEC2:
    def test_warm_pool_faster_than_cold(self):
        ec2 = SimEC2()
        ec2.preconfigure("dw2.large", 2)
        _, warm = ec2.provision("dw2.large", 2)
        _, cold = ec2.provision("dw2.large", 2)
        assert warm < cold

    def test_warm_pool_depletes(self):
        ec2 = SimEC2()
        ec2.preconfigure("dw2.large", 3)
        instances, _ = ec2.provision("dw2.large", 2)
        assert all(i.from_warm_pool for i in instances)
        assert ec2.warm_pool_size("dw2.large") == 1

    def test_capacity_interruption_blocks_cold_only(self):
        ec2 = SimEC2()
        ec2.preconfigure("dw2.large", 1)
        ec2.start_capacity_interruption()
        instances, _ = ec2.provision("dw2.large", 1)  # warm claim works
        assert instances[0].from_warm_pool
        with pytest.raises(InsufficientCapacityError):
            ec2.provision("dw2.large", 1)
        ec2.end_capacity_interruption()
        ec2.provision("dw2.large", 1)

    def test_parallel_boot_duration_is_max(self):
        ec2 = SimEC2()
        _, one = ec2.provision("dw2.large", 1)
        _, many = ec2.provision("dw2.large", 16)
        assert many < one * 4  # parallel, not serial


class TestWorkflows:
    def test_steps_advance_clock(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)
        wf = Workflow("w").step("a", lambda: 10.0).step("b", lambda: 5.0)
        execution = swf.run(wf)
        assert execution.succeeded
        assert clock.now == 15.0
        assert execution.duration == 15.0

    def test_retries_then_success(self):
        clock = SimClock()
        swf = SimWorkflowService(clock)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return 1.0

        wf = Workflow("w").step("flaky", flaky, max_attempts=3, retry_delay_s=2.0)
        execution = swf.run(wf)
        assert execution.succeeded
        assert execution.results[0].attempts == 3
        assert clock.now == 2.0 * 2 + 1.0  # two retry delays + final step

    def test_exhausted_retries_fail(self):
        swf = SimWorkflowService(SimClock())

        def always_fails():
            raise RuntimeError("permanent")

        wf = Workflow("w").step("bad", always_fails, max_attempts=2, retry_delay_s=1)
        with pytest.raises(WorkflowError):
            swf.run(wf)
        assert len(swf.history) == 1
        assert not swf.history[0].succeeded


class TestKms:
    def test_data_key_roundtrip(self):
        kms = SimKMS()
        master = kms.create_master_key()
        plaintext, wrapped = kms.generate_data_key(master)
        assert kms.unwrap(wrapped) == plaintext

    def test_xor_cipher_is_involution(self):
        key = bytes(range(32))
        data = b"the quick brown fox"
        assert xor_cipher(key, xor_cipher(key, data)) == data

    def test_rotation_keeps_old_wraps_usable(self):
        kms = SimKMS()
        master = kms.create_master_key()
        plaintext, wrapped = kms.generate_data_key(master)
        kms.rotate_master_key(master)
        assert kms.unwrap(wrapped) == plaintext  # old version retained
        rewrapped = kms.rewrap(wrapped)
        assert rewrapped.master_version > wrapped.master_version
        assert kms.unwrap(rewrapped) == plaintext

    def test_revocation_is_repudiation(self):
        kms = SimKMS()
        master = kms.create_master_key()
        _, wrapped = kms.generate_data_key(master)
        kms.revoke_master_key(master)
        with pytest.raises(KmsError):
            kms.unwrap(wrapped)
        with pytest.raises(KmsError):
            kms.generate_data_key(master)

    def test_duplicate_alias_rejected(self):
        kms = SimKMS()
        kms.create_master_key("alias")
        with pytest.raises(KmsError):
            kms.create_master_key("alias")


class TestEnvironment:
    def test_shared_clock(self, env: CloudEnvironment):
        env.clock.advance(100)
        assert env.s3._clock.now == 100

    def test_remote_region(self, env: CloudEnvironment):
        remote = env.add_remote_region("us-west-2")
        assert remote.clock is env.clock
        assert env.remote_region("us-west-2") is remote
        with pytest.raises(ValueError):
            env.add_remote_region(env.region)

    def test_cloudwatch_window_average(self, env: CloudEnvironment):
        env.cloudwatch.put_metric("m", 10)
        env.clock.advance(100)
        env.cloudwatch.put_metric("m", 20)
        assert env.cloudwatch.average("m", window_s=50) == 20
        assert env.cloudwatch.average("m", window_s=1000) == 15
        assert env.cloudwatch.average("nothing", window_s=10) is None

    def test_sns_delivery(self, env: CloudEnvironment):
        got = []
        env.sns.subscribe("alarms", got.append)
        env.sns.publish("alarms", "subject", "message")
        env.sns.publish("other", "s", "m")
        assert len(got) == 1
        assert len(env.sns.topic_history("alarms")) == 1


class TestSimCloudWatch:
    def test_empty_series_aggregation(self):
        cw = SimCloudWatch(SimClock())
        assert cw.get_series("Missing") == []
        assert cw.average("Missing", window_s=60.0) is None
        assert cw.total("Missing", window_s=60.0) == 0.0

    def test_dimension_key_ordering_equivalent(self):
        clock = SimClock()
        cw = SimCloudWatch(clock)
        cw.put_metric("Lag", 1.0, {"region": "us-east-1", "node": "n0"})
        cw.put_metric("Lag", 3.0, {"node": "n0", "region": "us-east-1"})
        series = cw.get_series("Lag", {"region": "us-east-1", "node": "n0"})
        assert [p.value for p in series] == [1.0, 3.0]
        assert cw.average("Lag", 60.0, {"node": "n0", "region": "us-east-1"}) == 2.0
        # A different dimension set stays a separate series.
        assert cw.get_series("Lag", {"node": "n0"}) == []

    def test_points_survive_clock_reset(self):
        clock = SimClock()
        cw = SimCloudWatch(clock)
        clock.advance(100.0)
        cw.put_metric("Errors", 5.0)
        cw.bind_clock(SimClock())  # fresh clock at t=0
        series = cw.get_series("Errors")
        assert [(p.timestamp, p.value) for p in series] == [(100.0, 5.0)]
        # Window aggregation measures from the new clock's now: the old
        # point sits in the future of the reset clock, outside no window.
        assert cw.total("Errors", window_s=1.0) == 5.0
        assert cw.average("Errors", window_s=1.0) == 5.0
