"""Compression codecs and the automatic analyzer."""

import datetime

import pytest

from repro.compression import (
    CompressionAnalyzer,
    analyze_column,
    all_codecs,
    applicable_codecs,
    codec_by_name,
)
from repro.datatypes import (
    BIGINT,
    DATE,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    decimal_type,
    varchar_type,
)
from repro.errors import StorageError


def roundtrip(codec_name, values, sql_type):
    codec = codec_by_name(codec_name)
    encoded = codec.encode(values, sql_type)
    assert codec.decode(encoded) == values
    return encoded


class TestRoundTrips:
    def test_every_codec_roundtrips_integers(self):
        values = [0, 1, -5, None, 100000, 7, 7, 7, None, -(2 ** 40)]
        for codec in applicable_codecs(BIGINT):
            encoded = codec.encode(values, BIGINT)
            assert codec.decode(encoded) == values, codec.name

    def test_every_codec_roundtrips_strings(self):
        vt = varchar_type(64)
        values = ["", "hello world", None, "hello world", "x" * 60, "naïve"]
        for codec in applicable_codecs(vt):
            encoded = codec.encode(values, vt)
            assert codec.decode(encoded) == values, codec.name

    def test_every_codec_roundtrips_dates(self):
        values = [datetime.date(2015, 1, d) for d in range(1, 20)] + [None]
        for codec in applicable_codecs(DATE):
            assert codec.decode(codec.encode(values, DATE)) == values, codec.name

    def test_every_codec_roundtrips_timestamps(self):
        base = datetime.datetime(2015, 5, 31, 10, 0, 0)
        values = [base + datetime.timedelta(seconds=i) for i in range(50)]
        for codec in applicable_codecs(TIMESTAMP):
            assert codec.decode(codec.encode(values, TIMESTAMP)) == values

    def test_every_codec_roundtrips_decimals(self):
        import decimal

        t = decimal_type(10, 2)
        values = [decimal.Decimal("1.50"), decimal.Decimal("-3.25"), None]
        for codec in applicable_codecs(t):
            assert codec.decode(codec.encode(values, t)) == values, codec.name

    def test_empty_vector(self):
        for codec in applicable_codecs(INTEGER):
            assert codec.decode(codec.encode([], INTEGER)) == []

    def test_all_null_vector(self):
        values = [None] * 10
        for codec in applicable_codecs(INTEGER):
            assert codec.decode(codec.encode(values, INTEGER)) == values

    def test_string_with_embedded_nul(self):
        vt = varchar_type(10)
        values = ["a\x00b", "\x00", ""]
        for name in ("lzo", "zstd"):
            roundtrip(name, values, vt)


class TestCodecBehaviour:
    def test_runlength_wins_on_constant_column(self):
        values = [42] * 1000
        rle = codec_by_name("runlength").encode(values, INTEGER)
        raw = codec_by_name("raw").encode(values, INTEGER)
        # The null bitmap (1 bit/value) floors the encoded size, capping
        # the achievable ratio near 8*width even for a single run.
        assert rle.encoded_bytes < raw.encoded_bytes / 20

    def test_delta_wins_on_sequential(self):
        values = list(range(10_000))
        delta = codec_by_name("delta").encode(values, BIGINT)
        raw = codec_by_name("raw").encode(values, BIGINT)
        assert delta.encoded_bytes < raw.encoded_bytes / 4

    def test_delta_exceptions_preserved(self):
        # Jumps beyond the 1-byte delta range become exceptions.
        values = [0, 1, 1_000_000, 1_000_001, 5]
        roundtrip("delta", values, BIGINT)

    def test_delta32k_wider_range(self):
        values = [0, 30_000, 60_000, 90_000]
        encoded = roundtrip("delta32k", values, BIGINT)
        raw = codec_by_name("raw").encode(values, BIGINT)
        assert encoded.encoded_bytes < raw.encoded_bytes

    def test_mostly8_narrow_values(self):
        values = [1, 2, 3, 100, -100] * 100 + [10 ** 12]
        encoded = roundtrip("mostly8", values, BIGINT)
        raw = codec_by_name("raw").encode(values, BIGINT)
        assert encoded.encoded_bytes < raw.encoded_bytes / 3

    def test_mostly_rejects_non_narrowing_type(self):
        from repro.datatypes import SMALLINT

        assert not codec_by_name("mostly16").supports(SMALLINT)

    def test_bytedict_low_cardinality(self):
        vt = varchar_type(32)
        values = [f"region-{i % 5}" for i in range(1000)]
        encoded = roundtrip("bytedict", values, vt)
        raw = codec_by_name("raw").encode(values, vt)
        assert encoded.encoded_bytes < raw.encoded_bytes / 5

    def test_bytedict_overflow_exceptions(self):
        vt = varchar_type(16)
        values = [f"v{i}" for i in range(300)]  # > 255 distinct
        roundtrip("bytedict", values, vt)

    def test_lzo_compresses_repetitive_text(self):
        vt = varchar_type(64)
        values = ["the quick brown fox jumps"] * 200
        encoded = codec_by_name("lzo").encode(values, vt)
        assert encoded.compression_ratio > 5

    def test_zstd_beats_lzo_on_ratio(self):
        vt = varchar_type(64)
        values = [f"http://example.com/products/{i % 50}/detail" for i in range(2000)]
        lzo = codec_by_name("lzo").encode(values, vt)
        zstd = codec_by_name("zstd").encode(values, vt)
        assert zstd.encoded_bytes <= lzo.encoded_bytes

    def test_text255_word_dictionary(self):
        vt = varchar_type(64)
        values = ["GET /index.html HTTP/1.1 200"] * 500
        encoded = roundtrip("text255", values, vt)
        raw = codec_by_name("raw").encode(values, vt)
        assert encoded.encoded_bytes < raw.encoded_bytes / 3

    def test_unknown_codec_rejected(self):
        with pytest.raises(StorageError):
            codec_by_name("snappy")

    def test_unsupported_type_rejected(self):
        with pytest.raises(StorageError):
            codec_by_name("delta").encode([1.5], DOUBLE)

    def test_compression_ratio_property(self):
        encoded = codec_by_name("runlength").encode([1] * 100, INTEGER)
        assert encoded.compression_ratio > 1


class TestAnalyzer:
    def test_picks_delta_for_sequences(self):
        analysis = analyze_column("seq", BIGINT, list(range(5000)))
        assert analysis.chosen_codec in ("delta", "delta32k")

    def test_picks_runlength_for_constants(self):
        analysis = analyze_column("const", INTEGER, [7] * 5000)
        assert analysis.chosen_codec == "runlength"

    def test_picks_dictionary_for_low_cardinality_text(self):
        vt = varchar_type(32)
        values = [f"cat-{i % 4}" for i in range(5000)]
        analysis = analyze_column("cat", vt, values)
        assert analysis.chosen_codec in ("bytedict", "lzo", "zstd", "runlength", "text255")
        assert analysis.chosen_codec != "raw"

    def test_keeps_raw_for_incompressible(self):
        import random

        rng = random.Random(1)
        values = [rng.randrange(-(2 ** 62), 2 ** 62) for _ in range(2000)]
        analysis = analyze_column("noise", BIGINT, values)
        # Nothing can beat raw by the improvement threshold on 8-byte noise.
        assert analysis.chosen_codec == "raw"

    def test_regret_is_bounded(self):
        values = [i // 10 for i in range(5000)]
        analysis = analyze_column("col", INTEGER, values)
        assert 1.0 <= analysis.regret < 1.5

    def test_sampling_preserves_order_sensitivity(self):
        # A sorted column must still look sorted in the sample, or delta
        # would never be chosen on large loads.
        analysis = analyze_column("s", BIGINT, list(range(100_000)), sample_size=500)
        assert analysis.sample_size == 500
        assert analysis.chosen_codec in ("delta", "delta32k")

    def test_analyzer_over_table(self):
        analyzer = CompressionAnalyzer(sample_size=256)
        columns = [("a", INTEGER), ("b", varchar_type(16))]
        vectors = [list(range(1000)), [f"x{i % 3}" for i in range(1000)]]
        result = analyzer.analyze(columns, vectors)
        assert set(result) == {"a", "b"}
        assert result["a"].chosen_codec != "raw"

    def test_mismatched_vectors_rejected(self):
        analyzer = CompressionAnalyzer()
        with pytest.raises(ValueError):
            analyzer.analyze([("a", INTEGER)], [[1], [2]])

    def test_deterministic(self):
        values = [i % 100 for i in range(10_000)]
        a = analyze_column("c", INTEGER, values)
        b = analyze_column("c", INTEGER, values)
        assert a.chosen_codec == b.chosen_codec
