"""Unit tests for the operate-on-compressed scan path (DESIGN.md §13).

Covers the EncodedColumn kernels against hand-built blocks (dictionary
masks with escapes and NULL splicing, RLE folds, MOSTLY image
comparisons, late-materializing gather), the zone-map ``must_satisfy``
dual, the decode cache's non-decoding ``peek``, the typed packed-row
pool shipping, the ``accumulate_run`` fold contracts, and the observable
surface: ``svl_scan_encoding``, the svl_query_summary columns, EXPLAIN
ANALYZE annotations and ``SET enable_encoded_scan`` validation.
"""

from array import array

import pytest

from repro import Cluster
from repro.compression import codec_by_name
from repro.datatypes import INTEGER
from repro.errors import AnalysisError
from repro.exec.encoded import EncodedColumn, supports_block
from repro.exec.workers import PackedRows, pack_rows, unpack_rows
from repro.sql.functions import make_aggregate
from repro.storage.block import Block
from repro.storage.blockcache import BlockDecodeCache
from repro.storage.chain import ScanStats
from repro.storage.zonemap import ZoneMap


def _block(values, codec, sql_type=INTEGER):
    return Block.build(values, sql_type, codec_by_name(codec))


def _decoded_mask(values, fn):
    return [v is not None and bool(fn(v)) for v in values]


class TestEncodedColumnKernels:
    def test_supports_block_whitelist(self):
        assert supports_block(_block([1, 1, 2], "runlength"))
        assert supports_block(_block([1, 1, 2], "bytedict"))
        assert not supports_block(_block([1, 1, 2], "raw"))
        assert not supports_block(_block([1, 2, 3], "delta"))

    def test_bytedict_mask_with_nulls(self):
        values = [3, None, 5, 3, None, 7, 5]
        col = EncodedColumn(_block(values, "bytedict"))
        assert col.compare_mask("=", 3) == _decoded_mask(
            values, lambda v: v == 3
        )
        assert col.compare_mask("<", 6) == _decoded_mask(
            values, lambda v: v < 6
        )

    def test_bytedict_mask_with_escapes(self):
        # >255 distinct values: the tail is stored as escape exceptions.
        values = list(range(300))
        col = EncodedColumn(_block(values, "bytedict"))
        assert col.vector.payload[2], "test needs dictionary overflow"
        assert col.compare_mask(">=", 280) == _decoded_mask(
            values, lambda v: v >= 280
        )

    def test_rle_mask_and_degenerate_runs(self):
        values = [1] * 5 + [2] * 4 + [None] * 2 + [3]
        col = EncodedColumn(_block(values, "runlength"))
        assert col.compare_mask("<>", 2) == _decoded_mask(
            values, lambda v: v != 2
        )
        # Degenerate: every run length 1.
        distinct = [9, 8, 7, 6]
        col = EncodedColumn(_block(distinct, "runlength"))
        assert col.compare_mask("<=", 7) == _decoded_mask(
            distinct, lambda v: v <= 7
        )

    def test_mostly_mask_including_exceptions(self):
        from repro.datatypes import BIGINT

        values = [5, -3, 10_000_000, 40, None]  # one mostly8 exception
        col = EncodedColumn(_block(values, "mostly8", BIGINT))
        assert col.compare_mask(">", 4) == _decoded_mask(
            values, lambda v: v > 4
        )

    def test_mostly_inexact_literal_falls_back(self):
        col = EncodedColumn(_block([1, 2, 3], "mostly8", INTEGER))
        # Unsupported literal type for the image map: refuse, don't guess.
        assert col.compare_mask("=", "nope") is None

    def test_zone_map_short_circuits(self):
        stats = ScanStats()
        col = EncodedColumn(_block([5] * 8, "runlength"), stats)
        assert col.compare_mask("=", 5) == [True] * 8     # must_satisfy
        assert col.compare_mask(">", 100) == [False] * 8  # might_satisfy
        assert stats.encoding["runlength"][3] == 2        # ENC_MASKS

    def test_is_null_mask(self):
        values = [1, None, 1, None]
        col = EncodedColumn(_block(values, "runlength"))
        assert col.is_null_mask() == [False, True, False, True]
        assert col.is_null_mask(negated=True) == [True, False, True, False]

    def test_gather_matches_decoded(self):
        for codec, values in (
            ("bytedict", [4, None, 4, 6, None, 8, 6]),
            ("runlength", [1, 1, None, 2, 2, 2, None]),
            ("mostly16", [500, None, -500, 0, 7]),
        ):
            col = EncodedColumn(_block(values, codec))
            selection = [0, 2, 3, 5, 6][: len(values) - 2]
            assert col.gather(selection) == [values[i] for i in selection], (
                codec
            )

    def test_gather_dict_overflow_falls_back_to_decode(self):
        values = list(range(300))
        col = EncodedColumn(_block(values, "bytedict"))
        assert col.gather([0, 299]) == [0, 299]

    def test_list_protocol_materializes(self):
        values = [2, 2, None, 3]
        col = EncodedColumn(_block(values, "runlength"))
        assert len(col) == 4
        assert list(col) == values
        assert col[3] == 3

    def test_foldable_runs_rejects_floats(self):
        from repro.datatypes import DOUBLE

        ints = EncodedColumn(_block([1, 1, 2], "runlength"))
        assert ints.is_rle and ints.foldable_runs()
        floats = EncodedColumn(_block([1.5, 1.5], "runlength", DOUBLE))
        assert not floats.foldable_runs()


class TestZoneMapMustSatisfy:
    def test_operators(self):
        zone = ZoneMap.build([5, 9, 7])
        assert zone.must_satisfy("<", 10)
        assert not zone.must_satisfy("<", 9)
        assert zone.must_satisfy("<=", 9)
        assert zone.must_satisfy(">", 4)
        assert zone.must_satisfy(">=", 5)
        assert zone.must_satisfy("<>", 4) and zone.must_satisfy("<>", 10)
        assert not zone.must_satisfy("<>", 7)
        assert not zone.must_satisfy("=", 7)
        assert ZoneMap.build([3, 3, 3]).must_satisfy("=", 3)

    def test_nulls_and_edge_cases_refuse(self):
        assert not ZoneMap.build([5, None, 9]).must_satisfy("<", 10)
        assert not ZoneMap.build([None, None]).must_satisfy("=", None)
        assert not ZoneMap.build([]).must_satisfy("<", 1)
        assert not ZoneMap.build([1]).must_satisfy("=", None)
        assert not ZoneMap.build([1]).must_satisfy("LIKE", 1)


class TestDecodeCachePeek:
    def test_peek_never_decodes_and_counts_no_miss(self):
        cache = BlockDecodeCache(capacity=4)
        block = _block([1, 2, 3], "raw")
        block.read_vector = lambda *a, **k: pytest.fail(
            "peek must not decode"
        )
        assert cache.peek(block) is None
        assert cache.misses == 0 and cache.hits == 0

    def test_peek_hit_after_lookup(self):
        cache = BlockDecodeCache(capacity=4)
        block = _block([1, 2, 3], "raw")
        cache.lookup(block)
        assert cache.peek(block) == [1, 2, 3]
        assert cache.hits == 1 and cache.misses == 1


class TestPackedRows:
    def test_int_and_float_columns_pack_typed(self):
        rows = [(1, 1.5, "a"), (2, 2.5, "b")]
        packed = pack_rows(rows)
        assert isinstance(packed.columns[0], array)
        assert packed.columns[0].typecode == "q"
        assert packed.columns[1].typecode == "d"
        assert isinstance(packed.columns[2], list)
        assert unpack_rows(packed) == rows

    def test_mixed_and_overflow_columns_stay_lists(self):
        rows = [(1,), (None,)]
        assert isinstance(pack_rows(rows).columns[0], list)
        big = [(2**70,), (1,)]
        assert isinstance(pack_rows(big).columns[0], list)
        assert unpack_rows(pack_rows(big)) == big
        bools = [(True,), (False,)]  # bool is not int for packing
        assert isinstance(pack_rows(bools).columns[0], list)
        assert unpack_rows(pack_rows(bools)) == bools

    def test_empty_and_zero_width(self):
        assert unpack_rows(pack_rows([])) == []
        assert unpack_rows(PackedRows(count=2, columns=[])) == [(), ()]


class TestAccumulateRun:
    def test_folds_match_looped_accumulation(self):
        for name, value, count in (
            ("count", 7, 5),
            ("sum", 7, 5),
            ("min", 7, 5),
            ("max", 7, 5),
        ):
            agg = make_aggregate(name)
            looped = agg.create()
            for _ in range(count):
                looped = agg.accumulate(looped, value)
            assert agg.accumulate_run(agg.create(), value, count) == looped

    def test_null_runs_fold_to_nothing(self):
        for name in ("count", "sum", "min", "max"):
            agg = make_aggregate(name)
            assert agg.accumulate_run(agg.create(), None, 9) == agg.create()


def _encoded_cluster():
    cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
    s = cluster.connect(executor="vectorized")
    s.execute(
        "CREATE TABLE t (k int encode bytedict, r int encode runlength)"
    )
    s.execute(
        "INSERT INTO t VALUES "
        + ",".join(f"({i % 11}, {i // 40})" for i in range(400))
    )
    cluster.seal_table("t")
    return cluster, s


class TestObservability:
    def test_svl_scan_encoding_rows(self):
        cluster, s = _encoded_cluster()
        s.execute("SELECT count(*), sum(r) FROM t WHERE k = 3")
        rows = s.execute(
            "SELECT encoding, blocks, values_scanned, bytes_avoided, "
            "masks FROM svl_scan_encoding ORDER BY encoding"
        ).rows
        codecs = [r[0] for r in rows]
        assert codecs == ["bytedict", "runlength"]
        for _, blocks, values_scanned, bytes_avoided, masks in rows:
            assert blocks > 0 and values_scanned > 0 and bytes_avoided > 0
        assert rows[0][4] > 0  # the bytedict predicate produced masks

    def test_svl_query_summary_encoded_columns(self):
        cluster, s = _encoded_cluster()
        r = s.execute("SELECT count(*) FROM t WHERE k = 3")
        assert r.stats.scan.encoded_batches > 0
        batches, avoided = s.execute(
            "SELECT max(encoded_batches), max(decode_bytes_avoided) "
            "FROM svl_query_summary"
        ).rows[0]
        assert batches == r.stats.scan.encoded_batches
        assert avoided == r.stats.scan.decode_bytes_avoided > 0

    def test_explain_analyze_annotations(self):
        cluster, s = _encoded_cluster()
        plan = "\n".join(
            row[0]
            for row in s.execute(
                "EXPLAIN ANALYZE SELECT count(*), sum(r) FROM t WHERE k = 3"
            ).rows
        )
        assert "encoded_batches=" in plan
        assert "decode_saved=" in plan
        assert "Encoded scan:" in plan
        assert "dict-pushdown" in plan and "rle-fold" in plan

    def test_set_parameter_validation_and_off(self):
        cluster, s = _encoded_cluster()
        with pytest.raises(AnalysisError):
            s.execute("SET enable_encoded_scan = maybe")
        s.execute("SET enable_encoded_scan = off")
        r = s.execute("SELECT count(*) FROM t WHERE k = 3")
        assert r.stats.scan.encoded_batches == 0
        assert r.stats.scan.encoding == {}
        # No encoded work -> the snapshot table keeps its previous rows
        # (replace-style, like stv_query_spill), and SET on restores.
        s.execute("SET enable_encoded_scan = on")
        cluster.block_cache.clear()
        r = s.execute("SELECT count(*) FROM t WHERE k = 4")
        assert r.stats.scan.encoded_batches > 0
