"""Property: operate-on-compressed execution is bit-identical to decoded.

A table is loaded with every encoded-capable codec pinned explicitly
(ENCODE is authoritative, so auto-compression cannot reshuffle the
layout), including the shapes most likely to break a pushdown kernel:

- a NULL-heavy column (masks must splice FALSE at null positions exactly
  like the decoded kernels);
- a bytedict column that overflows its 255-entry dictionary within a
  block (escape codes + exception values);
- a degenerate runlength column where every run has length 1;
- a mostly8 column with out-of-range exception values (stored full-width
  behind the escape flag, compared by integer image like the rest).

Hypothesis then generates filter/aggregate/projection queries and runs
each through all four executors twice — ``enable_encoded_scan`` on and
off. Within one executor the two runs must match *exactly* (same rows,
same order: the encoded kernels are required to be bit-identical, not
just equivalent); across executors the usual normalized comparison
applies (row order and float summation order legitimately differ).

A second property drives ``Block.corrupt`` bit-flips into the *encoded*
payloads of every operate-on-compressed codec and checks the payload
checksum still catches them on both scan paths — the encoded path
verifies before handing the compressed vector to the kernels, so a flip
can never leak into a mask or fold.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Cluster
from repro.errors import BlockCorruptionError, ExecutionError

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")
ROWS = 1600


def _build():
    # block_capacity 512 so one block holds >255 distinct values — the
    # only way to force bytedict escapes.
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=512)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE e ("
        "db int encode bytedict, "     # small dictionary
        "ov int encode bytedict, "     # dictionary overflow (escapes)
        "rl int encode runlength, "    # genuine runs
        "rd int encode runlength, "    # degenerate: every run length 1
        "m8 int encode mostly8, "      # narrow images + exceptions
        "m16 int encode mostly16, "
        "nn int encode runlength, "    # NULL-heavy
        "f float)"
    )
    rows = []
    for i in range(ROWS):
        nn = "NULL" if i % 3 else str(i // 100)
        m8 = str(10_000 + i) if i % 97 == 0 else str(i % 100 - 50)
        f = "NULL" if i % 13 == 0 else str(round((i % 37) * 0.75, 2))
        rows.append(
            f"({i % 19}, {i % 400}, {i // 25}, {i}, {m8}, "
            f"{i % 20000 - 5000}, {nn}, {f})"
        )
    s.execute(f"INSERT INTO e VALUES {','.join(rows)}")
    # INSERT leaves rows in the open tail buffers; sealing turns them
    # into encoded blocks — the thing this suite is actually testing.
    cluster.seal_table("e")
    return cluster


_CLUSTER = _build()
_ON = {name: _CLUSTER.connect(executor=name) for name in EXECUTORS}
_OFF = {name: _CLUSTER.connect(executor=name) for name in EXECUTORS}
for _s in _ON.values():
    _s.execute("SET enable_result_cache = off")
for _s in _OFF.values():
    _s.execute("SET enable_result_cache = off")
    _s.execute("SET enable_encoded_scan = off")


def normalize(rows):
    return sorted(
        (
            tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows
        ),
        key=repr,
    )


COLUMNS = ("db", "ov", "rl", "rd", "m8", "m16", "nn")

comparisons = st.one_of(
    st.tuples(
        st.sampled_from(COLUMNS),
        st.sampled_from(["<", "<=", "=", "<>", ">=", ">"]),
        st.integers(-60, 450),
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.tuples(
        st.sampled_from(COLUMNS), st.integers(-20, 400), st.integers(0, 80)
    ).map(lambda t: f"{t[0]} BETWEEN {t[1]} AND {t[1] + t[2]}"),
    st.tuples(
        st.sampled_from(COLUMNS), st.sampled_from(["IS NULL", "IS NOT NULL"])
    ).map(lambda t: f"{t[0]} {t[1]}"),
    # Column-vs-column comparisons cannot push down (no literal): they
    # must late-materialize through gather and still agree.
    st.sampled_from(["db < rl", "m8 < m16", "ov <> rd"]),
)


@st.composite
def predicates(draw):
    parts = draw(st.lists(comparisons, min_size=1, max_size=3))
    glue = draw(st.sampled_from([" AND ", " OR "]))
    return glue.join(parts)


@st.composite
def queries(draw):
    pred = draw(predicates())
    shape = draw(st.integers(0, 4))
    if shape == 0:
        limit = draw(st.integers(1, 60))
        return (
            f"SELECT db, ov, m8, nn FROM e WHERE {pred} "
            f"ORDER BY ov, rd LIMIT {limit}"
        )
    if shape == 1:
        return (
            f"SELECT count(*), count(nn), sum(rl), min(rd), max(ov), "
            f"sum(m16) FROM e WHERE {pred}"
        )
    if shape == 2:
        # Whole-column aggregates: the RLE fold path (no selection).
        return "SELECT count(*), sum(rl), min(rl), max(rl), sum(rd) FROM e"
    if shape == 3:
        return (
            f"SELECT db, count(*), sum(rd), avg(f) FROM e WHERE {pred} "
            f"GROUP BY db"
        )
    return f"SELECT DISTINCT rl FROM e WHERE {pred} ORDER BY rl"


@given(queries())
@settings(max_examples=60, deadline=None)
def test_encoded_matches_decoded_per_executor(sql):
    reference = None
    for name in EXECUTORS:
        on = _ON[name].execute(sql)
        off = _OFF[name].execute(sql)
        # Same executor, encoded vs decoded: exact — rows, order, types.
        assert on.rows == off.rows, (name, sql)
        if reference is None:
            reference = normalize(on.rows)
        else:
            assert normalize(on.rows) == reference, (name, sql)


@given(predicates())
@settings(max_examples=30, deadline=None)
def test_scan_accounting_matches_across_paths(pred):
    sql = f"SELECT count(*) FROM e WHERE {pred}"
    results = [s.execute(sql) for s in (*_ON.values(), *_OFF.values())]
    assert len({r.rows[0][0] for r in results}) == 1, pred
    assert len({r.stats.scan.blocks_read for r in results}) == 1, pred
    assert len({r.stats.scan.blocks_skipped for r in results}) == 1, pred


def test_encoded_path_actually_engages():
    """Guard against the suite silently passing because everything fell
    back to decode: the vectorized encoded session must report encoded
    batches and per-codec pushdown work on a known-friendly query."""
    # Earlier (decoded) runs warmed the shared cache, and the encoded
    # path rightly prefers an already-resident decoded vector; start
    # cold so the compressed path is what actually runs.
    _CLUSTER.block_cache.clear()
    r = _ON["vectorized"].execute(
        "SELECT count(*), sum(rl) FROM e WHERE db = 7"
    )
    scan = r.stats.scan
    assert scan.encoded_batches > 0
    assert scan.decode_bytes_avoided > 0
    assert "bytedict" in scan.encoding and "runlength" in scan.encoding
    # And the decoded control never touches the encoded machinery.
    off = _OFF["vectorized"].execute(
        "SELECT count(*), sum(rl) FROM e WHERE db = 7"
    )
    assert off.stats.scan.encoded_batches == 0
    assert off.stats.scan.encoding == {}


# ---------------------------------------------------------------------------
# Corruption: payload bit-flips stay detectable on every scan path
# ---------------------------------------------------------------------------

_CORRUPTIBLE = (
    ("bytedict", lambda i: i % 19),
    ("runlength", lambda i: i // 25),
    ("mostly8", lambda i: i % 100 - 50),
    ("mostly16", lambda i: i % 20000 - 5000),
    ("mostly32", lambda i: i * 1000),
    ("delta", lambda i: i),     # decode-path control
    ("raw", lambda i: i * 7),   # decode-path control
)


@pytest.mark.parametrize("codec,value", _CORRUPTIBLE, ids=lambda c: c[0] if isinstance(c, str) else "")
@pytest.mark.parametrize("encoded_scan", ["on", "off"])
def test_corrupt_payload_caught_by_checksum(codec, value, encoded_scan):
    cluster = Cluster(node_count=1, slices_per_node=1, block_capacity=256)
    s = cluster.connect(executor="vectorized")
    # bigint so every mostly width actually narrows (mostly32 refuses a
    # 4-byte int — nothing to narrow).
    s.execute(f"CREATE TABLE c (v bigint encode {codec})")
    s.execute(
        "INSERT INTO c VALUES "
        + ",".join(f"({value(i)})" for i in range(600))
    )
    cluster.seal_table("c")
    s.execute(f"SET enable_encoded_scan = {encoded_scan}")
    total = s.execute("SELECT count(*), sum(v) FROM c").rows
    assert total == [(600, sum(value(i) for i in range(600)))]
    block = cluster.slice_stores[0].shard("c").chain("v").blocks[0]
    block.corrupt()
    with pytest.raises((BlockCorruptionError, ExecutionError)):
        s.execute("SELECT count(*), sum(v) FROM c")
