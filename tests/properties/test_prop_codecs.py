"""Property: every codec round-trips arbitrary value vectors exactly."""

import datetime

from hypothesis import given, settings, strategies as st

from repro.compression import applicable_codecs
from repro.datatypes import BIGINT, DOUBLE, DATE, INTEGER, varchar_type

int_vectors = st.lists(
    st.one_of(st.none(), st.integers(-(2 ** 62), 2 ** 62)), max_size=200
)
int32_vectors = st.lists(
    st.one_of(st.none(), st.integers(-(2 ** 31), 2 ** 31 - 1)), max_size=200
)
float_vectors = st.lists(
    st.one_of(
        st.none(),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    ),
    max_size=200,
)
text_vectors = st.lists(
    st.one_of(st.none(), st.text(max_size=30)), max_size=100
)
date_vectors = st.lists(
    st.one_of(
        st.none(),
        st.dates(datetime.date(1990, 1, 1), datetime.date(2030, 12, 31)),
    ),
    max_size=100,
)


@given(int_vectors)
@settings(max_examples=60, deadline=None)
def test_bigint_roundtrip(values):
    for codec in applicable_codecs(BIGINT):
        assert codec.decode(codec.encode(values, BIGINT)) == values, codec.name


@given(int32_vectors)
@settings(max_examples=40, deadline=None)
def test_integer_roundtrip(values):
    for codec in applicable_codecs(INTEGER):
        assert codec.decode(codec.encode(values, INTEGER)) == values, codec.name


@given(float_vectors)
@settings(max_examples=40, deadline=None)
def test_double_roundtrip(values):
    for codec in applicable_codecs(DOUBLE):
        assert codec.decode(codec.encode(values, DOUBLE)) == values, codec.name


@given(text_vectors)
@settings(max_examples=40, deadline=None)
def test_varchar_roundtrip(values):
    vt = varchar_type(64)
    clipped = [v[:64] if isinstance(v, str) else v for v in values]
    for codec in applicable_codecs(vt):
        assert codec.decode(codec.encode(clipped, vt)) == clipped, codec.name


@given(date_vectors)
@settings(max_examples=40, deadline=None)
def test_date_roundtrip(values):
    for codec in applicable_codecs(DATE):
        assert codec.decode(codec.encode(values, DATE)) == values, codec.name


@given(int_vectors)
@settings(max_examples=40, deadline=None)
def test_encoded_size_is_positive_and_counted(values):
    for codec in applicable_codecs(BIGINT):
        encoded = codec.encode(values, BIGINT)
        assert encoded.encoded_bytes > 0
        assert encoded.count == len(values)
        assert len(encoded.null_positions) == sum(v is None for v in values)
