"""Property: under random seeded fault schedules, queries are never
silently wrong — they either return the fault-free oracle's answer (the
recovery machinery did its job) or raise a typed :class:`ReproError`.

The second property is the framework's own contract: the same seed and
plan reproduce the same fault/recovery timeline.
"""

import re

from hypothesis import given, settings, strategies as st

from repro.cloud import CloudEnvironment
from repro.controlplane import RedshiftService
from repro.errors import ReproError
from repro.faults import ChaosOrchestrator, FaultPlan

ROWS = 200
ORACLE = [(ROWS, sum(range(ROWS)))]

fault_mix = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**6),
        "s3_rate": st.one_of(st.none(), st.floats(0.05, 0.9)),
        "disk_rate": st.one_of(st.none(), st.floats(0.001, 0.05)),
        "crash_node": st.one_of(st.none(), st.integers(0, 1)),
        "bitflips": st.lists(st.integers(0, 40), max_size=2),
    }
)


def _drill(mix):
    """Build a small managed cluster, aim the drawn fault mix at it, and
    run the probe query. Returns (rows or None, injector)."""
    env = CloudEnvironment(seed=mix["seed"])
    env.ec2.preconfigure("dw2.large", 6)
    service = RedshiftService(env)
    managed, _ = service.create_cluster(node_count=2, block_capacity=16)
    session = managed.connect()
    session.execute("CREATE TABLE t (k int, v int) DISTKEY(k)")
    session.execute(
        "INSERT INTO t VALUES " + ",".join(f"({i},{i})" for i in range(ROWS))
    )
    managed.replication.sync_from_cluster()
    service.snapshot_cluster(managed.cluster_id, label="pre")

    now = env.clock.now
    plan = FaultPlan(seed=mix["seed"])
    if mix["s3_rate"] is not None:
        plan.s3_errors(now, now + 3600.0, rate=mix["s3_rate"])
    if mix["disk_rate"] is not None:
        plan.disk_media_errors(now, now + 3600.0, rate=mix["disk_rate"])
    if mix["crash_node"] is not None:
        plan.node_crash(now, f"node-{mix['crash_node']}")
    for index in mix["bitflips"]:
        plan.block_bitflip(now, f"#{index}")

    chaos = ChaosOrchestrator(env, managed, plan)
    injector = chaos.install()
    env.clock.advance(1.0)  # scheduled point faults fire
    try:
        rows = session.execute("SELECT count(*), sum(v) FROM t").rows
    except ReproError:
        rows = None  # a typed failure; the property allows it
    return rows, injector


@given(fault_mix)
@settings(max_examples=15, deadline=None)
def test_chaos_is_never_silently_wrong(mix):
    rows, _ = _drill(mix)
    assert rows is None or rows == ORACLE


def _normalized(timeline):
    """Block ids come from a process-global counter; rewrite them relative
    to the run so two in-process timelines compare."""
    numbers = [
        int(m)
        for key in timeline
        for part in key
        if isinstance(part, str)
        for m in re.findall(r"blk-(\d+)", part)
    ]
    base = min(numbers) if numbers else 0

    def fix(part):
        if not isinstance(part, str):
            return part
        return re.sub(
            r"blk-(\d+)", lambda m: f"blk+{int(m.group(1)) - base}", part
        )

    return [tuple(fix(part) for part in key) for key in timeline]


@given(fault_mix)
@settings(max_examples=8, deadline=None)
def test_chaos_timeline_is_reproducible(mix):
    rows_a, first = _drill(mix)
    rows_b, second = _drill(mix)
    assert rows_a == rows_b
    assert _normalized(first.timeline()) == _normalized(second.timeline())
