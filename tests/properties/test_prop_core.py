"""Property tests on core invariants: z-order, hashing, zone maps,
chains, sort keys, aggregates."""

from hypothesis import given, settings, strategies as st

from repro.distribution import stable_hash
from repro.sortkeys import CompoundSortKey, ZOrderMapper, deinterleave, interleave
from repro.sql.functions import make_aggregate
from repro.storage import ZoneMap
from repro.storage.chain import ColumnChain
from repro.datatypes import INTEGER


class TestZOrderProperties:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=4),
    )
    @settings(max_examples=200)
    def test_interleave_bijective(self, coords):
        code = interleave(coords, 8)
        assert deinterleave(code, len(coords), 8) == coords

    @given(st.integers(0, 2 ** 16 - 1))
    def test_codes_bounded(self, code_input):
        coords = deinterleave(code_input, 2, 8)
        assert all(0 <= c < 256 for c in coords)
        assert interleave(coords, 8) == code_input

    @given(st.lists(st.integers(-(10 ** 9), 10 ** 9), min_size=2, max_size=500))
    @settings(max_examples=50)
    def test_mapper_rank_monotone(self, values):
        mapper = ZOrderMapper(6).fit([values])
        ordered = sorted(set(values))
        ranks = [mapper.rank(0, v) for v in ordered]
        assert ranks == sorted(ranks)


class TestHashProperties:
    @given(st.one_of(st.integers(), st.text(), st.booleans(), st.none()))
    def test_hash_stable(self, value):
        assert stable_hash(value) == stable_hash(value)

    @given(st.integers(-(10 ** 12), 10 ** 12))
    def test_int_float_agree(self, n):
        assert stable_hash(n) == stable_hash(float(n)) or abs(n) > 2 ** 53

    @given(st.lists(st.integers(), min_size=1), st.integers(1, 64))
    def test_targets_in_range(self, keys, slices):
        for key in keys:
            assert 0 <= stable_hash(key) % slices < slices


class TestZoneMapProperties:
    @given(st.lists(st.one_of(st.none(), st.integers(-1000, 1000)), max_size=100))
    @settings(max_examples=100)
    def test_zone_map_is_conservative(self, values):
        zone = ZoneMap.build(values)
        present = [v for v in values if v is not None]
        for op, check in (
            ("=", lambda v, lit: v == lit),
            ("<", lambda v, lit: v < lit),
            (">=", lambda v, lit: v >= lit),
        ):
            for literal in (-1001, -5, 0, 7, 1001):
                has_match = any(check(v, literal) for v in present)
                if has_match:
                    # Never skip a block that contains a match.
                    assert zone.might_satisfy(op, literal)

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=50),
        st.lists(st.integers(-100, 100), min_size=1, max_size=50),
    )
    def test_merge_bounds(self, a, b):
        merged = ZoneMap.build(a).merge(ZoneMap.build(b))
        assert merged.low == min(a + b)
        assert merged.high == max(a + b)


class TestChainProperties:
    @given(
        st.lists(st.one_of(st.none(), st.integers(-(10 ** 6), 10 ** 6)), max_size=300),
        st.integers(1, 64),
        st.sampled_from(["raw", "delta", "lzo", "runlength", "bytedict"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_chain_preserves_content(self, values, capacity, codec):
        chain = ColumnChain("c", INTEGER, codec, block_capacity=capacity)
        chain.append(values)
        chain.seal()
        assert chain.read_all() == values
        assert chain.row_count == len(values)
        assert [v for _, v in chain.scan()] == values

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_zone_scan_superset_of_matches(self, values, capacity):
        chain = ColumnChain("c", INTEGER, "raw", block_capacity=capacity)
        chain.append(values)
        chain.seal()
        literal = values[len(values) // 2]
        got = {offset for offset, v in chain.scan(("=", literal))}
        expected = {i for i, v in enumerate(values) if v == literal}
        assert expected <= got  # conservative: may include extras, never misses


class TestSortKeyProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_compound_sort_is_a_permutation_and_sorted(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        order = CompoundSortKey(["x", "y"]).sort_order([xs, ys])
        assert sorted(order) == list(range(len(pairs)))
        sorted_pairs = [(xs[i], ys[i]) for i in order]
        assert sorted_pairs == sorted(sorted_pairs)


class TestAggregateProperties:
    @given(
        st.lists(st.one_of(st.none(), st.integers(-1000, 1000)), max_size=100),
        st.integers(1, 5),
        st.sampled_from(["count", "sum", "min", "max", "avg", "stddev"]),
    )
    @settings(max_examples=100)
    def test_merge_any_partitioning(self, values, parts, name):
        """Partial/merge must be partition-invariant: any split of the
        input merges to the same final answer."""
        agg = make_aggregate(name)
        whole = agg.create()
        for v in values:
            whole = agg.accumulate(whole, v)
        expected = agg.finalize(whole)

        chunk = max(1, len(values) // parts)
        states = []
        for i in range(0, max(len(values), 1), chunk):
            state = agg.create()
            for v in values[i:i + chunk]:
                state = agg.accumulate(state, v)
            states.append(state)
        merged = states[0]
        for state in states[1:]:
            merged = agg.merge(merged, state)
        actual = agg.finalize(merged)
        if isinstance(expected, float) and expected == expected:
            assert actual == pytest_approx(expected)
        else:
            assert actual == expected


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-9)
