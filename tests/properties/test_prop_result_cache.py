"""Properties of the query result cache.

1. **Bit-identity**: for generated queries under every executor, a warm
   hit returns exactly the rows a fresh (cache-off) execution computes —
   same values, same order, floats compared exactly (the executor kind
   is part of the cache key precisely so this can hold bit-for-bit).
2. **Exact invalidation**: every mutation path — INSERT, DELETE, UPDATE,
   VACUUM, block corruption — invalidates the entries of exactly the
   mutated table: its entries go invalid, the other table's entries
   stay valid and keep hitting.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro import Cluster

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


def _build():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=16)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE t (k int, v int, f float, s varchar(8)) DISTKEY(k)"
    )
    s.execute("CREATE TABLE d (k int, label varchar(8)) DISTSTYLE ALL")
    rows = []
    for i in range(150):
        v = "NULL" if i % 9 == 0 else str((i * 7) % 90 - 20)
        f = "NULL" if i % 11 == 0 else str(round((i % 29) * 0.37, 4))
        sv = f"'s{i % 6}'"
        rows.append(f"({i % 17}, {v}, {f}, {sv})")
    s.execute(f"INSERT INTO t VALUES {','.join(rows)}")
    s.execute(
        "INSERT INTO d VALUES "
        + ",".join(f"({k}, 'd{k % 3}')" for k in range(0, 17, 2))
    )
    return cluster


_CLUSTER = _build()
#: Cached sessions per executor, plus cache-off twins for the recompute.
_CACHED = {name: _CLUSTER.connect(executor=name) for name in EXECUTORS}
_UNCACHED = {name: _CLUSTER.connect(executor=name) for name in EXECUTORS}
for _s in _UNCACHED.values():
    _s.execute("SET enable_result_cache = off")


@st.composite
def queries(draw):
    pred = draw(
        st.sampled_from(
            [
                "v > 10",
                "v <= 0 OR f > 5.0",
                "f BETWEEN 1.0 AND 8.0",
                "v IS NOT NULL AND s <> 's2'",
                "k < 9 AND v <> 3",
            ]
        )
    )
    shape = draw(st.integers(0, 3))
    if shape == 0:
        return f"SELECT k, v, s FROM t WHERE {pred} ORDER BY k, v, s"
    if shape == 1:
        return (
            f"SELECT k, count(*), sum(v), avg(f) FROM t WHERE {pred} "
            "GROUP BY k ORDER BY k"
        )
    if shape == 2:
        return f"SELECT sum(f), min(v), max(v), count(s) FROM t WHERE {pred}"
    return (
        "SELECT d.label, count(*), sum(t.f) FROM t JOIN d ON t.k = d.k "
        f"WHERE t.{pred.split(' ', 1)[0]} {pred.split(' ', 1)[1]} "
        "GROUP BY d.label ORDER BY d.label"
    )


@given(queries(), st.sampled_from(EXECUTORS))
@settings(max_examples=40, deadline=None)
def test_warm_hit_bit_identical_to_recompute(sql, executor):
    cached = _CACHED[executor]
    cached.execute(sql)  # prime (miss or hit — both fine)
    warm = cached.execute(sql)
    assert warm.stats.result_cache_hit
    recomputed = _UNCACHED[executor].execute(sql)
    assert not recomputed.stats.result_cache_hit
    # Exact equality: same values, same order, floats bit-for-bit.
    assert warm.rows == recomputed.rows
    assert warm.columns == recomputed.columns


_ids = itertools.count()

_MUTATIONS = ("insert", "delete", "update", "vacuum", "corrupt")


def _entry_for(table):
    return next(
        (
            e
            for e in _CLUSTER.result_cache.entries()
            if e.tables == (table,)
        ),
        None,
    )


@given(st.sampled_from(_MUTATIONS), st.booleans())
@settings(max_examples=25, deadline=None)
def test_each_mutation_path_invalidates_exactly_its_table(mutation, hit_a):
    n = next(_ids)
    ta, tb = f"ma_{n}", f"mb_{n}"
    target, other = (ta, tb) if hit_a else (tb, ta)
    s = _CLUSTER.connect()
    for name in (ta, tb):
        s.execute(f"CREATE TABLE {name} (k int, v int)")
        # Enough rows that every slice seals at least one block — the
        # corrupt path bit-flips a *sealed* block (the tail is a buffer).
        s.execute(
            f"INSERT INTO {name} VALUES "
            + ",".join(f"({i}, {i + 1})" for i in range(120))
        )
    try:
        sql = {name: f"SELECT sum(v) FROM {name}" for name in (ta, tb)}
        baseline = {name: s.execute(sql[name]).rows for name in (ta, tb)}
        assert _entry_for(target).valid() and _entry_for(other).valid()

        if mutation == "insert":
            s.execute(f"INSERT INTO {target} VALUES (100, 100)")
            expected = [(baseline[target][0][0] + 100,)]
        elif mutation == "delete":
            s.execute(f"DELETE FROM {target} WHERE k < 5")
            expected = [(baseline[target][0][0] - sum(range(1, 6)),)]
        elif mutation == "update":
            s.execute(f"UPDATE {target} SET v = 0 WHERE k = 0")
            expected = [(baseline[target][0][0] - 1,)]
        elif mutation == "vacuum":
            s.execute(f"VACUUM {target}")
            expected = baseline[target]
        else:  # corrupt: the fault injector's bit-flip path
            block = next(
                block
                for store in _CLUSTER.slice_stores
                if store.has_shard(target)
                for block in store.shard(target).chain("v").blocks
            )
            block.corrupt()
            expected = None  # the table is unreadable until repaired

        # Exactly the mutated table's entry died ...
        stale = _entry_for(target)
        assert stale is None or not stale.valid()
        assert _entry_for(other) is not None and _entry_for(other).valid()
        # ... its next read recomputes fresh (and correct) rows ...
        if expected is not None:
            fresh = s.execute(sql[target])
            assert not fresh.stats.result_cache_hit
            assert fresh.rows == expected
        # ... and the untouched table keeps hitting.
        kept = s.execute(sql[other])
        assert kept.stats.result_cache_hit
        assert kept.rows == baseline[other]
    finally:
        for name in (ta, tb):
            s.execute(f"DROP TABLE {name}")
