"""Differential testing against SQLite.

The same randomized data is loaded into this engine (distributed over four
slices) and into in-memory SQLite; the same queries must produce the same
multiset of rows. The query pool stays inside the dialect intersection
where both systems define identical semantics (integer arithmetic
truncating toward zero, NULL-propagating comparisons, NULL group keys
collapsing, inner/left joins); rows are compared as multisets so ORDER BY
NULL-placement differences never matter.
"""

import sqlite3

from hypothesis import given, settings, strategies as st

from repro import Cluster

values = st.one_of(st.none(), st.integers(-50, 50))
rows_strategy = st.lists(
    st.tuples(values, values, values), min_size=0, max_size=80
)

PREDICATES = [
    "a > 5",
    "a <= b",
    "b = c",
    "a + b > c",
    "a BETWEEN -10 AND 10",
    "a IN (1, 2, 3, -4)",
    "a IS NULL",
    "b IS NOT NULL",
    "a > 0 AND b < 10",
    "a < -20 OR c > 20",
    "a % 7 = 0",
    "a * b >= c",
]

AGGREGATE_QUERIES = [
    "SELECT count(*) FROM r",
    "SELECT count(b), sum(b), min(b), max(b) FROM r",
    "SELECT avg(a) FROM r WHERE a IS NOT NULL",
    "SELECT a, count(*) FROM r GROUP BY a",
    "SELECT b, sum(c) FROM r GROUP BY b",
    "SELECT a, count(*) FROM r GROUP BY a HAVING count(*) > 1",
    "SELECT count(DISTINCT a) FROM r",
]


def load_both(rows):
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=16)
    session = cluster.connect()
    session.execute("CREATE TABLE r (a int, b int, c int)")
    if rows:
        sql_values = ",".join(
            "(" + ",".join("NULL" if v is None else str(v) for v in row) + ")"
            for row in rows
        )
        session.execute(f"INSERT INTO r VALUES {sql_values}")

    reference = sqlite3.connect(":memory:")
    reference.execute("CREATE TABLE r (a int, b int, c int)")
    reference.executemany("INSERT INTO r VALUES (?, ?, ?)", rows)
    return session, reference


def multiset(rows):
    normalized = []
    for row in rows:
        normalized.append(
            tuple(
                float(v) if isinstance(v, float) else v for v in row
            )
        )
    return sorted(normalized, key=repr)


def agree(session, reference, sql):
    engine_rows = session.execute(sql).rows
    sqlite_rows = reference.execute(sql).fetchall()
    assert multiset(engine_rows) == multiset(sqlite_rows), sql


@given(rows_strategy, st.sampled_from(PREDICATES))
@settings(max_examples=60, deadline=None)
def test_filters_agree(rows, predicate):
    session, reference = load_both(rows)
    agree(session, reference, f"SELECT a, b, c FROM r WHERE {predicate}")


@given(rows_strategy, st.sampled_from(AGGREGATE_QUERIES))
@settings(max_examples=60, deadline=None)
def test_aggregates_agree(rows, sql):
    session, reference = load_both(rows)
    agree(session, reference, sql)


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_self_join_agrees(rows):
    session, reference = load_both(rows)
    agree(
        session,
        reference,
        "SELECT x.a, y.b FROM r x JOIN r y ON x.a = y.a WHERE x.b > y.b",
    )


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_left_join_agrees(rows):
    session, reference = load_both(rows)
    agree(
        session,
        reference,
        "SELECT x.a, y.c FROM r x LEFT JOIN r y ON x.b = y.b AND y.c > 0",
    )


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_case_expression_agrees(rows):
    session, reference = load_both(rows)
    agree(
        session,
        reference,
        "SELECT CASE WHEN a > 0 THEN 1 WHEN a < 0 THEN -1 ELSE 0 END, "
        "count(*) FROM r WHERE a IS NOT NULL GROUP BY 1",
    )


@given(rows_strategy)
@settings(max_examples=20, deadline=None)
def test_set_operations_agree(rows):
    session, reference = load_both(rows)
    for op in ("UNION", "UNION ALL", "INTERSECT", "EXCEPT"):
        agree(
            session,
            reference,
            f"SELECT a FROM r WHERE a > 0 {op} SELECT b FROM r WHERE b < 0",
        )


@given(rows_strategy)
@settings(max_examples=20, deadline=None)
def test_scalar_subquery_agrees(rows):
    session, reference = load_both(rows)
    agree(
        session,
        reference,
        "SELECT count(*) FROM r WHERE a = (SELECT max(a) FROM r)",
    )
