"""Property: the distributed engine agrees with a naive Python oracle.

Random datasets are loaded into a multi-slice cluster and queried; the
same computation is done with plain Python over the same rows. Any
disagreement is an engine bug (distribution, visibility, pruning, or
executor). Both executors are exercised.
"""

from hypothesis import given, settings, strategies as st

from repro import Cluster

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 20),                    # k
        st.one_of(st.none(), st.integers(-100, 100)),  # v
    ),
    min_size=0,
    max_size=120,
)

diststyle = st.sampled_from(
    ["DISTKEY(k)", "DISTSTYLE EVEN", "DISTSTYLE ALL"]
)


def build(rows, dist):
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=16)
    session = cluster.connect()
    session.execute(f"CREATE TABLE t (k int, v int) {dist}")
    if rows:
        values = ",".join(
            f"({k}, {'NULL' if v is None else v})" for k, v in rows
        )
        session.execute(f"INSERT INTO t VALUES {values}")
    return session


@given(rows_strategy, diststyle, st.sampled_from(["volcano", "compiled"]))
@settings(max_examples=40, deadline=None)
def test_count_and_sum(rows, dist, executor):
    session = build(rows, dist)
    session.set_executor(executor)
    result = session.execute("SELECT count(*), count(v), sum(v) FROM t")
    non_null = [v for _, v in rows if v is not None]
    assert result.rows == [
        (len(rows), len(non_null), sum(non_null) if non_null else None)
    ]


@given(rows_strategy, diststyle, st.integers(-50, 50))
@settings(max_examples=40, deadline=None)
def test_filtered_scan(rows, dist, threshold):
    session = build(rows, dist)
    result = session.execute(f"SELECT count(*) FROM t WHERE v > {threshold}")
    expected = sum(1 for _, v in rows if v is not None and v > threshold)
    assert result.scalar() == expected


@given(rows_strategy, diststyle)
@settings(max_examples=30, deadline=None)
def test_group_by(rows, dist):
    session = build(rows, dist)
    result = session.execute(
        "SELECT k, count(*) FROM t GROUP BY k ORDER BY k"
    )
    expected: dict[int, int] = {}
    for k, _ in rows:
        expected[k] = expected.get(k, 0) + 1
    assert result.rows == sorted(expected.items())


@given(rows_strategy, st.sampled_from(["volcano", "compiled"]))
@settings(max_examples=30, deadline=None)
def test_self_join(rows, executor):
    session = build(rows, "DISTKEY(k)")
    session.set_executor(executor)
    result = session.execute(
        "SELECT count(*) FROM t a JOIN t b ON a.k = b.k"
    )
    counts: dict[int, int] = {}
    for k, _ in rows:
        counts[k] = counts.get(k, 0) + 1
    assert result.scalar() == sum(c * c for c in counts.values())


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_order_by_matches_oracle(rows):
    session = build(rows, "DISTSTYLE EVEN")
    result = session.execute("SELECT k, v FROM t ORDER BY v DESC, k")
    def key(row):
        k, v = row
        # DESC: NULLS FIRST, then descending v, then ascending k.
        return (0 if v is None else 1, -(v or 0), k)
    assert result.rows == sorted([tuple(r) for r in rows], key=key)


@given(rows_strategy, st.integers(0, 20))
@settings(max_examples=25, deadline=None)
def test_delete_then_count(rows, kill):
    session = build(rows, "DISTKEY(k)")
    session.execute(f"DELETE FROM t WHERE k = {kill}")
    expected = sum(1 for k, _ in rows if k != kill)
    assert session.execute("SELECT count(*) FROM t").scalar() == expected
    session.execute("VACUUM t")
    assert session.execute("SELECT count(*) FROM t").scalar() == expected
