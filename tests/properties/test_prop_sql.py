"""Property: generated SQL expressions parse, render, and re-parse stably,
and both executors agree on them."""

from hypothesis import given, settings, strategies as st

from repro import Cluster
from repro.sql import parse_expression

# A recursive generator of well-formed scalar SQL expressions over
# columns k (int) and v (int, nullable).
atoms = st.sampled_from(["k", "v", "1", "7", "NULL", "'x'", "0.5", "TRUE"])
numeric_atoms = st.sampled_from(["k", "v", "1", "7", "0.5"])


def exprs(depth: int) -> st.SearchStrategy[str]:
    if depth == 0:
        return numeric_atoms
    sub = exprs(depth - 1)
    return st.one_of(
        numeric_atoms,
        st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, st.sampled_from(["<", "<=", "=", "<>"]), sub).map(
            lambda t: f"CASE WHEN {t[0]} {t[1]} {t[2]} THEN 1 ELSE 0 END"
        ),
        sub.map(lambda e: f"abs({e})"),
        sub.map(lambda e: f"coalesce({e}, 0)"),
    )


@given(exprs(3))
@settings(max_examples=80, deadline=None)
def test_render_parse_fixpoint(text):
    first = parse_expression(text)
    second = parse_expression(first.to_sql())
    assert first.to_sql() == second.to_sql()


@given(st.lists(exprs(2), min_size=1, max_size=3))
@settings(max_examples=25, deadline=None)
def test_executors_agree_on_generated_expressions(expressions):
    cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=16)
    session = cluster.connect()
    session.execute("CREATE TABLE t (k int, v int)")
    session.execute(
        "INSERT INTO t VALUES (1, 10), (2, NULL), (3, -5), (4, 0)"
    )
    select_list = ", ".join(expressions)
    sql = f"SELECT {select_list} FROM t ORDER BY k"
    session.set_executor("volcano")
    volcano = session.execute(sql).rows
    session.set_executor("compiled")
    compiled = session.execute(sql).rows

    def normalize(rows):
        return [
            tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows
        ]

    assert normalize(volcano) == normalize(compiled)
