"""Property: volcano, compiled, vectorized and parallel agree on
generated queries.

A NULL-heavy fact/dimension pair is loaded once into a multi-slice,
small-block cluster; hypothesis then generates SELECTs combining filters,
joins, aggregates, sorts and limits, and every query is run through all
four executors. Results must match row-for-row (sorted, floats rounded
to soak up non-associative summation order) and the scan layer must skip
exactly the same blocks — the vectorized batch path may change *how*
blocks are decoded (cache, whole-vector reads) but never *which* blocks a
query touches, and the parallel engine's morsel split must neither read
extra blocks nor lose the skips.

The parallel engine additionally runs degenerate (parallelism 1, inline)
and adversarial (every-morsel worker-crash injection, forcing serial
re-execution of each morsel) variants, which must also match.
"""

import re

from hypothesis import given, settings, strategies as st

from repro import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


def _build():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=16)
    s = cluster.connect()
    s.execute(
        "CREATE TABLE t (k int, v int, s varchar(8), f float) "
        "DISTKEY(k) SORTKEY(v)"
    )
    s.execute("CREATE TABLE d (k int, label varchar(8)) DISTSTYLE ALL")
    rows = []
    for i in range(200):
        v = "NULL" if i % 7 == 0 else str((i * 13) % 150 - 40)
        sv = "NULL" if i % 5 == 0 else f"'s{i % 11}'"
        f = "NULL" if i % 13 == 0 else str(round((i % 37) * 0.75, 2))
        rows.append(f"({i % 23}, {v}, {sv}, {f})")
    s.execute(f"INSERT INTO t VALUES {','.join(rows)}")
    s.execute(
        "INSERT INTO d VALUES "
        + ",".join(f"({k}, 'd{k % 4}')" for k in range(0, 23, 2))
    )
    return cluster


_CLUSTER = _build()
_SESSIONS = {name: _CLUSTER.connect(executor=name) for name in EXECUTORS}

# Degenerate and adversarial parallel variants: parallelism 1 (morsels
# run inline on the leader) and a cluster where every dispatched morsel's
# worker crashes, so each one is recovered by serial re-execution.
_SESSIONS["parallel-1"] = _CLUSTER.connect(executor="parallel", parallelism=1)
_CRASH_CLUSTER = _build()
_CRASH_CLUSTER.attach_faults(
    FaultInjector(FaultPlan(seed=11).worker_crashes(rate=1.0))
)
_SESSIONS["parallel-crashy"] = _CRASH_CLUSTER.connect(
    executor="parallel", parallelism=2
)
# Stats parity needs every variant to really execute: a result-cache hit
# (legitimately) scans nothing, so the cache is off for these sessions.
for _session in _SESSIONS.values():
    _session.execute("SET enable_result_cache = off")
_VARIANTS = tuple(_SESSIONS)


def normalize(rows):
    return sorted(
        (
            tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows
        ),
        key=repr,
    )


comparisons = st.one_of(
    st.tuples(
        st.sampled_from(["k", "v", "f"]),
        st.sampled_from(["<", "<=", "=", "<>", ">=", ">"]),
        st.integers(-45, 60),
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.tuples(st.integers(-40, 40), st.integers(0, 60)).map(
        lambda t: f"v BETWEEN {t[0]} AND {t[0] + t[1]}"
    ),
    st.sampled_from(["v IS NULL", "v IS NOT NULL", "s IS NOT NULL"]),
    st.sampled_from(["k < v", "v < f", "s = 's3'", "s <> 's1'"]),
)


@st.composite
def predicates(draw):
    parts = draw(st.lists(comparisons, min_size=1, max_size=3))
    glue = draw(st.sampled_from([" AND ", " OR "]))
    return glue.join(parts)


def _qualify(pred):
    """Prefix bare fact-table columns so join queries stay unambiguous
    (both t and d have a column k)."""
    return re.sub(r"\b(k|v|s|f)\b", r"t.\1", pred)


@st.composite
def queries(draw):
    pred = draw(predicates())
    shape = draw(st.integers(0, 5))
    if shape == 0:
        limit = draw(st.integers(1, 50))
        return (
            f"SELECT k, v, s FROM t WHERE {pred} "
            f"ORDER BY k, v, s LIMIT {limit}"
        )
    if shape == 1:
        modulus = draw(st.integers(2, 6))
        return (
            f"SELECT k % {modulus}, count(*), count(v), sum(v), "
            f"min(v), max(v) FROM t WHERE {pred} GROUP BY 1"
        )
    if shape == 2:
        return (
            f"SELECT count(*), sum(v), avg(f), count(s) FROM t WHERE {pred}"
        )
    if shape == 3:
        return (
            "SELECT d.label, count(*), sum(t.v) FROM t "
            f"JOIN d ON t.k = d.k WHERE {_qualify(pred)} GROUP BY d.label"
        )
    if shape == 4:
        return (
            "SELECT t.k, t.v, d.label FROM t "
            f"LEFT JOIN d ON t.k = d.k AND d.label <> 'd1' "
            f"WHERE {_qualify(pred)}"
        )
    return f"SELECT DISTINCT s FROM t WHERE {pred} ORDER BY s"


@given(queries())
@settings(max_examples=60, deadline=None)
def test_four_way_parity(sql):
    results = {name: _SESSIONS[name].execute(sql) for name in _VARIANTS}
    reference = normalize(results["volcano"].rows)
    for name in _VARIANTS:
        if name != "volcano":
            assert normalize(results[name].rows) == reference, (name, sql)
    skipped = {
        name: results[name].stats.scan.blocks_skipped for name in _VARIANTS
    }
    assert len(set(skipped.values())) == 1, (skipped, sql)


@given(predicates())
@settings(max_examples=30, deadline=None)
def test_scan_row_and_block_accounting_matches(pred):
    sql = f"SELECT count(*) FROM t WHERE {pred}"
    results = [_SESSIONS[name].execute(sql) for name in _VARIANTS]
    assert len({r.rows[0][0] for r in results}) == 1
    assert len({r.stats.scan.blocks_read for r in results}) == 1
    assert len({r.stats.scan.blocks_total for r in results}) == 1
