"""Property: memory-governed (spilling) execution is bit-identical to
unbounded execution under all four executors.

A shared multi-slice cluster is loaded once; hypothesis generates
join/aggregate/sort SELECTs and every query runs twice per executor —
through an unbounded session and through a session whose
``query_memory_limit`` is far below the working set, so hash-join
builds grace-hash partition, aggregate states flush generations, and
sorts fall back to external run merges. Rows must match EXACTLY (same
values, same order — no sorting, no float rounding): the spill
subsystem's first invariant is that spilling is invisible to results.

A fixed-seed companion test repeats representative queries with a
``DISK_MEDIA_WINDOW`` active, so spill reads/writes hit injected media
errors and recover (backoff retry inside the spill layer, segment retry
above it) — still bit-identical to the clean unbounded run.
"""

from hypothesis import given, settings, strategies as st

from repro import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")

#: Far below any query's working set on this data: forces spilling of
#: joins, aggregations and sorts while staying large enough that the
#: per-partition write buffers make progress.
TINY_BUDGET = 2048


def _load(cluster):
    s = cluster.connect()
    s.execute(
        "CREATE TABLE f (id int, k int, v int, grp int) DISTKEY(id)"
    )
    s.execute("CREATE TABLE d (k int, label varchar(8)) DISTSTYLE ALL")
    rows = []
    for i in range(600):
        v = "NULL" if i % 11 == 0 else str((i * 13) % 350 - 60)
        rows.append(f"({i}, {i % 37}, {v}, {i % 9})")
    s.execute(f"INSERT INTO f VALUES {','.join(rows)}")
    s.execute(
        "INSERT INTO d VALUES "
        + ",".join(f"({k}, 'd{k % 5}')" for k in range(0, 37, 2))
    )
    return cluster


def _build():
    return _load(Cluster(node_count=2, slices_per_node=2, block_capacity=32))


_CLUSTER = _build()
_UNBOUNDED = {
    name: _CLUSTER.connect(executor=name, parallelism=2)
    for name in EXECUTORS
}
_GOVERNED = {
    name: _CLUSTER.connect(
        executor=name, parallelism=2, memory_limit=TINY_BUDGET
    )
    for name in EXECUTORS
}
for _s in (*_UNBOUNDED.values(), *_GOVERNED.values()):
    _s.execute("SET enable_result_cache = off")


predicates = st.one_of(
    st.tuples(
        st.sampled_from(["f.k", "f.v", "f.grp"]),
        st.sampled_from(["<", "<=", "=", "<>", ">=", ">"]),
        st.integers(-60, 290),
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.sampled_from(["f.v IS NOT NULL", "f.v IS NULL", "f.id % 2 = 0"]),
)


@st.composite
def queries(draw):
    pred = draw(predicates)
    shape = draw(st.integers(0, 4))
    if shape == 0:
        # Hash aggregate over many groups + sort: agg + sorter spill.
        return (
            "SELECT f.k, f.grp, count(*), sum(f.v), min(f.v), max(f.v) "
            f"FROM f WHERE {pred} GROUP BY f.k, f.grp "
            "ORDER BY sum(f.v) DESC, f.k, f.grp"
        )
    if shape == 1:
        # Join build spill (grace-hash) + aggregate.
        return (
            "SELECT d.label, count(*), sum(f.v) FROM f "
            f"JOIN d ON f.k = d.k WHERE {pred} "
            "GROUP BY d.label ORDER BY d.label"
        )
    if shape == 2:
        # Probe-order row output through a spilled build table.
        return (
            "SELECT f.id, f.v, d.label FROM f JOIN d ON f.k = d.k "
            f"WHERE {pred} ORDER BY f.id LIMIT 80"
        )
    if shape == 3:
        # LEFT join: unmatched-probe emission order must survive spill.
        return (
            "SELECT f.id, d.label FROM f LEFT JOIN d ON f.k = d.k "
            f"WHERE {pred} ORDER BY f.id DESC LIMIT 60"
        )
    # Global aggregate (single group) over a spilled join.
    return (
        "SELECT count(*), sum(f.v), avg(f.v) FROM f "
        f"JOIN d ON f.k = d.k WHERE {pred}"
    )


@given(queries())
@settings(max_examples=40, deadline=None)
def test_tiny_budget_runs_bit_identical(sql):
    for name in EXECUTORS:
        expected = _UNBOUNDED[name].execute(sql)
        governed = _GOVERNED[name].execute(sql)
        # EXACT comparison: same rows, same order, same values.
        assert governed.rows == expected.rows, (name, sql)
        assert governed.rowcount == expected.rowcount, (name, sql)


def test_working_set_queries_actually_spill():
    """The budget really is tiny: the heavy shapes report spill activity
    (otherwise the property above would be testing nothing)."""
    sql = (
        "SELECT f.k, f.grp, count(*), sum(f.v) FROM f JOIN d ON f.k = d.k "
        "GROUP BY f.k, f.grp ORDER BY sum(f.v) DESC, f.k, f.grp"
    )
    for name in EXECUTORS:
        result = _GOVERNED[name].execute(sql)
        assert result.stats.spilled_bytes > 0, name
        assert result.stats.spill_partitions > 0, name
        assert result.stats.spill_events, name
        assert result.rows == _UNBOUNDED[name].execute(sql).rows, name


def test_unbounded_sessions_never_spill():
    sql = "SELECT f.k, count(*) FROM f GROUP BY f.k ORDER BY f.k"
    for name in EXECUTORS:
        result = _UNBOUNDED[name].execute(sql)
        assert result.stats.spilled_bytes == 0, name
        assert not result.stats.spill_events, name


class TestSpillParityUnderMediaFaults:
    """Spilled execution with a DISK_MEDIA_WINDOW active recovers (spill
    retries + segment retries) and stays bit-identical to a clean
    unbounded run. Fixed seeds: the injector's draws are deterministic,
    so these scenarios replay identically every run."""

    QUERIES = (
        "SELECT f.k, f.grp, count(*), sum(f.v) FROM f JOIN d ON f.k = d.k "
        "GROUP BY f.k, f.grp ORDER BY sum(f.v) DESC, f.k, f.grp",
        "SELECT f.id, f.v, d.label FROM f JOIN d ON f.k = d.k "
        "WHERE f.v IS NOT NULL ORDER BY f.id LIMIT 80",
        "SELECT count(*), sum(f.v) FROM f WHERE f.grp < 7",
    )

    def _faulty_cluster(self, seed):
        cluster = _build()
        # One disk's IO (block reads AND spill IO) fails ~2% of the
        # time. Spill reads/writes retry internally with backoff; scan
        # reads surface to the session's segment retry. The rate is low
        # enough that MAX_SEGMENT_RETRIES always absorbs the scan hits
        # for this seed (deterministic draws).
        cluster.attach_faults(
            FaultInjector(
                FaultPlan(seed=seed).disk_media_errors(
                    0.0, 1e9, rate=0.02, disk_id="node-1-s0-disk"
                )
            )
        )
        cluster.recovery_handler = lambda exc: True
        return cluster

    def test_bit_identical_under_media_window(self):
        for name in EXECUTORS:
            cluster = self._faulty_cluster(seed=42)
            session = cluster.connect(
                executor=name, parallelism=2, memory_limit=TINY_BUDGET
            )
            session.execute("SET enable_result_cache = off")
            for sql in self.QUERIES:
                expected = _UNBOUNDED[name].execute(sql)
                assert session.execute(sql).rows == expected.rows, (name, sql)
            cluster.close()

    def test_media_faults_really_fired(self):
        cluster = self._faulty_cluster(seed=42)
        session = cluster.connect(
            executor="volcano", memory_limit=TINY_BUDGET
        )
        session.execute("SET enable_result_cache = off")
        for sql in self.QUERIES:
            session.execute(sql)
        kinds = [event.kind for event in cluster.fault_injector.log]
        assert "disk_media_window" in kinds
        cluster.close()
