"""Property: the cost-based optimizer never changes answers.

A small star schema (two key-distributed dimensions, a fact, and a
replicated lookup) is loaded once with fresh statistics; hypothesis then
generates multi-join SELECTs — explicit JOIN chains in randomized
written orders, comma joins whose equi predicates live in the WHERE
clause, and sorted co-located pairs that take the merge-join path — and
every query runs with ``enable_cbo`` both off (written-order planning)
and on (System-R enumeration + operator selection) on all four
executors. The eight result sets must match row-for-row (sorted, floats
rounded to soak up non-associative summation order): a plan flip that
changes answers is a correctness bug, not an optimization.
"""

from hypothesis import given, settings, strategies as st

from repro import Cluster

EXECUTORS = ("volcano", "compiled", "vectorized", "parallel")


def _build():
    cluster = Cluster(node_count=2, slices_per_node=2, block_capacity=32)
    s = cluster.connect()
    s.execute("CREATE TABLE a (id int, g int, w int) DISTKEY(id) SORTKEY(id)")
    s.execute("CREATE TABLE b (id int, g int) DISTKEY(id) SORTKEY(id)")
    s.execute("CREATE TABLE f (a_id int, b_id int, v int) DISTKEY(a_id)")
    s.execute("CREATE TABLE lk (g int, label varchar(8)) DISTSTYLE ALL")
    a_rows = []
    for i in range(60):
        w = "NULL" if i % 9 == 0 else str((i * 5) % 40)
        a_rows.append(f"({i}, {i % 6}, {w})")
    s.execute(f"INSERT INTO a VALUES {','.join(a_rows)}")
    s.execute(
        "INSERT INTO b VALUES "
        + ",".join(f"({i}, {i % 4})" for i in range(45))
    )
    f_rows = []
    for i in range(150):
        v = "NULL" if i % 11 == 0 else str(i % 70 - 20)
        f_rows.append(f"({(i * 7) % 70}, {i % 50}, {v})")
    s.execute(f"INSERT INTO f VALUES {','.join(f_rows)}")
    s.execute(
        "INSERT INTO lk VALUES "
        + ",".join(f"({g}, 'g{g}')" for g in range(6))
    )
    s.execute("ANALYZE")
    return cluster


_CLUSTER = _build()
_SESSIONS = {name: _CLUSTER.connect(executor=name) for name in EXECUTORS}
for _session in _SESSIONS.values():
    _session.execute("SET enable_result_cache = off")


def normalize(rows):
    return sorted(
        (
            tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows
        ),
        key=repr,
    )


predicates = st.sampled_from(
    [
        "f.v > 0",
        "f.v IS NOT NULL",
        "a.g < 4",
        "a.w IS NULL OR f.v < 10",
        "a.id < 40 AND f.v <> 3",
        "b.g = 2",
        "f.b_id BETWEEN 5 AND 30",
    ]
)


@st.composite
def queries(draw):
    shape = draw(st.integers(0, 4))
    pred = draw(predicates)
    if shape == 0:
        # Explicit chain in a randomized (often pathological) order:
        # the dimension-dimension equi join on g explodes when taken
        # first, so the enumerator reorders it.
        order = draw(
            st.sampled_from(
                [
                    "a JOIN b ON a.g = b.g JOIN f "
                    "ON f.a_id = a.id AND f.b_id = b.id",
                    "f JOIN a ON f.a_id = a.id JOIN b ON f.b_id = b.id",
                    "b JOIN f ON f.b_id = b.id JOIN a ON f.a_id = a.id",
                ]
            )
        )
        return (
            f"SELECT count(*), sum(f.v), min(a.w) FROM {order} WHERE {pred}"
        )
    if shape == 1:
        # Comma join: equi edges come entirely from the WHERE clause.
        return (
            "SELECT count(*), sum(f.v) FROM f, a, b "
            f"WHERE f.a_id = a.id AND f.b_id = b.id AND {pred}"
        )
    if shape == 2:
        # Four-way with a replicated lookup hanging off a dimension.
        return (
            "SELECT lk.label, count(*), sum(f.v) FROM f "
            "JOIN a ON f.a_id = a.id JOIN b ON f.b_id = b.id "
            f"JOIN lk ON lk.g = a.g WHERE {pred} GROUP BY lk.label"
        )
    if shape == 3:
        # Sorted co-located pair: eligible for the merge join.
        if "b." in pred or "f." in pred:
            pred = "a.g < 5"
        limit = draw(st.integers(1, 40))
        return (
            "SELECT a.id, a.w, b.g FROM a JOIN b ON a.id = b.id "
            f"WHERE {pred} ORDER BY a.id, b.g LIMIT {limit}"
        )
    # Outer join above a reorderable inner region (no table b here).
    if "b." in pred:
        pred = "f.v IS NOT NULL"
    return (
        "SELECT count(*), count(lk.label) FROM f "
        "JOIN a ON f.a_id = a.id LEFT JOIN lk "
        f"ON lk.g = a.g AND lk.g <> 2 WHERE {pred}"
    )


@given(queries())
@settings(max_examples=60, deadline=None)
def test_cbo_on_off_parity_across_executors(sql):
    reference = None
    for name in EXECUTORS:
        session = _SESSIONS[name]
        rows = {}
        for cbo in ("off", "on"):
            session.execute(f"SET enable_cbo = {cbo}")
            rows[cbo] = normalize(session.execute(sql).rows)
        assert rows["on"] == rows["off"], (name, sql)
        if reference is None:
            reference = rows["on"]
        assert rows["on"] == reference, (name, sql)
