"""Property: snapshot isolation holds under concurrent sessions.

Writers commit multi-statement transactions that insert a fixed-size
batch of rows under one unique marker; readers continuously aggregate
per-marker counts. Snapshot isolation means a reader can never observe
a transaction's partial effect — every marker count it sees is either
zero (not yet committed, or the commit's epoch-bumped re-read hasn't
landed) or the full batch size. After all writers join, the final state
must equal the serial sum of every committed batch.

The property runs on all four executors; the parallel executor uses
thread pools because forked workers cannot share the in-process
cluster under test.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import Cluster

EXECUTORS = ["volcano", "compiled", "vectorized", "parallel"]

WRITERS = 3
TXNS_PER_WRITER = 4
READERS = 2


def _connect(cluster: Cluster, executor: str):
    if executor == "parallel":
        return cluster.connect(executor=executor, pool_mode="thread")
    return cluster.connect(executor=executor)


@pytest.mark.parametrize("executor", EXECUTORS)
@given(batch=st.integers(min_value=2, max_value=6))
@settings(max_examples=2, deadline=None)
def test_no_partial_commits_visible(executor: str, batch: int):
    cluster = Cluster(node_count=1, slices_per_node=2, block_capacity=64)
    setup = cluster.connect()
    setup.execute("CREATE TABLE t (marker int, v int)")
    violations: list[str] = []
    errors: list[Exception] = []
    done = threading.Event()
    barrier = threading.Barrier(WRITERS + READERS)

    def values(marker: int, count: int) -> str:
        return ",".join(f"({marker}, {i})" for i in range(count))

    def writer(wid: int) -> None:
        try:
            session = _connect(cluster, executor)
            barrier.wait()
            for txn in range(TXNS_PER_WRITER):
                marker = wid * 100 + txn
                # Two statements inside one transaction: a reader that
                # saw only the first would observe a partial commit.
                session.execute("BEGIN")
                session.execute(
                    f"INSERT INTO t VALUES {values(marker, batch)}"
                )
                session.execute(
                    f"INSERT INTO t VALUES {values(marker, batch)}"
                )
                session.execute("COMMIT")
        except Exception as exc:  # noqa: BLE001 — collected for assert
            errors.append(exc)

    def reader() -> None:
        try:
            session = _connect(cluster, executor)
            barrier.wait()
            while not done.is_set():
                rows = session.execute(
                    "SELECT marker, count(*) FROM t GROUP BY marker"
                ).rows
                for marker, count in rows:
                    if count % (2 * batch) != 0:
                        violations.append(
                            f"marker {marker}: saw {count} rows, "
                            f"not a multiple of {2 * batch}"
                        )
        except Exception as exc:  # noqa: BLE001 — collected for assert
            errors.append(exc)

    writer_threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)
    ]
    reader_threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in writer_threads + reader_threads:
        thread.start()
    for thread in writer_threads:
        thread.join(timeout=60)
    done.set()
    for thread in reader_threads:
        thread.join(timeout=60)
    assert errors == []
    assert violations == []

    # Final state equals the serial replay of the committed transactions.
    final = _connect(cluster, executor)
    total = final.execute("SELECT count(*) FROM t").scalar()
    assert total == WRITERS * TXNS_PER_WRITER * 2 * batch
    per_marker = final.execute(
        "SELECT marker, count(*) FROM t GROUP BY marker"
    ).rows
    assert len(per_marker) == WRITERS * TXNS_PER_WRITER
    assert all(count == 2 * batch for _, count in per_marker)
