"""Deterministic fault injection and end-to-end recovery.

The paper's §5 lesson — "design escalators, not elevators" — is a claim
about behaviour under dependency failure. This package gives every
resilience experiment a shared, reproducible fault vocabulary
(:class:`FaultPlan`), a single consultation point for the simulated
dependencies (:class:`FaultInjector`), the retry/backoff policy for cloud
clients (:func:`with_backoff`), and the recovery paths the claims rest on
(:class:`RecoveryCoordinator`, :class:`ChaosOrchestrator`).
"""

from repro.faults.chaos import ChaosOrchestrator
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryCoordinator, RecoveryReport
from repro.faults.retry import RetryPolicy, with_backoff

__all__ = [
    "ChaosOrchestrator",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RecoveryCoordinator",
    "RecoveryReport",
    "RetryPolicy",
    "with_backoff",
]
