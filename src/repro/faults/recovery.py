"""End-to-end failure recovery: the escalator side of fault injection.

The :class:`RecoveryCoordinator` is the leader-side handler behind segment
retry: when query execution hits a recoverable fault, the session calls
:meth:`handle_query_fault`, which repairs the cause — replica failover for
a dead node, scrub-and-repair for a corrupt block — and tells the session
to retry. While redundancy is lost the cluster degrades to read-only
rather than failing (§5: "design escalators, not elevators"); it returns
to read-write once re-replication completes. Every action is appended to
the shared fault injector's log so recovery is as reproducible as the
faults themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    BlockCorruptionError,
    DiskMediaError,
    NodeFailureError,
    ReproError,
)
from repro.faults.injector import FaultInjector


@dataclass
class RecoveryReport:
    """What one recovery pass did."""

    action: str
    target: str
    bytes_restored: int = 0
    blocks_repaired: int = 0
    duration_s: float = 0.0
    succeeded: bool = True
    detail: str = ""


class RecoveryCoordinator:
    """Repairs faults so queries can retry instead of failing.

    Installs itself as ``cluster.recovery_handler``; sessions consult that
    hook when execution raises one of
    :data:`repro.errors.QUERY_RECOVERABLE_ERRORS`.
    """

    def __init__(
        self,
        cluster,
        replication=None,
        s3_reader: Callable[[str], bytes | None] | None = None,
        injector: FaultInjector | None = None,
        clock=None,
        on_degraded: Callable[[str], None] | None = None,
        on_recovered: Callable[[], None] | None = None,
    ):
        self._cluster = cluster
        self._replication = replication
        self._s3_reader = s3_reader
        self._injector = injector
        self._clock = clock
        self._on_degraded = on_degraded
        self._on_recovered = on_recovered
        self.reports: list[RecoveryReport] = []
        cluster.recovery_handler = self.handle_query_fault

    # ---- logging -----------------------------------------------------------

    def _record(self, action: str, target: str = "", detail: str = "") -> None:
        if self._injector is not None:
            self._injector.record(f"recovery:{action}", target, detail)

    # ---- the segment-retry handler -----------------------------------------

    def handle_query_fault(self, exc: Exception) -> bool:
        """Repair the cause of a recoverable query fault.

        Returns True when the session should retry the failed segment.
        """
        if isinstance(exc, NodeFailureError):
            return self.recover_node(exc.node_id)
        if isinstance(exc, BlockCorruptionError):
            report = self.scrub()
            return report.blocks_repaired > 0 or report.succeeded
        if isinstance(exc, DiskMediaError):
            # Transient by definition: the retry itself is the recovery.
            self._record("media_retry", exc.disk_id, exc.op)
            return True
        return False

    # ---- node failover -----------------------------------------------------

    def recover_node(self, node_id: str) -> bool:
        """Replica failover: rebuild a dead node's slices from mirrors.

        The cluster is read-only while redundancy is lost and returns to
        read-write once every slice is rebuilt. A real engine mirrors
        synchronously on commit; the simulation's sync point runs first so
        recovery starts from the replicated state a real cluster would
        have had at the moment of the crash.
        """
        if self._replication is None:
            self._degrade(f"node {node_id} lost with no replication")
            self._record("failover_impossible", node_id, "no replication")
            return False
        self._degrade(f"node {node_id} down, redundancy lost")
        self._record("failover_start", node_id)
        self._replication.sync_from_cluster()
        failed_slices = self._replication.fail_node(node_id)
        report = RecoveryReport(action="node_failover", target=node_id)
        try:
            for slice_id in failed_slices:
                nbytes, duration = self._replication.recover_slice(
                    slice_id, self._s3_reader
                )
                report.bytes_restored += nbytes
                report.duration_s += duration
                if self._clock is not None:
                    self._clock.advance(duration)
                self._record(
                    "slice_rebuilt", slice_id, f"{nbytes} bytes"
                )
        except ReproError as exc:
            report.succeeded = False
            report.detail = str(exc)
            self.reports.append(report)
            self._record("failover_failed", node_id, str(exc))
            return False
        if self._injector is not None:
            self._injector.mark_node_recovered(node_id)
        self.reports.append(report)
        self._record(
            "failover_done", node_id, f"{report.bytes_restored} bytes"
        )
        self._undegrade()
        return True

    # ---- scrub-and-repair --------------------------------------------------

    def scrub(self) -> RecoveryReport:
        """Checksum-verify every replicated block; repair corrupt copies
        from the mirror replica, falling back to the S3 backup."""
        report = RecoveryReport(action="scrub", target="cluster")
        if self._replication is None:
            report.succeeded = False
            report.detail = "no replication"
            self.reports.append(report)
            return report
        self._record("scrub_start", "cluster")
        scrub = self._replication.scrub(self._s3_reader)
        report.blocks_repaired = len(scrub.repaired)
        report.succeeded = not scrub.unrepairable
        report.detail = (
            f"{scrub.blocks_checked} checked, "
            f"{len(scrub.repaired)} repaired, "
            f"{len(scrub.unrepairable)} unrepairable"
        )
        for block_id in scrub.repaired:
            self._record("block_repaired", block_id)
        for block_id in scrub.unrepairable:
            self._record("block_unrepairable", block_id)
        self.reports.append(report)
        self._record("scrub_done", "cluster", report.detail)
        if scrub.unrepairable:
            self._degrade(
                f"{len(scrub.unrepairable)} blocks unrepairable"
            )
        return report

    # ---- degraded mode -----------------------------------------------------

    def _degrade(self, reason: str) -> None:
        if not self._cluster.read_only:
            self._cluster.set_read_only(reason)
            self._record("degraded_read_only", "cluster", reason)
            if self._on_degraded is not None:
                self._on_degraded(reason)

    def _undegrade(self) -> None:
        if self._cluster.read_only:
            self._cluster.clear_read_only()
            self._record("read_write_restored", "cluster")
            if self._on_recovered is not None:
                self._on_recovered()
