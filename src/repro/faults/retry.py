"""Exponential backoff with deterministic jitter for cloud-client calls.

The control plane talks to simulated AWS services that can now fail per
request; bare raises become :func:`with_backoff` calls so transient errors
cost simulated time instead of failing workflows. Jitter draws from a
:class:`~repro.util.rng.DeterministicRng`, so retry timing is reproducible
run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import TransientServiceError
from repro.util.rng import DeterministicRng

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: base * factor^(attempt-1), capped, jittered."""

    max_attempts: int = 5
    base_delay_s: float = 0.5
    factor: float = 2.0
    max_delay_s: float = 30.0
    jitter_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )

    def delay_for(self, attempt: int, rng: DeterministicRng | None = None) -> float:
        """Backoff before retry number *attempt* (1-based failed attempts)."""
        delay = min(
            self.max_delay_s, self.base_delay_s * self.factor ** (attempt - 1)
        )
        if rng is not None and self.jitter_fraction > 0.0:
            delay *= 1.0 + self.jitter_fraction * rng.random()
        return delay


def with_backoff(
    fn: Callable[[], T],
    *,
    clock=None,
    policy: RetryPolicy | None = None,
    rng: DeterministicRng | None = None,
    retry_on: tuple[type[Exception], ...] = (TransientServiceError,),
    on_retry: Callable[[int, Exception, float], None] | None = None,
) -> T:
    """Call *fn*, retrying *retry_on* errors with backoff on *clock*.

    The last error re-raises unchanged once attempts are exhausted, so
    callers still observe the typed failure they would have seen bare.
    """
    policy = policy or RetryPolicy()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == policy.max_attempts:
                raise
            delay = policy.delay_for(attempt, rng)
            if clock is not None:
                clock.advance(delay)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
    raise AssertionError("unreachable")  # pragma: no cover
