"""Chaos orchestration: bind a fault plan to a running system.

The orchestrator is the one place that knows how to aim a
:class:`~repro.faults.plan.FaultPlan` at live objects: it attaches the
injector to every simulated dependency (S3, EC2, disks, query execution),
schedules point faults (disk failures, block bit-flips) as SimClock
events, and stands up a :class:`~repro.faults.recovery.RecoveryCoordinator`
so the system under test recovers the way the paper says it should.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryCoordinator


class ChaosOrchestrator:
    """Wires one fault plan into one cluster and its cloud environment."""

    def __init__(self, env, target, plan: FaultPlan | None = None):
        """*target* is a ManagedCluster (control-plane drills) or a bare
        engine Cluster; *plan* defaults to the environment's own plan."""
        self.env = env
        self._managed = target if hasattr(target, "engine") else None
        self.cluster = target.engine if self._managed is not None else target
        self.replication = (
            self._managed.replication if self._managed is not None else None
        )
        self._s3_reader = (
            self._managed.backups.s3_block_reader
            if self._managed is not None and self._managed.backups is not None
            else None
        )
        if plan is not None:
            self.injector = FaultInjector(
                plan, env.clock, rng=env.rng.child(f"chaos/{plan.seed}")
            )
        else:
            self.injector = env.faults
        self.coordinator: RecoveryCoordinator | None = None
        self._installed = False

    # ---- installation ------------------------------------------------------

    def install(self) -> FaultInjector:
        """Attach the injector everywhere and schedule point faults."""
        if self._installed:
            return self.injector
        self._installed = True
        self.env.s3.attach_injector(self.injector)
        self.env.ec2.attach_injector(self.injector)
        self.cluster.attach_faults(self.injector)
        self.coordinator = RecoveryCoordinator(
            self.cluster,
            replication=self.replication,
            s3_reader=self._s3_reader,
            injector=self.injector,
            clock=self.env.clock,
            on_degraded=self._on_degraded,
            on_recovered=self._on_recovered,
        )
        now = self.env.clock.now
        for spec in self.injector.specs_of(FaultKind.DISK_FAIL):
            self._schedule(now, spec, self._fire_disk_fail)
        for spec in self.injector.specs_of(FaultKind.BLOCK_BITFLIP):
            self._schedule(now, spec, self._fire_bitflip)
        return self.injector

    def _schedule(self, now: float, spec: FaultSpec, fire) -> None:
        self.env.clock.schedule(max(0.0, spec.at_s - now), lambda: fire(spec))

    # ---- degraded-state plumbing -------------------------------------------

    def _on_degraded(self, reason: str) -> None:
        if self._managed is not None:
            from repro.controlplane.service import ClusterState

            self._managed.state = ClusterState.READ_ONLY
            self._managed.record(self.env.clock.now, f"degraded: {reason}")

    def _on_recovered(self) -> None:
        if self._managed is not None:
            from repro.controlplane.service import ClusterState

            self._managed.state = ClusterState.AVAILABLE
            self._managed.record(self.env.clock.now, "redundancy restored")

    # ---- point-fault firing ------------------------------------------------

    def _fire_disk_fail(self, spec: FaultSpec) -> None:
        for store in self.cluster.slice_stores:
            if store.disk.disk_id == spec.target:
                if self.injector.fire_once(spec):
                    store.disk.fail()
                return
        self.injector.record(
            "chaos:unresolved_target", spec.target, "no such disk"
        )

    def _fire_bitflip(self, spec: FaultSpec) -> None:
        try:
            block_id, block = self._resolve_block(spec.target)
        except StorageError as exc:
            self.injector.record("chaos:unresolved_target", spec.target, str(exc))
            return
        if self.injector.fire_once(spec, detail=block_id):
            block.corrupt()

    def _resolve_block(self, selector: str):
        """A block selector is a block id or ``"#n"`` (n-th replicated
        block in sorted id order). Returns (block_id, primary Block)."""
        if selector.startswith("#"):
            index = int(selector[1:])
            if self.replication is not None and self.replication.replicas:
                ids = sorted(self.replication.replicas)
            else:
                ids = sorted(
                    block.block_id
                    for store in self.cluster.slice_stores
                    for shard in store.shards.values()
                    for chain in shard.chains.values()
                    for block in chain.blocks
                )
            if not ids:
                raise StorageError("no blocks exist to corrupt")
            block_id = ids[index % len(ids)]
        else:
            block_id = selector
        for store in self.cluster.slice_stores:
            for shard in store.shards.values():
                for chain in shard.chains.values():
                    for block in chain.blocks:
                        if block.block_id == block_id:
                            return block_id, block
        raise StorageError(f"block {block_id!r} not found in any chain")
