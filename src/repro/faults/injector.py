"""The fault injector every simulated dependency consults.

One :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a clock. Dependencies ask it before serving work — S3 per request, EC2
per cold provision, disks per IO, query execution per node — and it
answers deterministically: window membership comes from the clock, and
rate-driven draws come from named child RNG streams of the plan seed, so
the same plan over the same call sequence fires the same faults.

Everything that fires is appended to :attr:`FaultInjector.log`, and
recovery code appends its actions to the same log via :meth:`record`, so
one ordered event list is both the fault timeline and the recovery log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    DiskMediaError,
    NodeFailureError,
    S3TransientError,
    ServiceUnavailableError,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the combined fault/recovery log."""

    at_s: float
    kind: str  # FaultKind value for injected faults, "recovery:*" for repairs
    target: str
    detail: str = ""

    def key(self) -> tuple:
        """The identity compared across runs for reproducibility checks."""
        return (self.at_s, self.kind, self.target, self.detail)


class FaultInjector:
    """Schedules faults onto dependencies; collects the event log."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        clock=None,
        rng: DeterministicRng | None = None,
    ):
        self.plan = plan or FaultPlan()
        self._clock = clock
        root = rng or DeterministicRng(f"faults/{self.plan.seed}")
        self._streams: dict[str, DeterministicRng] = {}
        self._root_rng = root
        self._specs: list[FaultSpec] = list(self.plan.faults)
        self._fired: set[int] = set()  # id() of one-shot specs already fired
        self._recovered_nodes: set[str] = set()
        self.log: list[FaultEvent] = []

    # ---- plumbing ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def bind_clock(self, clock) -> None:
        self._clock = clock

    def _stream(self, name: str) -> DeterministicRng:
        stream = self._streams.get(name)
        if stream is None:
            stream = self._root_rng.child(name)
            self._streams[name] = stream
        return stream

    def add(self, spec: FaultSpec) -> FaultSpec:
        """Dynamically add a fault (compat wrappers and tests use this)."""
        self._specs.append(spec)
        return spec

    def cancel(self, spec: FaultSpec) -> None:
        """Remove a previously added fault spec."""
        self._specs = [s for s in self._specs if s is not spec]

    def _active(self, kind: FaultKind, target: str = "") -> list[FaultSpec]:
        now = self.now
        return [
            s
            for s in self._specs
            if s.kind is kind and s.active_at(now) and s.matches(target)
        ]

    def specs_of(self, kind: FaultKind) -> list[FaultSpec]:
        return [s for s in self._specs if s.kind is kind]

    def record(self, kind: str, target: str = "", detail: str = "") -> FaultEvent:
        """Append an event (recovery code logs its actions through this)."""
        event = FaultEvent(self.now, kind, target, detail)
        self.log.append(event)
        return event

    def timeline(self) -> list[tuple]:
        """The comparable identity of the full fault/recovery history."""
        return [event.key() for event in self.log]

    # ---- S3 ----------------------------------------------------------------

    def s3_request(self, region: str, op: str = "request") -> None:
        """Consulted once per S3 request; raises if the request fails."""
        if self._active(FaultKind.S3_OUTAGE, region):
            self.record(FaultKind.S3_OUTAGE.value, region, op)
            raise ServiceUnavailableError(f"S3 {region} is unavailable")
        for spec in self._active(FaultKind.S3_ERROR_WINDOW, region):
            if self._stream("s3").random() < spec.rate:
                self.record(FaultKind.S3_ERROR_WINDOW.value, region, op)
                raise S3TransientError(region, f"injected 503 during {op}")

    def s3_slow_factor(self, region: str) -> float:
        """Transfer-time multiplier from any active slow-request windows."""
        factor = 1.0
        for spec in self._active(FaultKind.S3_SLOW_WINDOW, region):
            factor *= spec.slow_factor
        return factor

    def s3_outage_active(self, region: str = "") -> bool:
        return bool(self._active(FaultKind.S3_OUTAGE, region))

    # ---- EC2 ---------------------------------------------------------------

    def ec2_capacity_interrupted(self) -> bool:
        return bool(self._active(FaultKind.EC2_CAPACITY_WINDOW))

    # ---- disks -------------------------------------------------------------

    def disk_io(self, disk_id: str, op: str) -> None:
        """Consulted once per disk IO; raises on an injected media error."""
        for spec in self._active(FaultKind.DISK_MEDIA_WINDOW, disk_id):
            if self._stream(f"disk/{disk_id}").random() < spec.rate:
                self.record(FaultKind.DISK_MEDIA_WINDOW.value, disk_id, op)
                raise DiskMediaError(disk_id, op)

    def disk_full(self, disk_id: str, needed: int = 0) -> bool:
        """Consulted before each spill write; True while a DISK_FULL
        window covers *disk_id* — the write must fail with a typed
        ``SpillCapacityError`` instead of consuming temp space."""
        if self._active(FaultKind.DISK_FULL, disk_id):
            self.record(
                FaultKind.DISK_FULL.value, disk_id, f"spill denied {needed}B"
            )
            return True
        return False

    # ---- nodes -------------------------------------------------------------

    def check_node(self, node_id: str) -> None:
        """Consulted at query fault checkpoints; fires a pending crash once.

        A crash spec whose time has come fires on the first execution that
        touches the node, then stays consumed; after the recovery side calls
        :meth:`mark_node_recovered`, the node serves work again.
        """
        now = self.now
        for spec in self._specs:
            if (
                spec.kind is FaultKind.NODE_CRASH
                and spec.target == node_id
                and spec.at_s <= now
                and id(spec) not in self._fired
            ):
                self._fired.add(id(spec))
                self._recovered_nodes.discard(node_id)
                self.record(FaultKind.NODE_CRASH.value, node_id)
                raise NodeFailureError(node_id, "injected crash")

    def crashed_nodes(self) -> list[str]:
        """Nodes with a fired crash that has not been recovered."""
        out = []
        for spec in self._specs:
            if (
                spec.kind is FaultKind.NODE_CRASH
                and id(spec) in self._fired
                and spec.target not in self._recovered_nodes
            ):
                out.append(spec.target)
        return sorted(set(out))

    def mark_node_recovered(self, node_id: str) -> None:
        self._recovered_nodes.add(node_id)

    # ---- parallel workers --------------------------------------------------

    def worker_crash(self, slice_id: str) -> bool:
        """Consulted by the parallel executor's leader once per dispatched
        morsel; True means that morsel's worker must die. The draw happens
        on the leader (one shared "worker" stream, in dispatch order) so
        the fault sequence is deterministic regardless of how the OS
        schedules the actual worker processes. The crash itself is logged
        by the executor when the worker's death is observed."""
        for spec in self._active(FaultKind.WORKER_CRASH, slice_id):
            if self._stream("worker").random() < spec.rate:
                return True
        return False

    # ---- one-shot firing for scheduled point faults ------------------------

    def fire_once(self, spec: FaultSpec, detail: str = "") -> bool:
        """Mark a point fault fired and log it; False if already fired."""
        if id(spec) in self._fired:
            return False
        self._fired.add(id(spec))
        self.record(spec.kind.value, spec.target, detail)
        return True
