"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is the shared vocabulary of every resilience
experiment: a seed plus a list of :class:`FaultSpec` entries placed on the
:class:`~repro.cloud.simclock.SimClock` timeline. Window faults (S3 error
rates, slow-request windows, EC2 capacity gaps, disk media-error windows)
are consulted live by the dependency they target; point faults (disk
failures, block bit-flips, node crashes) fire once. Because the plan and
the per-stream RNGs both derive from the seed, re-running the same plan
reproduces the identical fault timeline.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    S3_OUTAGE = "s3_outage"
    S3_ERROR_WINDOW = "s3_error_window"
    S3_SLOW_WINDOW = "s3_slow_window"
    EC2_CAPACITY_WINDOW = "ec2_capacity_window"
    DISK_FAIL = "disk_fail"
    DISK_MEDIA_WINDOW = "disk_media_window"
    DISK_FULL = "disk_full"
    BLOCK_BITFLIP = "block_bitflip"
    NODE_CRASH = "node_crash"
    WORKER_CRASH = "worker_crash"


#: Kinds that are active over a [at_s, until_s) window rather than firing once.
WINDOW_KINDS = frozenset(
    {
        FaultKind.S3_OUTAGE,
        FaultKind.S3_ERROR_WINDOW,
        FaultKind.S3_SLOW_WINDOW,
        FaultKind.EC2_CAPACITY_WINDOW,
        FaultKind.DISK_MEDIA_WINDOW,
        FaultKind.DISK_FULL,
        FaultKind.WORKER_CRASH,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: what breaks.
        at_s: window start (window kinds) or firing time (point kinds).
        until_s: window end; ignored by point kinds.
        target: what it hits — an S3 region, a disk id, a node id, or a
            block selector (a block id, or ``"#n"`` for the n-th replicated
            block in sorted order). Empty string matches any target.
        rate: per-request firing probability for rate-driven windows.
        slow_factor: transfer-time multiplier for slow-request windows.
    """

    kind: FaultKind
    at_s: float = 0.0
    until_s: float = math.inf
    target: str = ""
    rate: float = 1.0
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.until_s < self.at_s:
            raise ValueError(
                f"fault window ends before it starts: "
                f"[{self.at_s}, {self.until_s})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )

    def matches(self, target: str) -> bool:
        return self.target == "" or self.target == target

    def active_at(self, now: float) -> bool:
        return self.at_s <= now < self.until_s


@dataclass
class FaultPlan:
    """A seeded fault schedule, built fluently.

    >>> plan = (FaultPlan(seed=7)
    ...         .s3_errors(at_s=0, until_s=600, rate=0.2)
    ...         .node_crash(at_s=100, node_id="node-1")
    ...         .block_bitflip(at_s=50, block="#3"))
    """

    seed: int | str = 0
    faults: list[FaultSpec] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.faults.append(spec)
        return self

    # ---- cloud substrate ---------------------------------------------------

    def s3_outage(
        self, at_s: float = 0.0, until_s: float = math.inf, region: str = ""
    ) -> "FaultPlan":
        """Regional outage: every request fails until the window closes."""
        return self.add(
            FaultSpec(FaultKind.S3_OUTAGE, at_s, until_s, target=region)
        )

    def s3_errors(
        self,
        at_s: float,
        until_s: float,
        rate: float,
        region: str = "",
    ) -> "FaultPlan":
        """Transient 503s: each request fails independently with *rate*."""
        return self.add(
            FaultSpec(
                FaultKind.S3_ERROR_WINDOW, at_s, until_s, target=region, rate=rate
            )
        )

    def s3_slow(
        self,
        at_s: float,
        until_s: float,
        factor: float,
        region: str = "",
    ) -> "FaultPlan":
        """Slow-request window: transfers take *factor* times longer."""
        return self.add(
            FaultSpec(
                FaultKind.S3_SLOW_WINDOW,
                at_s,
                until_s,
                target=region,
                slow_factor=factor,
            )
        )

    def ec2_capacity_gap(
        self, at_s: float, until_s: float = math.inf
    ) -> "FaultPlan":
        """Insufficient-capacity window: cold provisioning fails; warm-pool
        claims keep working (the paper's escalator)."""
        return self.add(
            FaultSpec(FaultKind.EC2_CAPACITY_WINDOW, at_s, until_s)
        )

    # ---- storage -----------------------------------------------------------

    def disk_failure(self, at_s: float, disk_id: str) -> "FaultPlan":
        """Permanent media failure of one disk at *at_s*."""
        return self.add(FaultSpec(FaultKind.DISK_FAIL, at_s, target=disk_id))

    def disk_media_errors(
        self, at_s: float, until_s: float, rate: float, disk_id: str = ""
    ) -> "FaultPlan":
        """Window of transient per-IO media errors on one (or any) disk."""
        return self.add(
            FaultSpec(
                FaultKind.DISK_MEDIA_WINDOW,
                at_s,
                until_s,
                target=disk_id,
                rate=rate,
            )
        )

    def add_disk_full_window(
        self, at_s: float = 0.0, until_s: float = math.inf, disk_id: str = ""
    ) -> "FaultPlan":
        """Window during which one (or any) disk has no temp space left:
        spill writes raise a typed ``SpillCapacityError`` and WLM sheds the
        query cleanly instead of letting it crash."""
        return self.add(
            FaultSpec(FaultKind.DISK_FULL, at_s, until_s, target=disk_id)
        )

    def block_bitflip(self, at_s: float, block: str = "#0") -> "FaultPlan":
        """Silent corruption of one block at *at_s*; *block* is a block id
        or ``"#n"`` selecting the n-th replicated block in sorted order."""
        return self.add(FaultSpec(FaultKind.BLOCK_BITFLIP, at_s, target=block))

    # ---- nodes -------------------------------------------------------------

    def node_crash(self, at_s: float, node_id: str) -> "FaultPlan":
        """Node crash armed at *at_s*: the next query execution that touches
        the node observes the failure."""
        return self.add(FaultSpec(FaultKind.NODE_CRASH, at_s, target=node_id))

    def worker_crashes(
        self,
        at_s: float = 0.0,
        until_s: float = math.inf,
        rate: float = 1.0,
        slice_id: str = "",
    ) -> "FaultPlan":
        """Window of parallel-worker crashes: each dispatched morsel on the
        targeted (or any) slice dies independently with *rate*; the parallel
        executor re-runs dead morsels serially on the leader."""
        return self.add(
            FaultSpec(
                FaultKind.WORKER_CRASH,
                at_s,
                until_s,
                target=slice_id,
                rate=rate,
            )
        )
