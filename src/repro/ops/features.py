"""Feature delivery cadence (Figure 4).

"By making deployments and patching automatic and painless ... we are
able to deploy software at a high frequency. We have averaged the
addition of one feature per week, over the past two years" (§1). "We
typically push new database engine software, including both features and
bug fixes, every two weeks" (§5).

The model: releases every ``release_interval_weeks``; each carries a
Poisson-distributed number of features with mean
``features_per_week * interval``; delivery accelerates slightly over time
as the team grows (the paper's curve is convex).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.rng import DeterministicRng


@dataclass
class FeatureRelease:
    week: float
    features: int
    cumulative: int


@dataclass
class FeatureDeliveryModel:
    """Generates the cumulative-features-over-time series."""

    release_interval_weeks: float = 2.0
    base_features_per_week: float = 1.0
    #: annual growth of delivery rate (team scaling)
    delivery_growth_per_year: float = 0.25
    seed: int | str = "features"

    def simulate(self, horizon_weeks: int = 104) -> list[FeatureRelease]:
        rng = DeterministicRng(self.seed)
        releases: list[FeatureRelease] = []
        cumulative = 0
        week = self.release_interval_weeks
        while week <= horizon_weeks:
            rate = self.base_features_per_week * (
                (1.0 + self.delivery_growth_per_year) ** (week / 52.0)
            )
            mean = rate * self.release_interval_weeks
            count = _poisson(rng, mean)
            cumulative += count
            releases.append(
                FeatureRelease(week=week, features=count, cumulative=cumulative)
            )
            week += self.release_interval_weeks
        return releases

    def features_at(self, releases: list[FeatureRelease], week: float) -> int:
        total = 0
        for release in releases:
            if release.week <= week:
                total = release.cumulative
        return total


def _poisson(rng: DeterministicRng, mean: float) -> int:
    """Knuth's algorithm; fine for small means."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k
