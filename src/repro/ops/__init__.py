"""Fleet operations analytics: the §5 "lessons learned" models.

* :mod:`repro.ops.features` — release trains and cumulative feature count
  (Figure 4: "we have averaged the addition of one feature per week").
* :mod:`repro.ops.tickets` — Sev2 ticket generation over a growing fleet
  with weekly Pareto-driven defect extinguishing (Figure 5: tickets per
  cluster decline even as the fleet grows).
* :mod:`repro.ops.pareto` — top-N error-cause analysis.
"""

from repro.ops.features import FeatureDeliveryModel, FeatureRelease
from repro.ops.tickets import FleetOperationsSimulation, Defect, WeekStats
from repro.ops.pareto import pareto_top_share, rank_causes

__all__ = [
    "FeatureDeliveryModel", "FeatureRelease",
    "FleetOperationsSimulation", "Defect", "WeekStats",
    "pareto_top_share", "rank_causes",
]
