"""Pareto analysis of error causes.

"We collect error logs across our fleet and monitor tickets to understand
top ten causes of error, with the aim of extinguishing one of the top ten
causes of error each week" (§5).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


def rank_causes(events: Iterable[str]) -> list[tuple[str, int]]:
    """Error causes ranked by frequency, descending (ties by name)."""
    counts = Counter(events)
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def pareto_top_share(events: Sequence[str], top_n: int = 10) -> float:
    """Fraction of all events attributable to the top *top_n* causes —
    the quantity that justifies top-10 extinguishing as a strategy."""
    if not events:
        return 0.0
    ranked = rank_causes(events)
    top = sum(count for _, count in ranked[:top_n])
    return top / len(events)
