"""Fleet operations simulation: Sev2 tickets over a growing fleet (Fig 5).

"We page ourselves on each database failure ... This means operational
load roughly correlates to business success. Within Amazon Redshift, we
collect error logs across our fleet and monitor tickets to understand top
ten causes of error, with the aim of extinguishing one of the top ten
causes of error each week" (§5).

Model: a pool of latent defects, each firing per cluster-week with its
own rate (heavy-tailed, so a Pareto top-10 exists). The fleet grows every
week. The team extinguishes the top ``fixes_per_week`` observed causes
each week; feature releases seed fresh defects. The output series shows
absolute ticket volume correlating with fleet size while tickets *per
cluster* decline — exactly Figure 5's shape.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.ops.pareto import rank_causes
from repro.util.rng import DeterministicRng


@dataclass
class Defect:
    """One latent defect class."""

    defect_id: str
    rate_per_cluster_week: float
    introduced_week: int
    fixed_week: int | None = None


@dataclass
class WeekStats:
    week: int
    clusters: int
    tickets: int
    tickets_per_cluster: float
    open_defects: int
    fixed_this_week: int
    top10_share: float


class FleetOperationsSimulation:
    """Week-by-week simulation of fleet growth, paging and defect fixing."""

    def __init__(
        self,
        initial_clusters: int = 50,
        weekly_growth: float = 0.04,
        initial_defects: int = 60,
        defects_per_release: float = 2.5,
        release_interval_weeks: int = 2,
        fixes_per_week: int = 1,
        seed: int | str = "fleet-ops",
    ):
        self.initial_clusters = initial_clusters
        self.weekly_growth = weekly_growth
        self.defects_per_release = defects_per_release
        self.release_interval_weeks = release_interval_weeks
        self.fixes_per_week = fixes_per_week
        self._rng = DeterministicRng(seed)
        self._ids = itertools.count(1)
        self.defects: list[Defect] = [
            self._new_defect(week=0) for _ in range(initial_defects)
        ]

    def _new_defect(self, week: int) -> Defect:
        # Heavy-tailed rates: a few hot defects dominate paging (the
        # precondition for Pareto extinguishing to pay off). Later defects
        # ship in newer, less-universally-used features, so their
        # per-cluster firing rates shrink as the service matures.
        rate = 0.002 * (1.0 / max(1e-3, self._rng.random())) ** 0.7
        maturity = 1.0 / (1.0 + week / 26.0)
        return Defect(
            defect_id=f"D-{next(self._ids):05d}",
            rate_per_cluster_week=min(rate, 0.5) * maturity,
            introduced_week=week,
        )

    def run(self, weeks: int = 104) -> list[WeekStats]:
        stats: list[WeekStats] = []
        clusters = float(self.initial_clusters)
        for week in range(1, weeks + 1):
            clusters *= 1.0 + self.weekly_growth
            cluster_count = int(clusters)

            # New defects arrive with each release train.
            if week % self.release_interval_weeks == 0:
                arrivals = self._rng.random() * 2 * self.defects_per_release
                for _ in range(round(arrivals)):
                    self.defects.append(self._new_defect(week))

            open_defects = [d for d in self.defects if d.fixed_week is None]
            events: list[str] = []
            for defect in open_defects:
                mean = defect.rate_per_cluster_week * cluster_count
                count = self._poisson(mean)
                events.extend([defect.defect_id] * count)

            # Pareto extinguishing: fix the hottest observed causes.
            ranked = rank_causes(events)
            fixed = 0
            for cause, _count in ranked[:self.fixes_per_week]:
                for defect in open_defects:
                    if defect.defect_id == cause:
                        defect.fixed_week = week
                        fixed += 1
                        break

            top10 = 0.0
            if events:
                top10 = sum(c for _, c in ranked[:10]) / len(events)
            stats.append(
                WeekStats(
                    week=week,
                    clusters=cluster_count,
                    tickets=len(events),
                    tickets_per_cluster=(
                        len(events) / cluster_count if cluster_count else 0.0
                    ),
                    open_defects=len(open_defects),
                    fixed_this_week=fixed,
                    top10_share=top10,
                )
            )
        return stats

    def _poisson(self, mean: float) -> int:
        import math

        if mean <= 0:
            return 0
        if mean > 50:
            # Normal approximation keeps big fleets cheap.
            return max(0, round(self._rng.normalvariate(mean, mean ** 0.5)))
        limit = math.exp(-mean)
        k = 0
        product = self._rng.random()
        while product > limit:
            k += 1
            product *= self._rng.random()
        return k
