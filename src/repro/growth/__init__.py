"""The dark-data gap model (Figure 1)."""

from repro.growth.gap import DataGrowthModel, GapPoint

__all__ = ["DataGrowthModel", "GapPoint"]
