"""The enterprise "analysis gap" (Figure 1).

Figure 1 plots enterprise data against data in warehouses, 1990–2020, and
shows the gap widening. The paper quotes the constants: warehouse spend
grows at "8-11% compound annual growth rate" while "data storage at a
typical enterprise growing at 30-40% CAGR. Over the past 12-18 months,
new market research has begun to show an increase to 50-60%, with data
doubling in size every 20 months" (§1). The model regenerates the two
curves from those CAGRs, with enterprise-data growth accelerating through
the eras the text describes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GapPoint:
    year: int
    enterprise_data: float
    warehouse_data: float

    @property
    def dark_fraction(self) -> float:
        """Fraction of enterprise data not in the warehouse."""
        if self.enterprise_data <= 0:
            return 0.0
        return 1.0 - min(1.0, self.warehouse_data / self.enterprise_data)


@dataclass
class DataGrowthModel:
    """Two compounding curves normalised to 1.0 at the start year."""

    start_year: int = 1990
    end_year: int = 2020
    #: warehouse capacity CAGR (paper: market growing 8–11%/yr)
    warehouse_cagr: float = 0.10
    #: enterprise data CAGR by era (paper: 30–40% historically, 50–60% now)
    enterprise_cagr_early: float = 0.25   # pre-2000: pre-web growth
    enterprise_cagr_middle: float = 0.35  # 2000–2012: 30–40% era
    enterprise_cagr_late: float = 0.55    # 2013+: 50–60% era

    def _enterprise_rate(self, year: int) -> float:
        if year < 2000:
            return self.enterprise_cagr_early
        if year < 2013:
            return self.enterprise_cagr_middle
        return self.enterprise_cagr_late

    def series(self) -> list[GapPoint]:
        """Yearly points; both curves start at the same unit volume."""
        points: list[GapPoint] = []
        enterprise = 1.0
        warehouse = 1.0
        for year in range(self.start_year, self.end_year + 1):
            points.append(
                GapPoint(
                    year=year,
                    enterprise_data=enterprise,
                    warehouse_data=warehouse,
                )
            )
            enterprise *= 1.0 + self._enterprise_rate(year)
            warehouse *= 1.0 + self.warehouse_cagr
        return points

    def gap_ratio(self, year: int) -> float:
        """Enterprise-to-warehouse data ratio at *year*."""
        for point in self.series():
            if point.year == year:
                return point.enterprise_data / point.warehouse_data
        raise ValueError(f"year {year} outside model range")

    def doubling_months_late_era(self) -> float:
        """Implied doubling time in the 50–60% era (paper: ~20 months)."""
        import math

        rate = self.enterprise_cagr_late
        years = math.log(2.0) / math.log(1.0 + rate)
        return years * 12.0
