"""Semantic analysis: name resolution, type inference, aggregate rewriting.

The binder turns a parsed :class:`~repro.sql.ast.SelectQuery` into a bound
logical plan. After binding, every column reference is a
:class:`~repro.sql.ast.BoundRef` carrying its input-row index and type;
aggregate queries are decomposed into (child plan, group expressions,
aggregate calls, post-aggregation projections).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.coercion import common_type
from repro.datatypes.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SqlType,
    TypeKind,
    TIMESTAMP,
    type_from_name,
    varchar_type,
)
from repro.engine.catalog import Catalog
from repro.errors import (
    AmbiguousColumnError,
    AnalysisError,
    ColumnNotFoundError,
)
from repro.plan.bound import (
    AggCall,
    BoundColumn,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sql import ast
from repro.sql.functions import (
    is_aggregate_function,
    make_aggregate,
    scalar_function,
)


# ---------------------------------------------------------------------------
# Type inference over bound expressions
# ---------------------------------------------------------------------------

_COMPARISON_OPS = frozenset(["=", "<>", "<", "<=", ">", ">=", "AND", "OR"])


def infer_type(expr: ast.Expression) -> SqlType:
    """Result type of a bound expression (all refs must be BoundRef)."""
    if isinstance(expr, ast.BoundRef):
        return expr.sql_type
    if isinstance(expr, ast.Literal):
        return _literal_type(expr)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in _COMPARISON_OPS:
            return BOOLEAN
        if expr.op == "||":
            return varchar_type(65535)
        left = infer_type(expr.left)
        right = infer_type(expr.right)
        if expr.op == "/" and left.is_integer and right.is_integer:
            return common_type(left, right)
        if expr.op in ("+", "-") and left.is_temporal:
            if right.is_temporal:
                return BIGINT if left.kind is TypeKind.DATE else DOUBLE
            return left
        return common_type(left, right)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return BOOLEAN
        return infer_type(expr.operand)
    if isinstance(expr, ast.FunctionCall):
        fn = scalar_function(expr.name)
        return fn.result_type([infer_type(a) for a in expr.args])
    if isinstance(expr, ast.CastExpr):
        return type_from_name(expr.type_name, *expr.type_params)
    if isinstance(expr, ast.CaseExpr):
        branch_types = [infer_type(v) for _, v in expr.whens]
        if expr.default is not None:
            branch_types.append(infer_type(expr.default))
        result = branch_types[0]
        for t in branch_types[1:]:
            result = common_type(result, t)
        return result
    if isinstance(expr, (ast.InExpr, ast.BetweenExpr, ast.IsNullExpr, ast.LikeExpr)):
        return BOOLEAN
    raise AnalysisError(f"cannot infer type of {type(expr).__name__}")


def _literal_type(node: ast.Literal) -> SqlType:
    if node.type_name == "date":
        return DATE
    if node.type_name == "timestamp":
        return TIMESTAMP
    value = node.value
    if value is None:
        return varchar_type(1)
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER if -(2 ** 31) <= value < 2 ** 31 else BIGINT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return varchar_type(max(1, len(value)))
    # Values substituted by subquery expansion carry richer types.
    import datetime
    import decimal

    from repro.datatypes.types import decimal_type

    if isinstance(value, datetime.datetime):
        return TIMESTAMP
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, decimal.Decimal):
        digits = len(value.as_tuple().digits)
        scale = max(0, -value.as_tuple().exponent)
        return decimal_type(max(digits, scale, 1), scale)
    raise AnalysisError(f"cannot type literal {value!r}")


# ---------------------------------------------------------------------------
# Binder
# ---------------------------------------------------------------------------

@dataclass
class _ScopeColumn:
    relation: str
    name: str
    sql_type: SqlType
    index: int


class _Scope:
    """Flattened name-resolution scope: the input row of an operator."""

    def __init__(self, columns: list[_ScopeColumn]):
        self.columns = columns

    @classmethod
    def from_output(cls, output: list[BoundColumn]) -> "_Scope":
        return cls(
            [
                _ScopeColumn(c.relation, c.name, c.sql_type, i)
                for i, c in enumerate(output)
            ]
        )

    def resolve(self, ref: ast.ColumnRef) -> _ScopeColumn:
        matches = [
            c
            for c in self.columns
            if c.name == ref.name and (ref.table is None or c.relation == ref.table)
        ]
        if not matches:
            raise ColumnNotFoundError(ref.name, ref.table)
        if len(matches) > 1:
            raise AmbiguousColumnError(ref.to_sql())
        return matches[0]

    def columns_of(self, relation: str | None) -> list[_ScopeColumn]:
        if relation is None:
            return list(self.columns)
        cols = [c for c in self.columns if c.relation == relation]
        if not cols:
            raise AnalysisError(f"unknown relation {relation!r} in *")
        return cols


class Binder:
    """Binds SELECT/INSERT-SELECT queries against a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    # ---- public entry -----------------------------------------------------

    def bind_select(
        self,
        query: "ast.SelectQuery | ast.SetOperation",
        cte_env: dict[str, LogicalNode] | None = None,
    ) -> LogicalNode:
        """Bind a full query expression to a logical plan."""
        if isinstance(query, ast.SetOperation):
            return self._bind_set_operation(query, cte_env)
        env = dict(cte_env or {})
        for cte in query.ctes:
            env[cte.name] = self.bind_select(cte.query, env)

        if query.from_item is None:
            plan, scope = self._bind_values_less(query)
        else:
            plan, scope = self._bind_from(query.from_item, env)

        if query.where is not None:
            condition = self._bind_expr(query.where, scope, allow_aggregates=False)
            plan = LogicalFilter(plan, condition, output=list(plan.output))

        items = self._expand_stars(query.items, scope)

        has_aggregates = bool(query.group_by) or any(
            self._contains_aggregate(item.expression) for item in items
        )
        if query.having is not None and not has_aggregates:
            has_aggregates = True

        if has_aggregates:
            plan, item_exprs, having_expr = self._bind_aggregate(
                plan, scope, query, items
            )
        else:
            item_exprs = [
                self._bind_expr(item.expression, scope, allow_aggregates=False)
                for item in items
            ]
            having_expr = None

        if having_expr is not None:
            plan = LogicalFilter(plan, having_expr, output=list(plan.output))

        names = [self._item_name(item) for item in items]
        output = [
            BoundColumn(name, infer_type(expr))
            for name, expr in zip(names, item_exprs)
        ]
        plan = LogicalProject(plan, item_exprs, output=output)

        if query.distinct:
            plan = LogicalDistinct(plan, output=list(plan.output))

        if query.order_by:
            hidden_scope = scope if not has_aggregates else None
            keys, hidden = self._bind_order_by(
                query.order_by, plan.output, items, hidden_scope
            )
            if hidden:
                if query.distinct:
                    raise AnalysisError(
                        "for SELECT DISTINCT, ORDER BY expressions must "
                        "appear in the select list"
                    )
                # Extend the projection with hidden sort columns, sort, then
                # strip them with a final projection.
                visible = len(plan.output)
                project = plan
                assert isinstance(project, LogicalProject)
                for i, expr in enumerate(hidden):
                    project.expressions.append(expr)
                    project.output.append(
                        BoundColumn(f"__sort{i}", infer_type(expr))
                    )
                plan = LogicalSort(project, keys, output=list(project.output))
                plan = LogicalProject(
                    plan,
                    [
                        ast.BoundRef(i, c.sql_type, c.name)
                        for i, c in enumerate(plan.output[:visible])
                    ],
                    output=list(plan.output[:visible]),
                )
            else:
                plan = LogicalSort(plan, keys, output=list(plan.output))

        if query.limit is not None or query.offset is not None:
            plan = LogicalLimit(
                plan, query.limit, query.offset, output=list(plan.output)
            )
        return plan

    # ---- set operations ---------------------------------------------------

    def _bind_set_operation(
        self,
        query: ast.SetOperation,
        cte_env: dict[str, LogicalNode] | None,
    ) -> LogicalNode:
        from repro.plan.bound import LogicalSetOp

        left = self.bind_select(query.left, cte_env)
        right = self.bind_select(query.right, cte_env)
        if len(left.output) != len(right.output):
            raise AnalysisError(
                f"{query.op.upper()} inputs have {len(left.output)} and "
                f"{len(right.output)} columns"
            )
        output = [
            BoundColumn(l.name, common_type(l.sql_type, r.sql_type))
            for l, r in zip(left.output, right.output)
        ]
        plan: LogicalNode = LogicalSetOp(
            op=query.op, all=query.all, left=left, right=right, output=output
        )
        if query.order_by:
            items = [
                ast.SelectItem(ast.BoundRef(i, c.sql_type, c.name), c.name)
                for i, c in enumerate(output)
            ]
            keys, hidden = self._bind_order_by(
                query.order_by, plan.output, items, None
            )
            if hidden:
                raise AnalysisError(
                    "ORDER BY over a set operation must reference output "
                    "columns"
                )
            plan = LogicalSort(plan, keys, output=list(plan.output))
        if query.limit is not None or query.offset is not None:
            plan = LogicalLimit(
                plan, query.limit, query.offset, output=list(plan.output)
            )
        return plan

    # ---- FROM -----------------------------------------------------------------

    def _bind_values_less(
        self, query: ast.SelectQuery
    ) -> tuple[LogicalNode, _Scope]:
        """SELECT without FROM: a single-row, zero-column input."""
        from repro.plan.bound import LogicalScan  # local alias for clarity

        plan = _SingleRowNode()
        return plan, _Scope([])

    def _bind_from(
        self, item: ast.FromItem, env: dict[str, LogicalNode]
    ) -> tuple[LogicalNode, _Scope]:
        if isinstance(item, ast.TableRef):
            return self._bind_table(item, env)
        if isinstance(item, ast.SubqueryRef):
            child = self.bind_select(item.query, env)
            output = [
                BoundColumn(c.name, c.sql_type, item.alias) for c in child.output
            ]
            child.output = output
            return child, _Scope.from_output(output)
        if isinstance(item, ast.Join):
            return self._bind_join(item, env)
        raise AnalysisError(f"unsupported FROM item {type(item).__name__}")

    def _bind_table(
        self, ref: ast.TableRef, env: dict[str, LogicalNode]
    ) -> tuple[LogicalNode, _Scope]:
        binding = ref.binding_name
        if ref.name in env:
            cte = env[ref.name]
            output = [
                BoundColumn(c.name, c.sql_type, binding) for c in cte.output
            ]
            wrapper = LogicalProject(
                cte,
                [
                    ast.BoundRef(i, c.sql_type, c.name)
                    for i, c in enumerate(cte.output)
                ],
                output=output,
            )
            return wrapper, _Scope.from_output(output)
        table = self._catalog.table(ref.name)
        indexes = list(range(len(table.columns)))
        output = [
            BoundColumn(c.name, c.sql_type, binding) for c in table.columns
        ]
        scan = LogicalScan(table, binding, indexes, output=output)
        return scan, _Scope.from_output(output)

    def _bind_join(
        self, join: ast.Join, env: dict[str, LogicalNode]
    ) -> tuple[LogicalNode, _Scope]:
        left, left_scope = self._bind_from(join.left, env)
        right, right_scope = self._bind_from(join.right, env)
        offset = len(left.output)
        merged = _Scope(
            left_scope.columns
            + [
                _ScopeColumn(c.relation, c.name, c.sql_type, c.index + offset)
                for c in right_scope.columns
            ]
        )
        equi_keys: list[tuple[int, int]] = []
        residual: ast.Expression | None = None
        if join.condition is not None:
            bound = self._bind_expr(join.condition, merged, allow_aggregates=False)
            equi_keys, residual = self._extract_equi_keys(bound, offset)
        elif join.kind is not ast.JoinKind.CROSS:
            raise AnalysisError(f"{join.kind.value} JOIN requires an ON condition")
        output = list(left.output) + list(right.output)
        node = LogicalJoin(
            kind=join.kind,
            left=left,
            right=right,
            equi_keys=equi_keys,
            residual=residual,
            output=output,
        )
        return node, merged

    @staticmethod
    def _extract_equi_keys(
        condition: ast.Expression, offset: int
    ) -> tuple[list[tuple[int, int]], ast.Expression | None]:
        """Split a bound ON condition into hashable equi-keys + residual."""
        conjuncts: list[ast.Expression] = []

        def flatten(expr: ast.Expression) -> None:
            if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
                flatten(expr.left)
                flatten(expr.right)
            else:
                conjuncts.append(expr)

        flatten(condition)
        keys: list[tuple[int, int]] = []
        residuals: list[ast.Expression] = []
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.BoundRef)
                and isinstance(conjunct.right, ast.BoundRef)
            ):
                a, b = conjunct.left.index, conjunct.right.index
                if a < offset <= b:
                    keys.append((a, b - offset))
                    continue
                if b < offset <= a:
                    keys.append((b, a - offset))
                    continue
            residuals.append(conjunct)
        residual: ast.Expression | None = None
        for r in residuals:
            residual = r if residual is None else ast.BinaryOp("AND", residual, r)
        return keys, residual

    # ---- expressions ------------------------------------------------------------

    def _bind_expr(
        self,
        expr: ast.Expression,
        scope: _Scope,
        allow_aggregates: bool,
    ) -> ast.Expression:
        """Rebuild *expr* with ColumnRefs resolved to BoundRefs."""
        if isinstance(expr, ast.ColumnRef):
            col = scope.resolve(expr)
            return ast.BoundRef(col.index, col.sql_type, col.name)
        if isinstance(expr, (ast.Literal, ast.BoundRef)):
            return expr
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._bind_expr(expr.left, scope, allow_aggregates),
                self._bind_expr(expr.right, scope, allow_aggregates),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(
                expr.op, self._bind_expr(expr.operand, scope, allow_aggregates)
            )
        if isinstance(expr, ast.FunctionCall):
            is_agg = is_aggregate_function(expr.name) and not _is_scalar_usage(expr)
            if is_agg:
                if not allow_aggregates:
                    raise AnalysisError(
                        f"aggregate {expr.name}() is not allowed here"
                    )
            else:
                fn = scalar_function(expr.name)
                fn.check_arity(len(expr.args))
            return ast.FunctionCall(
                expr.name,
                [
                    a
                    if is_agg and isinstance(a, ast.Star)  # COUNT(*)
                    else self._bind_expr(a, scope, allow_aggregates)
                    for a in expr.args
                ],
                distinct=expr.distinct,
                approximate=expr.approximate,
            )
        if isinstance(expr, ast.CastExpr):
            type_from_name(expr.type_name, *expr.type_params)  # validate
            return ast.CastExpr(
                self._bind_expr(expr.operand, scope, allow_aggregates),
                expr.type_name,
                expr.type_params,
            )
        if isinstance(expr, ast.CaseExpr):
            return ast.CaseExpr(
                [
                    (
                        self._bind_expr(c, scope, allow_aggregates),
                        self._bind_expr(v, scope, allow_aggregates),
                    )
                    for c, v in expr.whens
                ],
                self._bind_expr(expr.default, scope, allow_aggregates)
                if expr.default is not None
                else None,
            )
        if isinstance(expr, ast.InExpr):
            return ast.InExpr(
                self._bind_expr(expr.operand, scope, allow_aggregates),
                [self._bind_expr(i, scope, allow_aggregates) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, ast.BetweenExpr):
            return ast.BetweenExpr(
                self._bind_expr(expr.operand, scope, allow_aggregates),
                self._bind_expr(expr.low, scope, allow_aggregates),
                self._bind_expr(expr.high, scope, allow_aggregates),
                expr.negated,
            )
        if isinstance(expr, ast.IsNullExpr):
            return ast.IsNullExpr(
                self._bind_expr(expr.operand, scope, allow_aggregates), expr.negated
            )
        if isinstance(expr, ast.LikeExpr):
            return ast.LikeExpr(
                self._bind_expr(expr.operand, scope, allow_aggregates),
                self._bind_expr(expr.pattern, scope, allow_aggregates),
                expr.negated,
                expr.case_insensitive,
            )
        if isinstance(expr, ast.Star):
            raise AnalysisError("* is only allowed in the select list and COUNT(*)")
        raise AnalysisError(f"cannot bind expression {type(expr).__name__}")

    # ---- select list ---------------------------------------------------------

    def _expand_stars(
        self, items: list[ast.SelectItem], scope: _Scope
    ) -> list[ast.SelectItem]:
        out: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                for col in scope.columns_of(item.expression.table):
                    out.append(
                        ast.SelectItem(ast.ColumnRef(col.name, col.relation))
                    )
            else:
                out.append(item)
        if not out:
            raise AnalysisError("select list is empty")
        return out

    @staticmethod
    def _item_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        expr = item.expression
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FunctionCall):
            return expr.name
        return expr.to_sql()[:64].lower()

    @staticmethod
    def _contains_aggregate(expr: ast.Expression) -> bool:
        return any(
            isinstance(e, ast.FunctionCall)
            and is_aggregate_function(e.name)
            and not _is_scalar_usage(e)
            for e in ast.walk_expressions(expr)
        )

    # ---- aggregation ------------------------------------------------------------

    def _bind_aggregate(
        self,
        child: LogicalNode,
        scope: _Scope,
        query: ast.SelectQuery,
        items: list[ast.SelectItem],
    ) -> tuple[LogicalNode, list[ast.Expression], ast.Expression | None]:
        """Build the LogicalAggregate and rewrite select/having expressions
        to reference its output."""
        group_bound: list[ast.Expression] = []
        for expr in query.group_by:
            group_bound.append(
                self._bind_expr(
                    self._resolve_group_expr(expr, items), scope, False
                )
            )

        # Collect aggregate calls from items and HAVING (bound over scope).
        bound_items = [
            self._bind_expr(item.expression, scope, allow_aggregates=True)
            for item in items
        ]
        bound_having = (
            self._bind_expr(query.having, scope, allow_aggregates=True)
            if query.having is not None
            else None
        )

        agg_calls: list[AggCall] = []
        agg_signatures: dict[str, int] = {}

        def register_aggregate(call: ast.FunctionCall) -> int:
            signature = call.to_sql()
            existing = agg_signatures.get(signature)
            if existing is not None:
                return existing
            for arg in call.args:
                if self._contains_aggregate(arg):
                    raise AnalysisError("aggregates cannot be nested")
            argument: ast.Expression | None
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                if call.name != "count":
                    raise AnalysisError(f"{call.name}(*) is not supported")
                argument = None
            elif len(call.args) == 1:
                argument = call.args[0]
            elif len(call.args) == 0:
                raise AnalysisError(f"{call.name}() requires an argument")
            else:
                raise AnalysisError(
                    f"aggregate {call.name}() takes one argument"
                )
            aggregate = make_aggregate(call.name, call.distinct, call.approximate)
            index = len(agg_calls)
            agg_calls.append(AggCall(aggregate, argument, signature))
            agg_signatures[signature] = index
            return index

        group_sql = [g.to_sql() for g in group_bound]
        group_types = [infer_type(g) for g in group_bound]

        valid_refs: set[int] = set()

        def rewrite(expr: ast.Expression) -> ast.Expression:
            sql = expr.to_sql()
            for k, gsql in enumerate(group_sql):
                if sql == gsql:
                    ref = ast.BoundRef(k, group_types[k], f"group{k}")
                    valid_refs.add(id(ref))
                    return ref
            if isinstance(expr, ast.FunctionCall) and is_aggregate_function(
                expr.name
            ) and not _is_scalar_usage(expr):
                index = register_aggregate(expr)
                call = agg_calls[index]
                input_type = (
                    infer_type(call.argument) if call.argument is not None else None
                )
                ref = ast.BoundRef(
                    len(group_bound) + index,
                    call.aggregate.result_type(input_type),
                    f"agg{index}",
                )
                valid_refs.add(id(ref))
                return ref
            return _rebuild(expr, rewrite)

        rewritten_items = [rewrite(e) for e in bound_items]
        rewritten_having = rewrite(bound_having) if bound_having is not None else None

        for rewritten, item in zip(rewritten_items, items):
            for node in ast.walk_expressions(rewritten):
                if isinstance(node, ast.BoundRef) and id(node) not in valid_refs:
                    raise AnalysisError(
                        f"column {node.name!r} must appear in GROUP BY or be "
                        f"used in an aggregate function"
                    )
        if rewritten_having is not None:
            for node in ast.walk_expressions(rewritten_having):
                if isinstance(node, ast.BoundRef) and id(node) not in valid_refs:
                    raise AnalysisError(
                        f"column {node.name!r} in HAVING must appear in GROUP BY "
                        f"or be used in an aggregate function"
                    )

        output = [
            BoundColumn(f"group{k}", t) for k, t in enumerate(group_types)
        ]
        for i, call in enumerate(agg_calls):
            input_type = (
                infer_type(call.argument) if call.argument is not None else None
            )
            output.append(
                BoundColumn(f"agg{i}", call.aggregate.result_type(input_type))
            )
        node = LogicalAggregate(
            child=child,
            group_exprs=group_bound,
            aggregates=agg_calls,
            output=output,
        )
        return node, rewritten_items, rewritten_having

    @staticmethod
    def _resolve_group_expr(
        expr: ast.Expression, items: list[ast.SelectItem]
    ) -> ast.Expression:
        """Resolve GROUP BY ordinals and select-list aliases."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            ordinal = expr.value
            if not 1 <= ordinal <= len(items):
                raise AnalysisError(
                    f"GROUP BY position {ordinal} is out of range"
                )
            return items[ordinal - 1].expression
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias == expr.name:
                    return item.expression
        return expr

    # ---- order by -----------------------------------------------------------------

    def _bind_order_by(
        self,
        order_items: list[ast.OrderItem],
        output: list[BoundColumn],
        items: list[ast.SelectItem],
        hidden_scope: "_Scope | None" = None,
    ) -> tuple[list[tuple[ast.Expression, bool]], list[ast.Expression]]:
        scope = _Scope(
            [
                _ScopeColumn("", c.name, c.sql_type, i)
                for i, c in enumerate(output)
            ]
        )
        # ORDER BY may repeat a select-list expression verbatim (possibly
        # qualified, e.g. "ORDER BY u.name" for item "u.name AS name").
        by_item_sql = {}
        for index, item in enumerate(items):
            by_item_sql.setdefault(item.expression.to_sql(), index)
        keys: list[tuple[ast.Expression, bool]] = []
        hidden: list[ast.Expression] = []
        for order in order_items:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                ordinal = expr.value
                if not 1 <= ordinal <= len(output):
                    raise AnalysisError(
                        f"ORDER BY position {ordinal} is out of range"
                    )
                col = output[ordinal - 1]
                keys.append(
                    (ast.BoundRef(ordinal - 1, col.sql_type, col.name), order.descending)
                )
                continue
            item_index = by_item_sql.get(expr.to_sql())
            if item_index is not None:
                col = output[item_index]
                keys.append(
                    (
                        ast.BoundRef(item_index, col.sql_type, col.name),
                        order.descending,
                    )
                )
                continue
            try:
                keys.append(
                    (
                        self._bind_expr(expr, scope, allow_aggregates=False),
                        order.descending,
                    )
                )
            except (ColumnNotFoundError, AmbiguousColumnError):
                if hidden_scope is None:
                    raise
                # ORDER BY may reference input columns that are not in the
                # select list; carry them as hidden projection columns.
                bound = self._bind_expr(expr, hidden_scope, allow_aggregates=False)
                keys.append(
                    (
                        ast.BoundRef(
                            len(output) + len(hidden),
                            infer_type(bound),
                            f"__sort{len(hidden)}",
                        ),
                        order.descending,
                    )
                )
                hidden.append(bound)
        return keys, hidden


class _SingleRowNode(LogicalNode):
    """Input for FROM-less SELECT: exactly one empty row on one slice."""

    def __init__(self) -> None:
        self.output: list[BoundColumn] = []


def _is_scalar_usage(call: ast.FunctionCall) -> bool:
    """MIN/MAX-style names collide with scalar LEFT/RIGHT; aggregates named
    left/right do not exist, so treat those names as scalar."""
    return call.name in ("left", "right")


def _rebuild(
    expr: ast.Expression, transform
) -> ast.Expression:
    """Rebuild one expression node with children passed through *transform*."""
    if isinstance(expr, (ast.Literal, ast.BoundRef, ast.ColumnRef, ast.Star)):
        return expr
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, transform(expr.left), transform(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, transform(expr.operand))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            [transform(a) for a in expr.args],
            distinct=expr.distinct,
            approximate=expr.approximate,
        )
    if isinstance(expr, ast.CastExpr):
        return ast.CastExpr(transform(expr.operand), expr.type_name, expr.type_params)
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            [(transform(c), transform(v)) for c, v in expr.whens],
            transform(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, ast.InExpr):
        return ast.InExpr(
            transform(expr.operand), [transform(i) for i in expr.items], expr.negated
        )
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(
            transform(expr.operand),
            transform(expr.low),
            transform(expr.high),
            expr.negated,
        )
    if isinstance(expr, ast.IsNullExpr):
        return ast.IsNullExpr(transform(expr.operand), expr.negated)
    if isinstance(expr, ast.LikeExpr):
        return ast.LikeExpr(
            transform(expr.operand),
            transform(expr.pattern),
            expr.negated,
            expr.case_insensitive,
        )
    raise AnalysisError(f"cannot rebuild {type(expr).__name__}")
