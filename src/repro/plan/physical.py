"""Physical planning: operator selection, filter pushdown, and the
distribution-aware join strategy choice.

This is where the MPP engine earns the paper's claims: a join whose inputs
are hash-partitioned on the join key runs co-located (``DS_DIST_NONE``,
zero bytes moved); otherwise the planner prices broadcasting the build side
against redistributing one or both sides and picks the cheaper, using
catalog statistics for sizing. The EXPLAIN labels follow Redshift's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.datatypes.types import SqlType
from repro.distribution.diststyle import DistStyle
from repro.engine.catalog import Catalog, ColumnStatistics, TableInfo
from repro.errors import AnalysisError
from repro.plan.bound import (
    AggCall,
    BoundColumn,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSetOp,
    LogicalSort,
)
from repro.plan.binder import _SingleRowNode
from repro.sql import ast

#: Default row estimate for tables with no statistics.
_DEFAULT_ROWS = 1000

_RANGE_OPS = frozenset(["<", "<=", ">", ">="])
_ZONE_OPS = frozenset(["=", "<", "<=", ">", ">=", "<>"])
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


# ---------------------------------------------------------------------------
# Partitioning descriptors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Partitioning:
    """How an operator's output rows are placed across slices.

    kind:
      * ``hash`` — hash-partitioned on output columns ``key``
      * ``rr`` — partitioned arbitrarily (round robin / inherited)
      * ``all`` — every slice holds a full copy
      * ``single`` — resident on the leader (slice 0 by convention)
    """

    kind: str
    key: tuple[int, ...] = ()


RR = Partitioning("rr")
ALL = Partitioning("all")
SINGLE = Partitioning("single")


class JoinDistribution(enum.Enum):
    """Redshift EXPLAIN join-distribution labels."""

    DS_DIST_NONE = "DS_DIST_NONE"          # co-located
    DS_BCAST_INNER = "DS_BCAST_INNER"      # broadcast build side
    DS_DIST_INNER = "DS_DIST_INNER"        # redistribute build side only
    DS_DIST_OUTER = "DS_DIST_OUTER"        # redistribute probe side only
    DS_DIST_BOTH = "DS_DIST_BOTH"          # redistribute both sides


# ---------------------------------------------------------------------------
# Physical nodes
# ---------------------------------------------------------------------------

class PhysicalNode:
    output: list[BoundColumn]
    partitioning: Partitioning
    est_rows: float

    #: Whether the vectorized executor has a column-batch implementation
    #: for this operator shape. Non-capable operators (sorts, limits,
    #: set ops, nested loops) consume materialized rows — the vectorized
    #: engine converts batches to rows at these boundaries.
    batch_capable: bool = False

    #: Whether the parallel executor can push this node's subtree down to
    #: per-slice workers as one fused morsel pipeline. Set by
    #: :func:`mark_parallel_eligible`: true for scan-rooted chains of
    #: Scan / Filter / Project (an Aggregate directly above such a chain
    #: additionally pushes partial aggregation into the workers).
    parallel_eligible: bool = False

    @property
    def children(self) -> list["PhysicalNode"]:
        return []

    @property
    def row_width(self) -> int:
        return max(1, sum(c.sql_type.byte_width for c in self.output))

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.row_width

    def label(self) -> str:
        raise NotImplementedError


@dataclass
class PhysicalScan(PhysicalNode):
    """Columnar scan with pushed-down filters and zone-map predicates.

    ``zone_predicates`` are (scan-output index, operator, literal) triples
    consulted against block zone maps; ``filters`` are the full residual
    conjuncts re-checked per row. ``live_columns`` (set by
    :func:`compute_live_columns`) are the output positions anything above
    actually reads — the executor fetches only those chains, which is the
    IO saving column stores exist for.
    """

    table: TableInfo
    binding: str
    column_indexes: list[int]
    filters: list[ast.Expression] = field(default_factory=list)
    zone_predicates: list[tuple[int, str, object]] = field(default_factory=list)
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS
    live_columns: frozenset[int] | None = None

    batch_capable = True

    def label(self) -> str:
        out = f"Seq Scan on {self.table.name}"
        if self.binding != self.table.name:
            out += f" {self.binding}"
        return out


@dataclass
class PhysicalFilter(PhysicalNode):
    child: PhysicalNode
    condition: ast.Expression
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    batch_capable = True

    @property
    def children(self):
        return [self.child]

    def label(self) -> str:
        return "Filter"


@dataclass
class PhysicalProject(PhysicalNode):
    child: PhysicalNode
    expressions: list[ast.Expression] = field(default_factory=list)
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    batch_capable = True

    @property
    def children(self):
        return [self.child]

    def label(self) -> str:
        return "Project"


@dataclass
class PhysicalHashJoin(PhysicalNode):
    """Hash join; ``build_right`` says which child is the build (inner) side."""

    kind: ast.JoinKind
    left: PhysicalNode
    right: PhysicalNode
    keys: list[tuple[int, int]] = field(default_factory=list)
    residual: ast.Expression | None = None
    strategy: JoinDistribution = JoinDistribution.DS_DIST_NONE
    build_right: bool = True
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    batch_capable = True

    @property
    def children(self):
        return [self.left, self.right]

    def label(self) -> str:
        conds = ", ".join(
            f"{self.left.output[l].name} = {self.right.output[r].name}"
            for l, r in self.keys
        )
        return (
            f"Hash {self.kind.value} Join {self.strategy.value} "
            f"Hash Cond: ({conds})"
        )


@dataclass
class PhysicalMergeJoin(PhysicalNode):
    """Sort-merge join: both inputs are sorted on the join key per slice
    and merged. The default operator-selection chain picks it only for
    co-located (``DS_DIST_NONE``) inner joins whose inputs are scans of
    tables already sorted on the joined column, where the per-slice sort
    is (nearly) free."""

    kind: ast.JoinKind
    left: PhysicalNode
    right: PhysicalNode
    keys: list[tuple[int, int]] = field(default_factory=list)
    residual: ast.Expression | None = None
    strategy: JoinDistribution = JoinDistribution.DS_DIST_NONE
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    @property
    def children(self):
        return [self.left, self.right]

    def label(self) -> str:
        conds = ", ".join(
            f"{self.left.output[l].name} = {self.right.output[r].name}"
            for l, r in self.keys
        )
        return (
            f"Merge {self.kind.value} Join {self.strategy.value} "
            f"Merge Cond: ({conds})"
        )


@dataclass
class PhysicalNestedLoopJoin(PhysicalNode):
    """Fallback for joins with no equi-keys (cross / theta joins)."""

    kind: ast.JoinKind
    left: PhysicalNode
    right: PhysicalNode
    residual: ast.Expression | None = None
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    @property
    def children(self):
        return [self.left, self.right]

    def label(self) -> str:
        return f"Nested Loop {self.kind.value} Join DS_BCAST_INNER"


@dataclass
class PhysicalAggregate(PhysicalNode):
    """Hash aggregation.

    ``local_only`` means the grouping covers the child's hash-partition key,
    so every group is confined to one slice and no leader merge is needed —
    the co-located aggregation the distribution-key design enables.
    """

    child: PhysicalNode
    group_exprs: list[ast.Expression] = field(default_factory=list)
    aggregates: list[AggCall] = field(default_factory=list)
    local_only: bool = False
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    batch_capable = True

    @property
    def children(self):
        return [self.child]

    def label(self) -> str:
        mode = "Local HashAggregate" if self.local_only else "HashAggregate"
        return mode


@dataclass
class PhysicalSetOp(PhysicalNode):
    """UNION (ALL) stays distributed; INTERSECT/EXCEPT and UNION DISTINCT
    finalize at the leader."""

    op: str
    all: bool
    left: PhysicalNode
    right: PhysicalNode
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = RR
    est_rows: float = _DEFAULT_ROWS

    @property
    def children(self):
        return [self.left, self.right]

    def label(self) -> str:
        keyword = self.op.upper() + (" ALL" if self.all else "")
        return f"SetOp {keyword}"


@dataclass
class PhysicalDistinct(PhysicalNode):
    child: PhysicalNode
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = SINGLE
    est_rows: float = _DEFAULT_ROWS

    @property
    def children(self):
        return [self.child]

    def label(self) -> str:
        return "Unique"


@dataclass
class PhysicalSort(PhysicalNode):
    child: PhysicalNode
    keys: list[tuple[ast.Expression, bool]] = field(default_factory=list)
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = SINGLE
    est_rows: float = _DEFAULT_ROWS

    @property
    def children(self):
        return [self.child]

    def label(self) -> str:
        rendered = ", ".join(
            f"{e.to_sql()}{' DESC' if desc else ''}" for e, desc in self.keys
        )
        return f"Merge Sort Key: {rendered}"


@dataclass
class PhysicalLimit(PhysicalNode):
    child: PhysicalNode
    limit: int | None = None
    offset: int | None = None
    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = SINGLE
    est_rows: float = _DEFAULT_ROWS

    @property
    def children(self):
        return [self.child]

    def label(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"Limit {self.limit}")
        if self.offset is not None:
            parts.append(f"Offset {self.offset}")
        return " ".join(parts) or "Limit"


@dataclass
class PhysicalSingleRow(PhysicalNode):
    """One empty row (FROM-less SELECT)."""

    output: list[BoundColumn] = field(default_factory=list)
    partitioning: Partitioning = SINGLE
    est_rows: float = 1.0

    def label(self) -> str:
        return "Result"


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

class PhysicalPlanner:
    """Converts a bound logical plan into a distributed physical plan.

    With ``enable_cbo`` (the default) inner-join regions go through the
    System-R dynamic-programming enumerator in :mod:`repro.plan.optimizer`
    and every join's algorithm / build side / distribution strategy comes
    from the pluggable chain-of-strategies ``operator_selection``. With it
    off, joins stay in written order (the chain still picks strategies, so
    both paths produce identical single-join plans).
    """

    #: Join regions wider than this skip DP enumeration (3^n subset work)
    #: and keep their written order.
    MAX_DP_LEAVES = 10

    def __init__(
        self,
        catalog: Catalog,
        slice_count: int,
        enable_cbo: bool = True,
        operator_selection=None,
    ):
        if slice_count < 1:
            raise ValueError(f"slice_count must be positive, got {slice_count}")
        self._catalog = catalog
        self._slices = slice_count
        self._enable_cbo = enable_cbo
        if operator_selection is None:
            from repro.plan.optimizer import default_operator_selection

            operator_selection = default_operator_selection()
        self._operator_selection = operator_selection
        #: id(physical node) -> per-output-position ColumnStatistics (or
        #: None where unknown); the provenance the cardinality model reads.
        self._col_stats: dict[int, list[ColumnStatistics | None]] = {}

    def plan(self, logical: LogicalNode) -> PhysicalNode:
        self._col_stats = {}
        pushed = _push_filters(logical)
        physical = self._convert(pushed)
        compute_live_columns(physical)
        mark_parallel_eligible(physical)
        return physical

    # ---- column-statistics provenance -------------------------------------

    def _record_stats(
        self, node: PhysicalNode, stats: list[ColumnStatistics | None] | None
    ) -> None:
        if stats is not None:
            self._col_stats[id(node)] = stats

    def _stats_for(
        self, node: PhysicalNode
    ) -> list[ColumnStatistics | None] | None:
        return self._col_stats.get(id(node))

    # ---- conversion -------------------------------------------------------

    def _convert(self, node: LogicalNode) -> PhysicalNode:
        if isinstance(node, LogicalScan):
            return self._convert_scan(node, [])
        if isinstance(node, LogicalFilter):
            return self._convert_filter(node)
        if isinstance(node, LogicalProject):
            return self._convert_project(node)
        if isinstance(node, LogicalJoin):
            planned = self._maybe_optimize_join(node, [])
            if planned is not None:
                return planned
            return self._convert_join(node)
        if isinstance(node, LogicalAggregate):
            return self._convert_aggregate(node)
        if isinstance(node, LogicalDistinct):
            child = self._convert(node.child)
            return PhysicalDistinct(
                child,
                output=list(node.output),
                partitioning=SINGLE,
                est_rows=max(1.0, child.est_rows * 0.5),
            )
        if isinstance(node, LogicalSort):
            child = self._convert(node.child)
            return PhysicalSort(
                child,
                keys=node.keys,
                output=list(node.output),
                partitioning=SINGLE,
                est_rows=child.est_rows,
            )
        if isinstance(node, LogicalLimit):
            child = self._convert(node.child)
            est = child.est_rows
            if node.limit is not None:
                est = min(est, node.limit)
            return PhysicalLimit(
                child,
                limit=node.limit,
                offset=node.offset,
                output=list(node.output),
                partitioning=SINGLE,
                est_rows=est,
            )
        if isinstance(node, LogicalSetOp):
            left = self._convert(node.left)
            right = self._convert(node.right)
            if node.op == "union":
                est = left.est_rows + right.est_rows
                if not node.all:
                    est *= 0.7
            elif node.op == "intersect":
                est = min(left.est_rows, right.est_rows) * 0.5
            else:  # except
                est = left.est_rows * 0.5
            partitioning = RR if (node.op == "union" and node.all) else SINGLE
            return PhysicalSetOp(
                op=node.op,
                all=node.all,
                left=left,
                right=right,
                output=list(node.output),
                partitioning=partitioning,
                est_rows=max(1.0, est),
            )
        if isinstance(node, _SingleRowNode):
            return PhysicalSingleRow(output=[])
        raise AnalysisError(f"cannot plan {type(node).__name__}")

    def _convert_scan(
        self, node: LogicalScan, conjuncts: list[ast.Expression]
    ) -> PhysicalScan:
        table = node.table
        from repro.sql.expressions import literal_value

        zone_predicates: list[tuple[int, str, object]] = []
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, ast.BetweenExpr)
                and not conjunct.negated
                and isinstance(conjunct.operand, ast.BoundRef)
                and isinstance(conjunct.low, ast.Literal)
                and isinstance(conjunct.high, ast.Literal)
            ):
                index = conjunct.operand.index
                zone_predicates.append((index, ">=", literal_value(conjunct.low)))
                zone_predicates.append((index, "<=", literal_value(conjunct.high)))
                continue
            zone = _as_zone_predicate(conjunct)
            if zone is not None:
                zone_predicates.append(zone)
        partitioning = self._scan_partitioning(node)
        base_rows = table.statistics.row_count or _DEFAULT_ROWS
        col_stats: list[ColumnStatistics | None] | None = None
        if not table.statistics.stale and table.statistics.row_count > 0:
            col_stats = [
                table.statistics.columns.get(table.columns[i].name)
                for i in node.column_indexes
            ]
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= _conjunct_selectivity(conjunct, col_stats)
        scan = PhysicalScan(
            table=table,
            binding=node.binding,
            column_indexes=list(node.column_indexes),
            filters=list(conjuncts),
            zone_predicates=zone_predicates,
            output=list(node.output),
            partitioning=partitioning,
            est_rows=max(1.0, base_rows * selectivity),
        )
        self._record_stats(scan, col_stats)
        return scan

    def _scan_partitioning(self, node: LogicalScan) -> Partitioning:
        dist = node.table.distribution
        if dist.style is DistStyle.ALL:
            return ALL
        if dist.style is DistStyle.KEY:
            key_column = dist.column  # type: ignore[attr-defined]
            table_index = node.table.column_index(key_column)
            if table_index in node.column_indexes:
                return Partitioning(
                    "hash", (node.column_indexes.index(table_index),)
                )
        return RR

    def _convert_filter(self, node: LogicalFilter) -> PhysicalNode:
        conjuncts = _split_conjuncts(node.condition)
        if isinstance(node.child, LogicalScan):
            return self._convert_scan(node.child, conjuncts)
        if isinstance(node.child, LogicalJoin):
            # Conjuncts that could not sink past the join (they reference
            # both sides) become join-region predicates under the CBO —
            # cross-side equalities turn into hash-join edges there.
            planned = self._maybe_optimize_join(node.child, conjuncts)
            if planned is not None:
                return planned
        child = self._convert(node.child)
        child_stats = self._stats_for(child)
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= _conjunct_selectivity(conjunct, child_stats)
        filt = PhysicalFilter(
            child,
            node.condition,
            output=list(node.output),
            partitioning=child.partitioning,
            est_rows=max(1.0, child.est_rows * selectivity),
        )
        self._record_stats(filt, child_stats)
        return filt

    def _convert_project(self, node: LogicalProject) -> PhysicalProject:
        child = self._convert(node.child)
        partitioning = _project_partitioning(child.partitioning, node.expressions)
        child_stats = self._stats_for(child)
        proj = PhysicalProject(
            child,
            expressions=list(node.expressions),
            output=list(node.output),
            partitioning=partitioning,
            est_rows=child.est_rows,
        )
        if child_stats is not None:
            self._record_stats(
                proj,
                [
                    child_stats[e.index]
                    if isinstance(e, ast.BoundRef) and e.index < len(child_stats)
                    else None
                    for e in node.expressions
                ],
            )
        return proj

    # ---- joins ------------------------------------------------------------------

    def _maybe_optimize_join(
        self, node: LogicalJoin, extra_conjuncts: list[ast.Expression]
    ) -> PhysicalNode | None:
        """Route an inner-join region through the DP enumerator.

        Returns None when the CBO is off, the join kind pins the written
        order (outer joins), or the region exceeds :attr:`MAX_DP_LEAVES`
        — the caller then falls back to written-order conversion.
        """
        if not self._enable_cbo:
            return None
        if node.kind not in (ast.JoinKind.INNER, ast.JoinKind.CROSS):
            return None
        from repro.plan.optimizer import optimize_join_region

        return optimize_join_region(self, node, extra_conjuncts)

    def _convert_join(self, node: LogicalJoin) -> PhysicalNode:
        left = self._convert(node.left)
        right = self._convert(node.right)
        if not node.equi_keys and node.kind is ast.JoinKind.FULL:
            raise AnalysisError("FULL JOIN requires an equality condition")
        return self._make_join(
            node.kind,
            left,
            right,
            list(node.equi_keys),
            node.residual,
            list(node.output),
        )

    def _make_join(
        self,
        kind: ast.JoinKind,
        left: PhysicalNode,
        right: PhysicalNode,
        equi_keys: list[tuple[int, int]],
        residual: ast.Expression | None,
        output: list[BoundColumn],
    ) -> PhysicalNode:
        """Construct a physical join: the operator-selection chain picks
        the algorithm, build side, and distribution strategy."""
        joined_stats = self._joined_stats(left, right)
        if not equi_keys:
            node = self._nested_loop(
                kind, left, right, residual, output, joined_stats
            )
            self._record_stats(node, joined_stats)
            return node
        from repro.plan.optimizer import JoinSite

        site = JoinSite.from_nodes(
            self, kind, equi_keys, left, right, self._slices
        )
        decision = self._operator_selection.select_join_operators(site)
        est = self._estimate_join_rows(kind, equi_keys, residual, left, right)
        partitioning = self._join_partitioning(
            equi_keys, left, right, decision.strategy, decision.build_right
        )
        if decision.algorithm == "merge":
            node: PhysicalNode = PhysicalMergeJoin(
                kind=kind,
                left=left,
                right=right,
                keys=list(equi_keys),
                residual=residual,
                strategy=decision.strategy,
                output=output,
                partitioning=partitioning,
                est_rows=est,
            )
        else:
            node = PhysicalHashJoin(
                kind=kind,
                left=left,
                right=right,
                keys=list(equi_keys),
                residual=residual,
                strategy=decision.strategy,
                build_right=decision.build_right,
                output=output,
                partitioning=partitioning,
                est_rows=est,
            )
        self._record_stats(node, joined_stats)
        return node

    def _joined_stats(
        self, left: PhysicalNode, right: PhysicalNode
    ) -> list[ColumnStatistics | None] | None:
        lstats = self._stats_for(left)
        rstats = self._stats_for(right)
        if lstats is None and rstats is None:
            return None
        if lstats is None:
            lstats = [None] * len(left.output)
        if rstats is None:
            rstats = [None] * len(right.output)
        return list(lstats) + list(rstats)

    def _nested_loop(
        self,
        kind: ast.JoinKind,
        left: PhysicalNode,
        right: PhysicalNode,
        residual: ast.Expression | None,
        output: list[BoundColumn],
        joined_stats: list[ColumnStatistics | None] | None = None,
    ) -> PhysicalNestedLoopJoin:
        if kind is ast.JoinKind.FULL:
            raise AnalysisError("FULL JOIN requires an equality condition")
        est = left.est_rows * right.est_rows
        if residual is not None:
            for conjunct in _split_conjuncts(residual):
                est *= _conjunct_selectivity(conjunct, joined_stats)
        return PhysicalNestedLoopJoin(
            kind=kind,
            left=left,
            right=right,
            residual=residual,
            output=output,
            partitioning=left.partitioning
            if left.partitioning.kind != "all"
            else RR,
            est_rows=max(1.0, est),
        )

    @staticmethod
    def _colocated(partitioning: Partitioning, keys: tuple[int, ...]) -> bool:
        """Input already hash-partitioned on (a subset of) the join keys."""
        return (
            partitioning.kind == "hash"
            and len(partitioning.key) == 1
            and partitioning.key[0] in keys
        )

    @staticmethod
    def _keys_aligned(
        equi_keys: list[tuple[int, int]],
        left_part: Partitioning,
        right_part: Partitioning,
    ) -> bool:
        """Both sides must be partitioned on the *same* equi-key pair."""
        if left_part.kind != "hash" or right_part.kind != "hash":
            return False
        for l, r in equi_keys:
            if left_part.key == (l,) and right_part.key == (r,):
                return True
        return False

    def _join_partitioning(
        self,
        equi_keys: list[tuple[int, int]],
        left: PhysicalNode,
        right: PhysicalNode,
        strategy: JoinDistribution,
        build_right: bool,
    ) -> Partitioning:
        offset = len(left.output)
        if strategy is JoinDistribution.DS_DIST_NONE:
            if left.partitioning.kind == "all" and right.partitioning.kind == "all":
                return RR
            if left.partitioning.kind == "all":
                return _shift_partitioning(right.partitioning, offset)
            return left.partitioning
        if strategy is JoinDistribution.DS_BCAST_INNER:
            probe = left if build_right else right
            part = probe.partitioning
            return part if build_right else _shift_partitioning(part, offset)
        # Redistributed joins are hash-partitioned on the first equi pair.
        l, _r = equi_keys[0]
        return Partitioning("hash", (l,))

    def _estimate_join_rows(
        self,
        kind: ast.JoinKind,
        equi_keys: list[tuple[int, int]],
        residual: ast.Expression | None,
        left: PhysicalNode,
        right: PhysicalNode,
    ) -> float:
        """Join cardinality: ``|L|·|R| / max(ndv_L, ndv_R)`` per equi pair
        when both sides carry fresh NDV statistics; the pre-stats upper
        bound ``max(|L|, |R|)`` otherwise (stale/missing stats)."""
        lstats = self._stats_for(left)
        rstats = self._stats_for(right)
        est: float | None = None
        if equi_keys:
            selectivity = 1.0
            have_all = True
            for l, r in equi_keys:
                ndv = _pair_ndv(
                    lstats[l] if lstats and l < len(lstats) else None,
                    rstats[r] if rstats and r < len(rstats) else None,
                )
                if ndv is None:
                    have_all = False
                    break
                selectivity /= ndv
            if have_all:
                est = left.est_rows * right.est_rows * selectivity
        if est is None:
            est = max(left.est_rows, right.est_rows)
        if residual is not None:
            joined = self._joined_stats(left, right)
            for conjunct in _split_conjuncts(residual):
                est *= _conjunct_selectivity(conjunct, joined)
        if kind in (ast.JoinKind.LEFT, ast.JoinKind.FULL):
            est = max(est, left.est_rows)
        if kind in (ast.JoinKind.RIGHT, ast.JoinKind.FULL):
            est = max(est, right.est_rows)
        return max(1.0, est)

    def _sorted_prefix(self, node: PhysicalNode) -> tuple[int, ...]:
        """Output positions a scan's rows arrive sorted on (per slice):
        the compound sort key of an un-filtered scan, mapped through the
        scan's column order. Empty for everything else."""
        from repro.sortkeys import CompoundSortKey

        if not isinstance(node, PhysicalScan):
            return ()
        sort_key = node.table.sort_key
        if not isinstance(sort_key, CompoundSortKey):
            return ()
        out: list[int] = []
        for name in sort_key.columns:
            table_index = node.table.column_index(name)
            if table_index not in node.column_indexes:
                break
            out.append(node.column_indexes.index(table_index))
        return tuple(out)

    # ---- aggregation ------------------------------------------------------------

    def _convert_aggregate(self, node: LogicalAggregate) -> PhysicalAggregate:
        child = self._convert(node.child)
        local_only = False
        group_ref_indexes = {
            expr.index
            for expr in node.group_exprs
            if isinstance(expr, ast.BoundRef)
        }
        if (
            node.group_exprs
            and child.partitioning.kind == "hash"
            and set(child.partitioning.key) <= group_ref_indexes
        ):
            local_only = True
        if node.group_exprs:
            # Distinct-group estimate: the product of the group columns'
            # NDVs capped at the child's rows when statistics are fresh;
            # the historical 0.1 selectivity when stale or non-column.
            child_stats = self._stats_for(child)
            ndv_product: float | None = 1.0
            for expr in node.group_exprs:
                col = (
                    child_stats[expr.index]
                    if child_stats is not None
                    and isinstance(expr, ast.BoundRef)
                    and expr.index < len(child_stats)
                    else None
                )
                if col is None or col.distinct_count <= 0:
                    ndv_product = None
                    break
                ndv_product *= col.distinct_count
            if ndv_product is not None:
                est = max(1.0, min(child.est_rows, ndv_product))
            else:
                est = max(1.0, child.est_rows * 0.1)
        else:
            est = 1.0
        agg_stats: list[ColumnStatistics | None] | None = None
        child_stats_all = self._stats_for(child)
        if child_stats_all is not None:
            agg_stats = [
                child_stats_all[e.index]
                if isinstance(e, ast.BoundRef) and e.index < len(child_stats_all)
                else None
                for e in node.group_exprs
            ] + [None] * len(node.aggregates)
        partitioning: Partitioning
        if local_only:
            # Group keys contain the partition key; output stays distributed,
            # hashed on that key's position in the group-key output.
            key_child_index = child.partitioning.key[0]
            out_index = next(
                i
                for i, expr in enumerate(node.group_exprs)
                if isinstance(expr, ast.BoundRef) and expr.index == key_child_index
            )
            partitioning = Partitioning("hash", (out_index,))
        else:
            partitioning = SINGLE
        agg = PhysicalAggregate(
            child=child,
            group_exprs=list(node.group_exprs),
            aggregates=list(node.aggregates),
            local_only=local_only,
            output=list(node.output),
            partitioning=partitioning,
            est_rows=est,
        )
        self._record_stats(agg, agg_stats)
        return agg


# ---------------------------------------------------------------------------
# Filter pushdown (logical level)
# ---------------------------------------------------------------------------

def _push_filters(node: LogicalNode) -> LogicalNode:
    """Push WHERE conjuncts through joins toward the scans they reference."""
    if isinstance(node, LogicalFilter):
        child = _push_filters(node.child)
        conjuncts = _split_conjuncts(node.condition)
        remaining = _sink_conjuncts(child, conjuncts)
        if remaining is child:
            return child  # everything was absorbed
        return remaining
    for attr in ("child", "left", "right"):
        if hasattr(node, attr):
            setattr(node, attr, _push_filters(getattr(node, attr)))
    return node


def _sink_conjuncts(
    node: LogicalNode, conjuncts: list[ast.Expression]
) -> LogicalNode:
    """Absorb *conjuncts* into the subtree rooted at *node*; returns the
    (possibly new) subtree with a Filter for whatever could not sink."""
    if not conjuncts:
        return node
    if isinstance(node, LogicalJoin):
        width_left = len(node.left.output)
        push_left: list[ast.Expression] = []
        push_right: list[ast.Expression] = []
        keep: list[ast.Expression] = []
        left_ok = node.kind in (ast.JoinKind.INNER, ast.JoinKind.CROSS, ast.JoinKind.LEFT)
        right_ok = node.kind in (ast.JoinKind.INNER, ast.JoinKind.CROSS, ast.JoinKind.RIGHT)
        for conjunct in conjuncts:
            refs = {
                e.index
                for e in ast.walk_expressions(conjunct)
                if isinstance(e, ast.BoundRef)
            }
            if refs and max(refs) < width_left and left_ok:
                push_left.append(conjunct)
            elif refs and min(refs) >= width_left and right_ok:
                push_right.append(_remap(conjunct, -width_left))
            else:
                keep.append(conjunct)
        node.left = _sink_conjuncts(node.left, push_left)
        node.right = _sink_conjuncts(node.right, push_right)
        return _wrap_filter(node, keep)
    if isinstance(node, LogicalFilter):
        merged = _split_conjuncts(node.condition) + conjuncts
        return _sink_conjuncts(node.child, merged)
    if isinstance(node, LogicalScan):
        return _wrap_filter(node, conjuncts)
    # Projections/aggregates: stop sinking (binder already placed HAVING
    # correctly; WHERE never sits above them for a single query block).
    return _wrap_filter(node, conjuncts)


def _wrap_filter(
    node: LogicalNode, conjuncts: list[ast.Expression]
) -> LogicalNode:
    if not conjuncts:
        return node
    condition = conjuncts[0]
    for extra in conjuncts[1:]:
        condition = ast.BinaryOp("AND", condition, extra)
    return LogicalFilter(node, condition, output=list(node.output))


def _remap(expr: ast.Expression, delta: int) -> ast.Expression:
    """Shift every BoundRef index by *delta* (for pushing through joins)."""
    if isinstance(expr, ast.BoundRef):
        return ast.BoundRef(expr.index + delta, expr.sql_type, expr.name)
    from repro.plan.binder import _rebuild

    return _rebuild(expr, lambda e: _remap(e, delta))


def _split_conjuncts(condition: ast.Expression) -> list[ast.Expression]:
    if isinstance(condition, ast.BinaryOp) and condition.op == "AND":
        return _split_conjuncts(condition.left) + _split_conjuncts(condition.right)
    return [condition]


def _shift_partitioning(part: Partitioning, offset: int) -> Partitioning:
    if part.kind != "hash":
        return part
    return Partitioning("hash", tuple(k + offset for k in part.key))


def _project_partitioning(
    child: Partitioning, expressions: list[ast.Expression]
) -> Partitioning:
    """Track hash partitioning through a projection when the key columns
    survive as bare references; otherwise degrade to round robin."""
    if child.kind != "hash":
        return child
    mapping: dict[int, int] = {}
    for out_idx, expr in enumerate(expressions):
        if isinstance(expr, ast.BoundRef) and expr.index not in mapping:
            mapping[expr.index] = out_idx
    new_key = []
    for k in child.key:
        if k not in mapping:
            return RR
        new_key.append(mapping[k])
    return Partitioning("hash", tuple(new_key))


# ---------------------------------------------------------------------------
# Zone predicates & selectivity
# ---------------------------------------------------------------------------

def _as_zone_predicate(
    conjunct: ast.Expression,
) -> tuple[int, str, object] | None:
    """Match ``col <op> literal`` conjuncts usable for block skipping."""
    from repro.sql.expressions import literal_value

    if isinstance(conjunct, ast.BetweenExpr) and not conjunct.negated:
        return None  # handled by the caller splitting BETWEEN; keep simple
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op not in _ZONE_OPS:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.BoundRef) and isinstance(right, ast.Literal):
        return (left.index, conjunct.op, literal_value(right))
    if isinstance(right, ast.BoundRef) and isinstance(left, ast.Literal):
        return (right.index, _FLIP[conjunct.op], literal_value(left))
    return None


def _pair_ndv(
    left: ColumnStatistics | None, right: ColumnStatistics | None
) -> int | None:
    """``max(ndv_L, ndv_R)`` for one equi pair, None when neither side
    carries a usable distinct count."""
    ndv = 0
    if left is not None and left.distinct_count > 0:
        ndv = left.distinct_count
    if right is not None and right.distinct_count > 0:
        ndv = max(ndv, right.distinct_count)
    return ndv or None


def _conjunct_selectivity(
    conjunct: ast.Expression,
    stats: list[ColumnStatistics | None] | None,
) -> float:
    """Per-conjunct selectivity, statistics-based where possible.

    *stats* maps the conjunct's BoundRef indices to fresh column
    statistics (None entries / None list mean unknown). Falls back to the
    pre-stats heuristics per conjunct shape.
    """
    if stats is not None:
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op in ("AND", "OR"):
            left = _conjunct_selectivity(conjunct.left, stats)
            right = _conjunct_selectivity(conjunct.right, stats)
            if conjunct.op == "AND":
                return left * right
            return min(1.0, left + right)
        zone = _as_zone_predicate(conjunct)
        if zone is not None:
            index, op, value = zone
            col = stats[index] if index < len(stats) else None
            estimated = _stats_selectivity(col, op, value)
            if estimated is not None:
                return estimated
        if (
            isinstance(conjunct, ast.BetweenExpr)
            and not conjunct.negated
            and isinstance(conjunct.operand, ast.BoundRef)
            and isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
        ):
            from repro.sql.expressions import literal_value

            index = conjunct.operand.index
            col = stats[index] if index < len(stats) else None
            low = _stats_selectivity(col, ">=", literal_value(conjunct.low))
            high = _stats_selectivity(col, "<=", literal_value(conjunct.high))
            if low is not None and high is not None:
                return max(0.0, low + high - 1.0)
        if isinstance(conjunct, ast.IsNullExpr) and isinstance(
            conjunct.operand, ast.BoundRef
        ):
            col = (
                stats[conjunct.operand.index]
                if conjunct.operand.index < len(stats)
                else None
            )
            if col is not None:
                fraction = min(1.0, max(0.0, col.null_fraction))
                return (1.0 - fraction) if conjunct.negated else fraction
        if (
            isinstance(conjunct, ast.InExpr)
            and not conjunct.negated
            and isinstance(conjunct.operand, ast.BoundRef)
        ):
            col = (
                stats[conjunct.operand.index]
                if conjunct.operand.index < len(stats)
                else None
            )
            if col is not None and col.distinct_count > 0:
                return min(
                    1.0, max(1, len(conjunct.items)) / col.distinct_count
                )
    return _selectivity(conjunct)


def _stats_selectivity(
    col: ColumnStatistics | None, op: str, value: object
) -> float | None:
    """Selectivity of ``col <op> value`` from one column's statistics:
    equality via 1/NDV, ranges via min/max interpolation. None when the
    statistics cannot price this comparison."""
    if col is None:
        return None
    not_null = 1.0 - min(1.0, max(0.0, col.null_fraction))
    if op == "=":
        if col.distinct_count <= 0:
            return None
        if _outside_range(col, value):
            return 0.0
        return not_null / col.distinct_count
    if op == "<>":
        if col.distinct_count <= 0:
            return None
        if _outside_range(col, value):
            return not_null
        return not_null * (1.0 - 1.0 / col.distinct_count)
    if op in _RANGE_OPS:
        fraction = _range_fraction(col, value)
        if fraction is None:
            return None
        if op in ("<", "<="):
            return not_null * fraction
        return not_null * (1.0 - fraction)
    return None


def _outside_range(col: ColumnStatistics, value: object) -> bool:
    try:
        if col.low is not None and value < col.low:  # type: ignore[operator]
            return True
        if col.high is not None and value > col.high:  # type: ignore[operator]
            return True
    except TypeError:
        return False
    return False


def _range_fraction(col: ColumnStatistics, value: object) -> float | None:
    """Fraction of the [low, high] interval below *value* (numeric only)."""
    low, high = col.low, col.high
    if not all(isinstance(v, (int, float)) for v in (low, high, value)):
        return None
    if value <= low:  # type: ignore[operator]
        return 0.0
    if value >= high:  # type: ignore[operator]
        return 1.0
    span = float(high) - float(low)  # type: ignore[arg-type]
    if span <= 0:
        return 1.0
    return (float(value) - float(low)) / span  # type: ignore[arg-type]


def _selectivity(conjunct: ast.Expression) -> float:
    """Crude per-conjunct selectivity heuristic for sizing."""
    if isinstance(conjunct, ast.BinaryOp):
        if conjunct.op == "=":
            return 0.05
        if conjunct.op in _RANGE_OPS:
            return 0.33
        if conjunct.op == "<>":
            return 0.9
        if conjunct.op == "OR":
            return min(1.0, _selectivity(conjunct.left) + _selectivity(conjunct.right))
        if conjunct.op == "AND":
            return _selectivity(conjunct.left) * _selectivity(conjunct.right)
    if isinstance(conjunct, ast.BetweenExpr):
        return 0.25
    if isinstance(conjunct, ast.LikeExpr):
        return 0.25
    if isinstance(conjunct, ast.InExpr):
        return min(1.0, 0.05 * max(1, len(conjunct.items)))
    if isinstance(conjunct, ast.IsNullExpr):
        return 0.1
    return 0.5


# ---------------------------------------------------------------------------
# Live-column analysis (projection pushdown to the scan layer)
# ---------------------------------------------------------------------------

def _expr_refs(expr: ast.Expression | None) -> set[int]:
    if expr is None:
        return set()
    return {
        e.index for e in ast.walk_expressions(expr) if isinstance(e, ast.BoundRef)
    }


def compute_live_columns(root: PhysicalNode) -> None:
    """Annotate every scan with the output positions consumers read.

    Row tuples keep full scan width (positions for dead columns hold
    None), so no index remapping is needed anywhere above — but the
    executor only touches the live chains' blocks.
    """
    _live(root, set(range(len(root.output))))


def _live(node: PhysicalNode, needed: set[int]) -> None:
    if isinstance(node, PhysicalScan):
        refs = set(needed)
        for conjunct in node.filters:
            refs |= _expr_refs(conjunct)
        refs |= {i for i, _, _ in node.zone_predicates}
        node.live_columns = frozenset(
            i for i in refs if i < len(node.output)
        )
        return
    if isinstance(node, PhysicalFilter):
        _live(node.child, needed | _expr_refs(node.condition))
        return
    if isinstance(node, PhysicalProject):
        child_needed: set[int] = set()
        for i, expr in enumerate(node.expressions):
            if i in needed:
                child_needed |= _expr_refs(expr)
        _live(node.child, child_needed)
        return
    if isinstance(
        node, (PhysicalHashJoin, PhysicalMergeJoin, PhysicalNestedLoopJoin)
    ):
        width_left = len(node.left.output)
        left_needed = {i for i in needed if i < width_left}
        right_needed = {i - width_left for i in needed if i >= width_left}
        residual = _expr_refs(node.residual)
        left_needed |= {i for i in residual if i < width_left}
        right_needed |= {i - width_left for i in residual if i >= width_left}
        if isinstance(node, (PhysicalHashJoin, PhysicalMergeJoin)):
            left_needed |= {l for l, _ in node.keys}
            right_needed |= {r for _, r in node.keys}
        _live(node.left, left_needed)
        _live(node.right, right_needed)
        return
    if isinstance(node, PhysicalAggregate):
        child_needed: set[int] = set()
        for expr in node.group_exprs:
            child_needed |= _expr_refs(expr)
        for call in node.aggregates:
            child_needed |= _expr_refs(call.argument)
        _live(node.child, child_needed)
        return
    if isinstance(node, PhysicalSort):
        key_refs: set[int] = set()
        for expr, _ in node.keys:
            key_refs |= _expr_refs(expr)
        _live(node.child, needed | key_refs)
        return
    if isinstance(node, PhysicalDistinct):
        # Distinct compares whole rows.
        _live(node.child, set(range(len(node.child.output))))
        return
    if isinstance(node, PhysicalSetOp):
        # Set operations compare whole rows across both inputs.
        _live(node.left, set(range(len(node.left.output))))
        _live(node.right, set(range(len(node.right.output))))
        return
    if isinstance(node, PhysicalLimit):
        _live(node.child, set(needed))
        return
    for child in node.children:  # pragma: no cover - future node kinds
        _live(child, set(range(len(child.output))))


# ---------------------------------------------------------------------------
# Parallel-eligibility marking
# ---------------------------------------------------------------------------

def mark_parallel_eligible(root: PhysicalNode) -> None:
    """Annotate subtrees the parallel executor can ship to slice workers.

    Eligible means the subtree is a pure per-slice pipeline: a Scan
    optionally topped by Filter / Project nodes. Such a chain reads one
    shard's blocks and touches no other slice's data, so it can run as
    independent block-range morsels. Aggregates are not marked themselves
    — the executor checks ``node.child.parallel_eligible`` and pushes
    partial aggregation into the same worker pipeline when it holds.
    """
    for child in root.children:
        mark_parallel_eligible(child)
    if isinstance(root, PhysicalScan):
        root.parallel_eligible = True
    elif isinstance(root, (PhysicalFilter, PhysicalProject)):
        root.parallel_eligible = root.child.parallel_eligible


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------

def explain(node: PhysicalNode, indent: int = 0) -> str:
    """Render a physical plan in Redshift's EXPLAIN style."""
    pad = "  " * indent
    line = f"{pad}XN {node.label()} (rows={node.est_rows:.0f} width={node.row_width})"
    extras: list[str] = []
    if isinstance(node, PhysicalScan):
        if node.filters:
            rendered = " AND ".join(f.to_sql() for f in node.filters)
            extras.append(f"{pad}    Filter: {rendered}")
        if node.zone_predicates:
            rendered = ", ".join(
                f"{node.output[i].name} {op} {value!r}"
                for i, op, value in node.zone_predicates
            )
            extras.append(f"{pad}    Zone maps: {rendered}")
    lines = [line, *extras]
    for child in node.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)


def assign_steps(
    node: PhysicalNode, out: dict[int, int] | None = None
) -> dict[int, int]:
    """Preorder step numbers by ``id(node)``.

    The numbering matches the order :func:`explain` renders "XN" lines,
    which is what lets EXPLAIN ANALYZE annotate the plan text with the
    per-step counters the executors collect.
    """
    if out is None:
        out = {}
    out[id(node)] = len(out)
    for child in node.children:
        assign_steps(child, out)
    return out
