"""Bound logical plan nodes.

Produced by the :class:`~repro.plan.binder.Binder`; every expression inside
a logical node references its input row exclusively through
:class:`~repro.sql.ast.BoundRef` nodes, so execution never consults name
scopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.types import SqlType
from repro.engine.catalog import TableInfo
from repro.sql import ast
from repro.sql.functions import Aggregate


@dataclass(frozen=True)
class BoundColumn:
    """One output column of a logical operator."""

    name: str
    sql_type: SqlType
    relation: str = ""


class LogicalNode:
    """Base class; ``output`` is the operator's row schema."""

    output: list[BoundColumn]

    @property
    def children(self) -> list["LogicalNode"]:
        return []


@dataclass
class LogicalScan(LogicalNode):
    """Scan of one base table, projected to ``column_indexes``.

    ``output[i]`` corresponds to table column ``column_indexes[i]`` — the
    columnar engine reads only those chains.
    """

    table: TableInfo
    binding: str
    column_indexes: list[int]
    output: list[BoundColumn] = field(default_factory=list)


@dataclass
class LogicalFilter(LogicalNode):
    child: LogicalNode
    condition: ast.Expression
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LogicalProject(LogicalNode):
    child: LogicalNode
    expressions: list[ast.Expression]
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LogicalJoin(LogicalNode):
    """Join with pre-extracted equi-keys.

    ``equi_keys`` pairs (left output index, right output index); the
    ``residual`` holds any non-equi conjuncts, evaluated against the
    concatenated row.
    """

    kind: ast.JoinKind
    left: LogicalNode
    right: LogicalNode
    equi_keys: list[tuple[int, int]] = field(default_factory=list)
    residual: ast.Expression | None = None
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]


@dataclass
class AggCall:
    """One aggregate computation: the Aggregate instance plus its bound
    argument expression (None for COUNT(*))."""

    aggregate: Aggregate
    argument: ast.Expression | None
    name: str


@dataclass
class LogicalAggregate(LogicalNode):
    """Grouped aggregation; output = group keys then aggregate results."""

    child: LogicalNode
    group_exprs: list[ast.Expression]
    aggregates: list[AggCall]
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LogicalSetOp(LogicalNode):
    """UNION / INTERSECT / EXCEPT of two inputs with aligned schemas."""

    op: str  # "union" | "intersect" | "except"
    all: bool
    left: LogicalNode
    right: LogicalNode
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]


@dataclass
class LogicalDistinct(LogicalNode):
    child: LogicalNode
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LogicalSort(LogicalNode):
    child: LogicalNode
    keys: list[tuple[ast.Expression, bool]]  # (expression, descending)
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LogicalLimit(LogicalNode):
    child: LogicalNode
    limit: int | None
    offset: int | None
    output: list[BoundColumn] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]
