"""Cost-based join optimization: System-R DP enumeration and the
chain-of-strategies physical operator selection.

Two pieces live here, both consumed by
:class:`repro.plan.physical.PhysicalPlanner`:

* **Operator selection** — a pluggable chain of
  :class:`PhysicalOperatorSelection` stages (the PostBOUND pattern). Each
  stage may fill or overwrite part of the :class:`JoinDecision` (build
  side, hash vs. sort-merge, co-located vs. broadcast vs. redistribute)
  and hands it to the next stage via ``chain_with``. The default chain
  reproduces the planner's historical choices exactly, so written-order
  plans are bit-identical with the CBO off.

* **Join enumeration** — a bottom-up, bushy-capable System-R dynamic
  program over the maximal inner-join region of a query. Leaves are the
  non-reorderable subtrees (scans with their pushed filters, outer joins,
  aggregates); edges are equi-join predicates. Every subset of leaves
  keeps its single cheapest plan; costs combine scan bytes, hash build /
  probe bytes, interconnect movement priced per the selected distribution
  strategy, and intermediate-result bytes. Ties break toward the written
  order so cost-symmetric queries keep their familiar plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations

from repro.plan.bound import BoundColumn, LogicalFilter, LogicalJoin, LogicalNode
from repro.plan.physical import (
    RR,
    JoinDistribution,
    Partitioning,
    PhysicalFilter,
    PhysicalNode,
    PhysicalPlanner,
    PhysicalProject,
    _conjunct_selectivity,
    _pair_ndv,
    _project_partitioning,
    _split_conjuncts,
    _wrap_filter,
)
from repro.sql import ast


# ---------------------------------------------------------------------------
# Operator selection (chain of strategies)
# ---------------------------------------------------------------------------

@dataclass
class SideInfo:
    """What the selection stages know about one join input."""

    est_rows: float
    row_width: int
    partitioning: Partitioning
    sorted_on: tuple[int, ...] = ()

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.row_width


@dataclass
class JoinSite:
    """One join the chain must decide operators for. ``equi_keys`` are
    (left output position, right output position) pairs."""

    kind: ast.JoinKind
    equi_keys: list[tuple[int, int]]
    left: SideInfo
    right: SideInfo
    slices: int

    @classmethod
    def from_nodes(
        cls,
        planner: PhysicalPlanner,
        kind: ast.JoinKind,
        equi_keys: list[tuple[int, int]],
        left: PhysicalNode,
        right: PhysicalNode,
        slices: int,
    ) -> "JoinSite":
        return cls(
            kind=kind,
            equi_keys=list(equi_keys),
            left=SideInfo(
                est_rows=left.est_rows,
                row_width=left.row_width,
                partitioning=left.partitioning,
                sorted_on=planner._sorted_prefix(left),
            ),
            right=SideInfo(
                est_rows=right.est_rows,
                row_width=right.row_width,
                partitioning=right.partitioning,
                sorted_on=planner._sorted_prefix(right),
            ),
            slices=slices,
        )


@dataclass
class JoinDecision:
    """The chain's accumulated verdict for one join."""

    algorithm: str = "hash"  # "hash" | "merge"
    build_right: bool = True
    strategy: JoinDistribution = JoinDistribution.DS_DIST_BOTH


class PhysicalOperatorSelection:
    """One stage of the operator-selection chain.

    Stages run in ``chain_with`` order; each receives the decision so far
    and may overwrite any part of it — later stages win, which lets a
    custom stage be appended to veto or refine the defaults without
    reimplementing them.
    """

    def __init__(self) -> None:
        self.next_selection: PhysicalOperatorSelection | None = None

    def chain_with(
        self, other: "PhysicalOperatorSelection"
    ) -> "PhysicalOperatorSelection":
        """Append *other* to the end of this chain; returns the head."""
        tail = self
        while tail.next_selection is not None:
            tail = tail.next_selection
        tail.next_selection = other
        return self

    def select_join_operators(self, site: JoinSite) -> JoinDecision:
        decision = JoinDecision()
        stage: PhysicalOperatorSelection | None = self
        while stage is not None:
            decision = stage._apply_selection(decision, site)
            stage = stage.next_selection
        return decision

    def _apply_selection(
        self, decision: JoinDecision, site: JoinSite
    ) -> JoinDecision:
        raise NotImplementedError


class BuildSideSelection(PhysicalOperatorSelection):
    """Build on the smaller input; outer joins pin the build side to the
    null-extended side so matched-row tracking stays simple."""

    def _apply_selection(
        self, decision: JoinDecision, site: JoinSite
    ) -> JoinDecision:
        if site.kind is ast.JoinKind.LEFT or site.kind is ast.JoinKind.FULL:
            return replace(decision, build_right=True)
        if site.kind is ast.JoinKind.RIGHT:
            return replace(decision, build_right=False)
        return replace(
            decision,
            build_right=site.right.est_bytes <= site.left.est_bytes,
        )


class DistributionStrategySelection(PhysicalOperatorSelection):
    """Pick the data-movement strategy: co-located when the partitioning
    already aligns with the join keys, otherwise the cheaper of
    broadcasting the build side and redistributing the unplaced side(s)."""

    def _apply_selection(
        self, decision: JoinDecision, site: JoinSite
    ) -> JoinDecision:
        return replace(decision, strategy=self._strategy(decision, site))

    def _strategy(
        self, decision: JoinDecision, site: JoinSite
    ) -> JoinDistribution:
        left, right = site.left, site.right
        left_keys = tuple(l for l, _ in site.equi_keys)
        right_keys = tuple(r for _, r in site.equi_keys)
        build_right = decision.build_right

        if left.partitioning.kind == "all" or right.partitioning.kind == "all":
            # Replicated inputs join co-located, with two exceptions: a FULL
            # join must see each build row exactly once (shuffle both), and
            # an outer join whose *preserved* (probe) side is replicated
            # would emit its unmatched rows once per slice — collapse it to
            # one copy and broadcast the build side instead.
            if site.kind is ast.JoinKind.FULL:
                return JoinDistribution.DS_DIST_BOTH
            probe = left if build_right else right
            preserved = site.kind in (ast.JoinKind.LEFT, ast.JoinKind.RIGHT)
            if preserved and probe.partitioning.kind == "all":
                return JoinDistribution.DS_BCAST_INNER
            return JoinDistribution.DS_DIST_NONE
        if (
            PhysicalPlanner._colocated(left.partitioning, left_keys)
            and PhysicalPlanner._colocated(right.partitioning, right_keys)
            and PhysicalPlanner._keys_aligned(
                site.equi_keys, left.partitioning, right.partitioning
            )
        ):
            return JoinDistribution.DS_DIST_NONE

        build, probe = (right, left) if build_right else (left, right)
        build_keys = right_keys if build_right else left_keys
        probe_keys = left_keys if build_right else right_keys

        # FULL joins cannot broadcast (unmatched build rows would duplicate).
        can_broadcast = site.kind is not ast.JoinKind.FULL
        cost_broadcast = (
            build.est_bytes * (site.slices - 1)
            if can_broadcast
            else float("inf")
        )

        probe_on_key = PhysicalPlanner._colocated(probe.partitioning, probe_keys)
        build_on_key = PhysicalPlanner._colocated(build.partitioning, build_keys)
        if probe_on_key and not build_on_key:
            cost_redist = build.est_bytes
            redist = JoinDistribution.DS_DIST_INNER
        elif build_on_key and not probe_on_key:
            cost_redist = probe.est_bytes
            redist = JoinDistribution.DS_DIST_OUTER
        else:
            cost_redist = build.est_bytes + probe.est_bytes
            redist = JoinDistribution.DS_DIST_BOTH

        if cost_broadcast <= cost_redist:
            return JoinDistribution.DS_BCAST_INNER
        return redist


class MergeJoinSelection(PhysicalOperatorSelection):
    """Prefer a sort-merge join over a hash build when both inputs of a
    co-located inner join arrive sorted on the (single) join key — scans
    of tables whose compound sort key is the distribution/join column —
    so the per-slice sort the operator runs is (nearly) free."""

    def _apply_selection(
        self, decision: JoinDecision, site: JoinSite
    ) -> JoinDecision:
        if (
            site.kind is ast.JoinKind.INNER
            and decision.strategy is JoinDistribution.DS_DIST_NONE
            and len(site.equi_keys) == 1
            and site.left.sorted_on
            and site.right.sorted_on
            and site.left.sorted_on[0] == site.equi_keys[0][0]
            and site.right.sorted_on[0] == site.equi_keys[0][1]
        ):
            return replace(decision, algorithm="merge")
        return decision


def default_operator_selection() -> PhysicalOperatorSelection:
    """The planner's stock chain: build side → distribution → algorithm."""
    return (
        BuildSideSelection()
        .chain_with(DistributionStrategySelection())
        .chain_with(MergeJoinSelection())
    )


# ---------------------------------------------------------------------------
# Join-region extraction
# ---------------------------------------------------------------------------

@dataclass
class _Region:
    """The maximal reorderable inner-join region under one join root.

    Column indices are *global*: positions in the written-order
    concatenation of the leaves' outputs (== the root join's output).
    """

    leaves: list[LogicalNode]
    leaf_offsets: list[int]
    leaf_widths: list[int]
    columns: list[BoundColumn]
    leaf_of: list[int]                       # global col -> leaf id
    edges: list[tuple[int, int]]             # equi predicates (ga, gb)
    preds: list[ast.Expression]              # multi-leaf residual conjuncts
    pred_leaves: list[frozenset[int]]
    const_preds: list[ast.Expression]        # conjuncts with no column refs


def _collect_region(
    root: LogicalJoin, extra_conjuncts: list[ast.Expression]
) -> _Region:
    leaves: list[LogicalNode] = []
    leaf_offsets: list[int] = []
    edges: list[tuple[int, int]] = []
    raw_preds: list[ast.Expression] = []

    from repro.plan.physical import _remap

    def walk(node: LogicalNode, offset: int) -> None:
        if isinstance(node, LogicalJoin) and node.kind in (
            ast.JoinKind.INNER,
            ast.JoinKind.CROSS,
        ):
            width_left = len(node.left.output)
            walk(node.left, offset)
            walk(node.right, offset + width_left)
            for l, r in node.equi_keys:
                edges.append((offset + l, offset + width_left + r))
            if node.residual is not None:
                for conjunct in _split_conjuncts(node.residual):
                    raw_preds.append(_remap(conjunct, offset))
            return
        leaf_offsets.append(offset)
        leaves.append(node)

    walk(root, 0)
    raw_preds.extend(extra_conjuncts)

    leaf_widths = [len(leaf.output) for leaf in leaves]
    leaf_of: list[int] = []
    for leaf_id, width in enumerate(leaf_widths):
        leaf_of.extend([leaf_id] * width)

    region = _Region(
        leaves=leaves,
        leaf_offsets=leaf_offsets,
        leaf_widths=leaf_widths,
        columns=list(root.output),
        leaf_of=leaf_of,
        edges=edges,
        preds=[],
        pred_leaves=[],
        const_preds=[],
    )

    leaf_filters: dict[int, list[ast.Expression]] = {}
    for conjunct in raw_preds:
        refs = {
            e.index
            for e in ast.walk_expressions(conjunct)
            if isinstance(e, ast.BoundRef)
        }
        touched = frozenset(region.leaf_of[r] for r in refs)
        if not touched:
            region.const_preds.append(conjunct)
            continue
        if len(touched) == 1:
            leaf_id = next(iter(touched))
            leaf_filters.setdefault(leaf_id, []).append(
                _remap(conjunct, -region.leaf_offsets[leaf_id])
            )
            continue
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.BoundRef)
            and isinstance(conjunct.right, ast.BoundRef)
        ):
            # A cross-leaf equality is a join edge: it can key a hash join
            # instead of filtering a cross product.
            edges.append((conjunct.left.index, conjunct.right.index))
            continue
        region.preds.append(conjunct)
        region.pred_leaves.append(touched)

    # Fold single-leaf conjuncts into their leaf subtree.
    for leaf_id, conjuncts in leaf_filters.items():
        leaf = region.leaves[leaf_id]
        if isinstance(leaf, LogicalFilter):
            conjuncts = _split_conjuncts(leaf.condition) + conjuncts
            leaf = leaf.child
        region.leaves[leaf_id] = _wrap_filter(leaf, conjuncts)
    return region


# ---------------------------------------------------------------------------
# System-R dynamic programming
# ---------------------------------------------------------------------------

@dataclass
class _Entry:
    """The cheapest plan found for one subset of region leaves."""

    subset: frozenset[int]
    order: tuple[int, ...]           # leaf ids, left-to-right
    shape: str                       # nested-paren signature (tie-break)
    est_rows: float
    width: int
    partitioning: Partitioning       # hash keys hold GLOBAL column ids
    cost: float
    col_offset: dict[int, int] = field(default_factory=dict)
    sorted_on: tuple[int, ...] = ()  # global column ids (leaves only)
    leaf: int | None = None
    left: "_Entry | None" = None
    right: "_Entry | None" = None
    edge_ids: tuple[int, ...] = ()
    pred_ids: tuple[int, ...] = ()
    decision: JoinDecision | None = None

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.width

    def local_of(self, region: _Region, g: int) -> int:
        leaf_id = region.leaf_of[g]
        return self.col_offset[leaf_id] + (g - region.leaf_offsets[leaf_id])

    def local_partitioning(self, region: _Region) -> Partitioning:
        if self.partitioning.kind != "hash":
            return self.partitioning
        return Partitioning(
            "hash",
            tuple(self.local_of(region, g) for g in self.partitioning.key),
        )

    def side_info(self, region: _Region) -> SideInfo:
        return SideInfo(
            est_rows=self.est_rows,
            row_width=self.width,
            partitioning=self.local_partitioning(region),
            sorted_on=tuple(
                self.local_of(region, g) for g in self.sorted_on
            ),
        )


def _globalize(part: Partitioning, offset: int) -> Partitioning:
    if part.kind != "hash":
        return part
    return Partitioning("hash", tuple(k + offset for k in part.key))


class SystemRJoinEnumerator:
    """Bottom-up DP over leaf subsets (bushy-capable, cost-pruned).

    Every subset keeps exactly one entry — the cheapest ordered split —
    which prunes the search the way System R's per-relation-set memo
    does. Ties break toward the written leaf order, then the flattest
    shape, so cost-symmetric queries keep their written plans.
    """

    def __init__(self, planner: PhysicalPlanner, region: _Region):
        self._planner = planner
        self._region = region

    def enumerate(
        self,
        leaf_entries: list[_Entry],
        region_stats,
        pred_selectivity: list[float],
    ) -> _Entry:
        region = self._region
        n = len(region.leaves)
        best: dict[frozenset[int], _Entry] = {
            frozenset([i]): entry for i, entry in enumerate(leaf_entries)
        }
        for size in range(2, n + 1):
            for combo in combinations(range(n), size):
                subset = frozenset(combo)
                members = sorted(subset)
                winner: _Entry | None = None
                for mask in range(1, (1 << size) - 1):
                    s1 = frozenset(
                        members[i] for i in range(size) if mask >> i & 1
                    )
                    entry = self._candidate(
                        best[s1],
                        best[subset - s1],
                        subset,
                        region_stats,
                        pred_selectivity,
                    )
                    if winner is None or (
                        (entry.cost, entry.order, entry.shape)
                        < (winner.cost, winner.order, winner.shape)
                    ):
                        winner = entry
                best[subset] = winner
        return best[frozenset(range(n))]

    def _candidate(
        self,
        e1: _Entry,
        e2: _Entry,
        subset: frozenset[int],
        region_stats,
        pred_selectivity: list[float],
    ) -> _Entry:
        region = self._region
        edge_ids = tuple(
            eid
            for eid, (ga, gb) in enumerate(region.edges)
            if region.leaf_of[ga] in subset
            and region.leaf_of[gb] in subset
            and (region.leaf_of[ga] in e1.subset)
            != (region.leaf_of[gb] in e1.subset)
        )
        pred_ids = tuple(
            pid
            for pid, leaves in enumerate(region.pred_leaves)
            if leaves <= subset
            and not leaves <= e1.subset
            and not leaves <= e2.subset
        )

        # Cardinality: |L|·|R| / max(ndv) per connecting edge with fresh
        # stats; the upper-bound max(|L|, |R|) when any edge lacks them.
        if edge_ids:
            selectivity = 1.0
            have_all = True
            for eid in edge_ids:
                ga, gb = region.edges[eid]
                ndv = _pair_ndv(region_stats[ga], region_stats[gb])
                if ndv is None:
                    have_all = False
                    break
                selectivity /= ndv
            if have_all:
                est = e1.est_rows * e2.est_rows * selectivity
            else:
                est = max(e1.est_rows, e2.est_rows)
        else:
            est = e1.est_rows * e2.est_rows
        for pid in pred_ids:
            est *= pred_selectivity[pid]
        est = max(1.0, est)

        width = e1.width + e2.width
        e1_cols = sum(region.leaf_widths[leaf_id] for leaf_id in e1.subset)
        col_offset = dict(e1.col_offset)
        for leaf_id, off in e2.col_offset.items():
            col_offset[leaf_id] = e1_cols + off

        decision: JoinDecision | None = None
        if edge_ids:
            keys_local = self._local_keys(e1, e2, edge_ids)
            site = JoinSite(
                kind=ast.JoinKind.INNER,
                equi_keys=keys_local,
                left=e1.side_info(region),
                right=e2.side_info(region),
                slices=self._planner._slices,
            )
            decision = self._planner._operator_selection.select_join_operators(
                site
            )
            move = _movement_bytes(decision, site)
            cpu = e1.est_bytes + e2.est_bytes
            partitioning = self._hash_partitioning(e1, e2, decision, edge_ids)
        else:
            # Cross/theta join: nested loop, inner side broadcast.
            move = e2.est_bytes * (self._planner._slices - 1)
            cpu = e1.est_rows * e2.est_rows * width
            partitioning = (
                e1.partitioning if e1.partitioning.kind != "all" else RR
            )
        cost = e1.cost + e2.cost + cpu + move + est * width

        return _Entry(
            subset=subset,
            order=e1.order + e2.order,
            shape=f"({e1.shape} {e2.shape})",
            est_rows=est,
            width=width,
            partitioning=partitioning,
            cost=cost,
            col_offset=col_offset,
            leaf=None,
            left=e1,
            right=e2,
            edge_ids=edge_ids,
            pred_ids=pred_ids,
            decision=decision,
        )

    def _local_keys(
        self, e1: _Entry, e2: _Entry, edge_ids: tuple[int, ...]
    ) -> list[tuple[int, int]]:
        region = self._region
        keys: list[tuple[int, int]] = []
        for eid in edge_ids:
            ga, gb = region.edges[eid]
            if region.leaf_of[ga] in e1.subset:
                keys.append((e1.local_of(region, ga), e2.local_of(region, gb)))
            else:
                keys.append((e1.local_of(region, gb), e2.local_of(region, ga)))
        return keys

    def _hash_partitioning(
        self,
        e1: _Entry,
        e2: _Entry,
        decision: JoinDecision,
        edge_ids: tuple[int, ...],
    ) -> Partitioning:
        region = self._region
        if decision.strategy is JoinDistribution.DS_DIST_NONE:
            if e1.partitioning.kind == "all" and e2.partitioning.kind == "all":
                return RR
            if e1.partitioning.kind == "all":
                return e2.partitioning
            return e1.partitioning
        if decision.strategy is JoinDistribution.DS_BCAST_INNER:
            probe = e1 if decision.build_right else e2
            return probe.partitioning
        ga, gb = region.edges[edge_ids[0]]
        left_col = ga if region.leaf_of[ga] in e1.subset else gb
        return Partitioning("hash", (left_col,))


# ---------------------------------------------------------------------------
# Region optimization driver (called by the planner)
# ---------------------------------------------------------------------------

def optimize_join_region(
    planner: PhysicalPlanner,
    root: LogicalJoin,
    extra_conjuncts: list[ast.Expression],
) -> PhysicalNode | None:
    """Plan the inner-join region rooted at *root* via the DP enumerator.

    Returns the physical subtree (output columns in the original written
    order), or None when the region is too wide for DP — the caller then
    converts in written order.
    """
    region = _collect_region(root, extra_conjuncts)
    n = len(region.leaves)
    if n < 2 or n > planner.MAX_DP_LEAVES:
        return None

    leaf_phys = [planner._convert(leaf) for leaf in region.leaves]

    region_stats: list = []
    for leaf_id, node in enumerate(leaf_phys):
        stats = planner._stats_for(node)
        for local in range(region.leaf_widths[leaf_id]):
            region_stats.append(
                stats[local] if stats is not None and local < len(stats) else None
            )

    pred_selectivity = [
        _conjunct_selectivity(pred, region_stats) for pred in region.preds
    ]

    leaf_entries: list[_Entry] = []
    for i, node in enumerate(leaf_phys):
        entry = _Entry(
            subset=frozenset([i]),
            order=(i,),
            shape=str(i),
            est_rows=node.est_rows,
            width=node.row_width,
            partitioning=_globalize(
                node.partitioning, region.leaf_offsets[i]
            ),
            cost=node.est_bytes,
            col_offset={i: 0},
            sorted_on=tuple(
                region.leaf_offsets[i] + k
                for k in planner._sorted_prefix(node)
            ),
            leaf=i,
        )
        leaf_entries.append(entry)

    enumerator = SystemRJoinEnumerator(planner, region)
    best = enumerator.enumerate(leaf_entries, region_stats, pred_selectivity)
    node = _emit(planner, region, best, leaf_phys)

    if region.const_preds:
        condition = region.const_preds[0]
        for extra in region.const_preds[1:]:
            condition = ast.BinaryOp("AND", condition, extra)
        selectivity = _conjunct_selectivity(condition, None)
        node = PhysicalFilter(
            node,
            condition,
            output=list(node.output),
            partitioning=node.partitioning,
            est_rows=max(1.0, node.est_rows * selectivity),
        )

    if best.order != tuple(range(n)):
        node = _restore_column_order(planner, region, best, node)
    return node


def _emit(
    planner: PhysicalPlanner,
    region: _Region,
    entry: _Entry,
    leaf_phys: list[PhysicalNode],
) -> PhysicalNode:
    """Rebuild the physical join tree for the DP's winning entry."""
    if entry.leaf is not None:
        return leaf_phys[entry.leaf]
    left = _emit(planner, region, entry.left, leaf_phys)
    right = _emit(planner, region, entry.right, leaf_phys)

    keys: list[tuple[int, int]] = []
    for eid in entry.edge_ids:
        ga, gb = region.edges[eid]
        if region.leaf_of[ga] in entry.left.subset:
            keys.append(
                (entry.left.local_of(region, ga), entry.right.local_of(region, gb))
            )
        else:
            keys.append(
                (entry.left.local_of(region, gb), entry.right.local_of(region, ga))
            )

    width_left = len(left.output)

    def localize(g: int) -> int:
        if region.leaf_of[g] in entry.left.subset:
            return entry.left.local_of(region, g)
        return width_left + entry.right.local_of(region, g)

    residual: ast.Expression | None = None
    for pid in entry.pred_ids:
        conjunct = _relocalize(region.preds[pid], localize)
        residual = (
            conjunct
            if residual is None
            else ast.BinaryOp("AND", residual, conjunct)
        )

    kind = (
        ast.JoinKind.INNER
        if keys or residual is not None
        else ast.JoinKind.CROSS
    )
    output = list(left.output) + list(right.output)
    return planner._make_join(kind, left, right, keys, residual, output)


def _relocalize(expr: ast.Expression, mapping) -> ast.Expression:
    if isinstance(expr, ast.BoundRef):
        return ast.BoundRef(mapping(expr.index), expr.sql_type, expr.name)
    from repro.plan.binder import _rebuild

    return _rebuild(expr, lambda e: _relocalize(e, mapping))


def _restore_column_order(
    planner: PhysicalPlanner,
    region: _Region,
    best: _Entry,
    node: PhysicalNode,
) -> PhysicalNode:
    """Project the reordered join output back to written column order so
    every operator above the region keeps its bound indices."""
    expressions = [
        ast.BoundRef(best.local_of(region, g), col.sql_type, col.name)
        for g, col in enumerate(region.columns)
    ]
    project = PhysicalProject(
        node,
        expressions=expressions,
        output=list(region.columns),
        partitioning=_project_partitioning(node.partitioning, expressions),
        est_rows=node.est_rows,
    )
    node_stats = planner._stats_for(node)
    if node_stats is not None:
        planner._record_stats(
            project,
            [node_stats[e.index] for e in expressions],
        )
    return project


def _movement_bytes(decision: JoinDecision, site: JoinSite) -> float:
    """Interconnect bytes a join ships under *decision*."""
    build = site.right if decision.build_right else site.left
    probe = site.left if decision.build_right else site.right
    strategy = decision.strategy
    if strategy is JoinDistribution.DS_DIST_NONE:
        return 0.0
    if strategy is JoinDistribution.DS_BCAST_INNER:
        return build.est_bytes * (site.slices - 1)
    if strategy is JoinDistribution.DS_DIST_INNER:
        return build.est_bytes
    if strategy is JoinDistribution.DS_DIST_OUTER:
        return probe.est_bytes
    return build.est_bytes + probe.est_bytes
