"""Query planning: binding/semantic analysis, logical plans, and the
distribution-aware physical planner.

The planner's distinguishing job in an MPP engine is deciding *where* data
flows: co-located joins when distribution keys align, broadcast of small
inner tables, or full redistribution — the choices §2.1 of the paper
credits for "reducing IO, CPU and network contention".
"""

from repro.plan.bound import (
    BoundColumn,
    LogicalNode,
    LogicalScan,
    LogicalFilter,
    LogicalProject,
    LogicalJoin,
    LogicalAggregate,
    LogicalDistinct,
    LogicalSort,
    LogicalLimit,
    AggCall,
)
from repro.plan.binder import Binder, infer_type
from repro.plan.physical import (
    PhysicalNode,
    PhysicalScan,
    PhysicalFilter,
    PhysicalProject,
    PhysicalHashJoin,
    PhysicalMergeJoin,
    PhysicalNestedLoopJoin,
    PhysicalAggregate,
    PhysicalDistinct,
    PhysicalSort,
    PhysicalLimit,
    JoinDistribution,
    PhysicalPlanner,
    explain,
)
from repro.plan.optimizer import (
    BuildSideSelection,
    DistributionStrategySelection,
    JoinDecision,
    JoinSite,
    MergeJoinSelection,
    PhysicalOperatorSelection,
    SideInfo,
    default_operator_selection,
)

__all__ = [
    "BoundColumn",
    "LogicalNode", "LogicalScan", "LogicalFilter", "LogicalProject",
    "LogicalJoin", "LogicalAggregate", "LogicalDistinct", "LogicalSort",
    "LogicalLimit", "AggCall",
    "Binder", "infer_type",
    "PhysicalNode", "PhysicalScan", "PhysicalFilter", "PhysicalProject",
    "PhysicalHashJoin", "PhysicalMergeJoin", "PhysicalNestedLoopJoin",
    "PhysicalAggregate",
    "PhysicalDistinct", "PhysicalSort", "PhysicalLimit",
    "JoinDistribution", "PhysicalPlanner", "explain",
    "BuildSideSelection", "DistributionStrategySelection", "JoinDecision",
    "JoinSite", "MergeJoinSelection", "PhysicalOperatorSelection",
    "SideInfo", "default_operator_selection",
]
