"""Simulated local disk: IO accounting and failure injection.

Queries run on real in-memory data, so the "disk" is an accounting and
fault-injection device: it tallies bytes and operations (the quantities the
paper's IO-reduction claims are about) and, when failed, refuses IO so the
replication layer's failure handling can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiskFailureError
from repro.faults.injector import FaultInjector


@dataclass
class DiskStats:
    """Cumulative IO counters for one simulated disk."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0


class SimulatedDisk:
    """One slice's disk. Fails atomically: after :meth:`fail`, all IO raises."""

    def __init__(self, disk_id: str, capacity_bytes: int | None = None):
        self.disk_id = disk_id
        self.capacity_bytes = capacity_bytes
        self.stats = DiskStats()
        self._failed = False
        self._used_bytes = 0
        self._injector: FaultInjector | None = None

    def attach_injector(self, injector: FaultInjector | None) -> None:
        """Consult *injector* for transient media errors on each IO."""
        self._injector = injector

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def fail(self) -> None:
        """Inject a media failure; subsequent IO raises DiskFailureError."""
        self._failed = True

    def repair(self) -> None:
        """Replace the failed device with a fresh, empty one."""
        self._failed = False
        self._used_bytes = 0

    def _check(self) -> None:
        if self._failed:
            raise DiskFailureError(f"disk {self.disk_id} has failed")

    def _media(self, op: str) -> None:
        if self._injector is not None:
            self._injector.disk_io(self.disk_id, op)

    def record_read(self, nbytes: int) -> None:
        """Account a read of *nbytes*; raises if the disk has failed."""
        self._check()
        self._media("read")
        self.stats.bytes_read += nbytes
        self.stats.read_ops += 1

    def record_write(self, nbytes: int) -> None:
        """Account a write of *nbytes*; raises if failed or over capacity."""
        self._check()
        self._media("write")
        if (
            self.capacity_bytes is not None
            and self._used_bytes + nbytes > self.capacity_bytes
        ):
            raise DiskFailureError(
                f"disk {self.disk_id} full: "
                f"{self._used_bytes + nbytes} > {self.capacity_bytes} bytes"
            )
        self.stats.bytes_written += nbytes
        self.stats.write_ops += 1
        self._used_bytes += nbytes

    def record_delete(self, nbytes: int) -> None:
        """Release space previously accounted by :meth:`record_write`."""
        self._used_bytes = max(0, self._used_bytes - nbytes)
