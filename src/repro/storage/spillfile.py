"""Accounted temp files for spilled operator state.

Spill files follow the same simulation stance as the rest of the storage
layer (:mod:`repro.storage.disk`): row payloads stay in process memory —
queries run on real in-memory data — while every write, read and delete
is accounted against the owning slice's :class:`SimulatedDisk`. That
makes spill IO first-class for every existing failure mode: a
``DISK_MEDIA_WINDOW`` fault hits spill reads and writes exactly like
block IO (and is retried here with :func:`~repro.faults.retry.with_backoff`,
re-reading the partition), a failed disk refuses spill IO, a full disk —
real capacity or an injected ``DISK_FULL`` window — raises a typed
:class:`~repro.errors.SpillCapacityError` so WLM can shed the query
cleanly, and ``used_bytes`` includes live temp space until the owning
:class:`SpillManager` reclaims it at end of query.
"""

from __future__ import annotations

from repro.errors import DiskMediaError, SpillCapacityError
from repro.faults.retry import RetryPolicy, with_backoff
from repro.storage.disk import SimulatedDisk
from repro.util.rng import DeterministicRng


class SpillFile:
    """One temp file of spilled rows on a slice's disk.

    Rows accumulate via :meth:`write` (each call is one accounted disk
    write), come back in write order via :meth:`read` (one accounted
    read of everything written), and the accounted bytes are released by
    :meth:`release` — which the :class:`SpillManager` guarantees to call
    by end of query, success or abort.
    """

    def __init__(self, manager: "SpillManager", disk: SimulatedDisk, label: str):
        self._manager = manager
        self.disk = disk
        self.label = label
        self.rows: list = []
        self.bytes_written = 0
        self.released = False

    def write(self, rows: list, nbytes: int) -> None:
        """Append *rows*, accounting *nbytes* of temp space on the disk.

        Raises :class:`SpillCapacityError` when the disk has no room for
        the write (over capacity, or an injected ``DISK_FULL`` window) —
        the typed signal WLM converts into a clean shed. Transient media
        errors are retried with backoff; a failed disk raises through.
        """
        disk = self.disk
        injector = self._manager.injector
        if injector is not None and injector.disk_full(disk.disk_id, nbytes):
            raise SpillCapacityError(
                disk.disk_id, nbytes, "disk_full fault window active"
            )
        if (
            disk.capacity_bytes is not None
            and disk.used_bytes + nbytes > disk.capacity_bytes
        ):
            raise SpillCapacityError(
                disk.disk_id,
                nbytes,
                f"{disk.used_bytes} of {disk.capacity_bytes} bytes used",
            )
        self._manager._accounted(
            lambda: disk.record_write(nbytes), disk.disk_id, "spill_write"
        )
        self.rows.extend(rows)
        self.bytes_written += nbytes
        self._manager.bytes_written += nbytes

    def read(self) -> list:
        """All rows in write order; accounts one read of the file's bytes.

        An injected media error mid-read is retried with backoff — the
        partition is simply read again, logged as a
        ``recovery:spill_retry`` event — before being allowed to surface
        to the session's segment-retry loop.
        """
        self._manager._accounted(
            lambda: self.disk.record_read(self.bytes_written),
            self.disk.disk_id,
            "spill_read",
        )
        self._manager.bytes_read += self.bytes_written
        return self.rows

    def release(self) -> None:
        """Reclaim the accounted temp space (idempotent, never raises)."""
        if not self.released:
            self.released = True
            self.disk.record_delete(self.bytes_written)


class SpillManager:
    """All spill files of one query attempt, and their reclamation.

    The session creates one per execution attempt and releases it in a
    ``finally`` — so temp bytes are reclaimed on success, on segment
    retry, on a WLM shed and on transaction abort alike, and leaked
    spill space cannot accumulate across a fleet simulation.
    """

    def __init__(self, injector=None, policy: RetryPolicy | None = None):
        self.injector = injector
        self._policy = policy or RetryPolicy(base_delay_s=0.05, max_delay_s=1.0)
        self._rng = DeterministicRng("spill-retry")
        self._files: list[SpillFile] = []
        self.bytes_written = 0
        self.bytes_read = 0

    def create(self, disk: SimulatedDisk, label: str) -> SpillFile:
        spill_file = SpillFile(self, disk, label)
        self._files.append(spill_file)
        return spill_file

    def file_factory(self, disk: SimulatedDisk):
        """A ``label -> SpillFile`` factory bound to *disk* (the shape the
        spillable operator state in :mod:`repro.exec.spill` consumes)."""
        return lambda label: self.create(disk, label)

    @property
    def live_bytes(self) -> int:
        """Accounted temp bytes not yet reclaimed."""
        return sum(f.bytes_written for f in self._files if not f.released)

    def release_all(self) -> None:
        """Reclaim every spill file of the attempt (idempotent)."""
        for spill_file in self._files:
            spill_file.release()

    def replay(self, disk: SimulatedDisk, ops) -> None:
        """Re-perform a worker's logged spill IO against *disk*.

        Parallel workers spill against an op log
        (:class:`repro.exec.spill.SpillLog`) instead of touching shared
        state; the leader replays the log here, in morsel order — so
        capacity checks, ``DISK_FULL`` windows, media-fault draws and
        ``used_bytes`` accounting land exactly as they would have for a
        serial run. The ledger file joins :attr:`_files`, so bytes still
        outstanding when a replay op raises (e.g. a mid-query
        ``SpillCapacityError``) are reclaimed by :meth:`release_all`
        like any other temp space.
        """
        ledger = self.create(disk, "worker-replay")
        for op, nbytes in ops:
            if op == "write":
                ledger.write((), nbytes)
            elif op == "read":
                self._accounted(
                    lambda n=nbytes: disk.record_read(n),
                    disk.disk_id,
                    "spill_read",
                )
                self.bytes_read += nbytes
            else:  # delete
                disk.record_delete(nbytes)
                ledger.bytes_written = max(0, ledger.bytes_written - nbytes)

    def _accounted(self, op, disk_id: str, name: str) -> None:
        """Run one accounted IO, retrying injected media errors."""
        injector = self.injector
        if injector is None:
            op()
            return

        def _log_retry(attempt: int, exc: Exception, delay: float) -> None:
            injector.record(
                "recovery:spill_retry",
                disk_id,
                f"{name} attempt {attempt} hit media error; retried",
            )

        with_backoff(
            op,
            policy=self._policy,
            rng=self._rng,
            retry_on=(DiskMediaError,),
            on_retry=_log_retry,
        )
