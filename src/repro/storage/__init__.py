"""Columnar block storage.

Each column of each slice is stored as a chain of fixed-capacity encoded
blocks (the paper's "chain of one or more fixed size data blocks"). Row
identity across columns is the logical offset within each chain. Every
block carries a zone map (min/max of its values) enabling the block
skipping the paper credits in place of indexes, and a checksum so media
corruption is detected on read.
"""

from repro.storage.block import Block, BLOCK_CAPACITY_DEFAULT
from repro.storage.zonemap import ZoneMap
from repro.storage.chain import ColumnChain, ScanStats
from repro.storage.slicestore import SliceStorage, TableShard
from repro.storage.disk import SimulatedDisk, DiskStats

__all__ = [
    "Block", "BLOCK_CAPACITY_DEFAULT",
    "ZoneMap",
    "ColumnChain", "ScanStats",
    "SliceStorage", "TableShard",
    "SimulatedDisk", "DiskStats",
]
