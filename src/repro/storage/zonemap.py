"""Per-block zone maps (min/max value ranges).

Redshift "foregoes traditional indexes ... and instead focuses on sequential
scan speed through ... column-block skipping based on value-ranges stored in
memory" (paper §6, citing Moerkotte's small materialized aggregates). A
:class:`ZoneMap` records the min and max of a block's non-null values plus
its null count; predicates consult it to skip blocks that cannot match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ZoneMap:
    """Value-range summary of one block.

    ``low``/``high`` are None when the block holds only NULLs. Zone maps
    are conservative: ``might_satisfy`` returning False guarantees no row
    in the block satisfies the predicate, while True is only *maybe*.
    """

    low: object | None
    high: object | None
    null_count: int
    count: int

    @classmethod
    def build(cls, values: Sequence[object]) -> "ZoneMap":
        """Compute the zone map of a value vector (``None`` = NULL)."""
        present = [v for v in values if v is not None]
        if present:
            return cls(
                low=min(present),
                high=max(present),
                null_count=len(values) - len(present),
                count=len(values),
            )
        return cls(low=None, high=None, null_count=len(values), count=len(values))

    @property
    def all_null(self) -> bool:
        return self.null_count == self.count

    def might_satisfy(self, op: str, value: object) -> bool:
        """Can any row in the block satisfy ``column <op> value``?

        Supported operators: ``=``, ``<``, ``<=``, ``>``, ``>=``, ``<>``.
        NULL comparisons are never satisfied, so an all-null block is always
        skippable; ``<>`` can only be skipped when the block is a single
        repeated value equal to the literal.
        """
        if self.all_null or value is None:
            return False
        if op == "=":
            return self.low <= value <= self.high
        if op == "<":
            return self.low < value
        if op == "<=":
            return self.low <= value
        if op == ">":
            return self.high > value
        if op == ">=":
            return self.high >= value
        if op == "<>":
            return not (self.low == self.high == value)
        raise ValueError(f"unsupported zone map operator {op!r}")

    def must_satisfy(self, op: str, value: object) -> bool:
        """Does *every* row in the block satisfy ``column <op> value``?

        The dual of :meth:`might_satisfy`, used by encoded scans to
        short-circuit a predicate to an all-True mask without touching the
        payload. Conservative: True guarantees every row (the block must be
        NULL-free); False is only *maybe not*.
        """
        if self.null_count or self.count == 0 or value is None or self.low is None:
            return False
        if op == "=":
            return self.low == self.high == value
        if op == "<":
            return self.high < value
        if op == "<=":
            return self.high <= value
        if op == ">":
            return self.low > value
        if op == ">=":
            return self.low >= value
        if op == "<>":
            return self.high < value or self.low > value
        return False

    def might_overlap_range(
        self, low: object | None, high: object | None
    ) -> bool:
        """Can any row fall in the closed range [low, high]? ``None`` bounds
        are unbounded on that side."""
        if self.all_null:
            return False
        if low is not None and self.high < low:
            return False
        if high is not None and self.low > high:
            return False
        return True

    def merge(self, other: "ZoneMap") -> "ZoneMap":
        """Combine two zone maps (for chain- or table-level summaries)."""
        lows = [z for z in (self.low, other.low) if z is not None]
        highs = [z for z in (self.high, other.high) if z is not None]
        return ZoneMap(
            low=min(lows) if lows else None,
            high=max(highs) if highs else None,
            null_count=self.null_count + other.null_count,
            count=self.count + other.count,
        )
