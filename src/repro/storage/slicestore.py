"""Per-slice storage: one shard of every table resident on a slice.

A :class:`TableShard` holds the slice-local portion of one table: a
:class:`~repro.storage.chain.ColumnChain` per column plus per-row
transaction metadata (inserting/deleting transaction ids) used by the
engine's snapshot-isolation visibility checks. :class:`SliceStorage` is
the collection of shards on one slice together with its simulated disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.compression.codecs import Codec
from repro.datatypes.types import SqlType
from repro.errors import StorageError
from repro.storage import epoch
from repro.storage.block import BLOCK_CAPACITY_DEFAULT
from repro.storage.chain import ColumnChain
from repro.storage.disk import SimulatedDisk


class TableShard:
    """The slice-local rows of one table."""

    def __init__(
        self,
        table_name: str,
        columns: Sequence[tuple[str, SqlType]],
        codecs: dict[str, Codec | str] | None = None,
        block_capacity: int = BLOCK_CAPACITY_DEFAULT,
    ):
        self.table_name = table_name
        self.column_specs = list(columns)
        codecs = codecs or {}
        self.chains: dict[str, ColumnChain] = {
            name: ColumnChain(
                name, sql_type, codecs.get(name, "raw"), block_capacity
            )
            for name, sql_type in columns
        }
        for chain in self.chains.values():
            chain.table_name = table_name
        #: Transaction id that inserted each row (parallel to row offsets).
        self.insert_xids: list[int] = []
        #: Transaction id that deleted each row, or None while live.
        self.delete_xids: list[int | None] = []
        #: Rows [0, sorted_prefix) are in sort-key order; VACUUM extends it.
        self.sorted_prefix = 0

    @property
    def row_count(self) -> int:
        return len(self.insert_xids)

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self.column_specs]

    @property
    def encoded_bytes(self) -> int:
        return sum(chain.encoded_bytes for chain in self.chains.values())

    def append_rows(self, rows: Iterable[Sequence[object]], xid: int) -> int:
        """Append full rows (tuples in column order) inserted by *xid*.

        Returns the number of rows appended. Values must already be
        validated by the caller (the engine validates at ingest).
        """
        names = self.column_names
        count = 0
        buffers: list[list[object]] = [[] for _ in names]
        for row in rows:
            if len(row) != len(names):
                raise StorageError(
                    f"row has {len(row)} values, table {self.table_name!r} "
                    f"has {len(names)} columns"
                )
            for buffer, value in zip(buffers, row):
                buffer.append(value)
            count += 1
        for name, buffer in zip(names, buffers):
            self.chains[name].append(buffer)
        self.insert_xids.extend([xid] * count)
        self.delete_xids.extend([None] * count)
        epoch.bump(self.table_name)
        return count

    def append_columns(
        self, vectors: Sequence[Sequence[object]], xid: int
    ) -> int:
        """Columnar append: one vector per column, all the same length."""
        names = self.column_names
        if len(vectors) != len(names):
            raise StorageError(
                f"{len(vectors)} vectors for {len(names)} columns"
            )
        lengths = {len(v) for v in vectors}
        if len(lengths) > 1:
            raise StorageError(f"ragged column vectors: lengths {sorted(lengths)}")
        count = lengths.pop() if lengths else 0
        for name, vector in zip(names, vectors):
            self.chains[name].append(vector)
        self.insert_xids.extend([xid] * count)
        self.delete_xids.extend([None] * count)
        epoch.bump(self.table_name)
        return count

    def seal(self) -> None:
        """Seal the open tail block of every chain (end of a load)."""
        for chain in self.chains.values():
            chain.seal()
        epoch.bump(self.table_name)

    def mark_deleted(self, offsets: Iterable[int], xid: int) -> int:
        """Tombstone rows at *offsets* as deleted by *xid*."""
        n = 0
        for offset in offsets:
            if self.delete_xids[offset] is None:
                self.delete_xids[offset] = xid
                n += 1
        if n:
            epoch.bump(self.table_name)
        return n

    def chain(self, column: str) -> ColumnChain:
        chain = self.chains.get(column)
        if chain is None:
            raise StorageError(
                f"table {self.table_name!r} has no column {column!r}"
            )
        return chain

    def rewrite_sorted(self, order: Sequence[int], xid: int) -> None:
        """Rewrite every chain with rows permuted by *order* (VACUUM).

        Dead rows must already be excluded from *order*; the rewritten
        shard contains only live rows, all marked inserted by *xid*.
        """
        self.chains = {
            name: chain.rewrite_in_order(order)
            for name, chain in self.chains.items()
        }
        self.insert_xids = [xid] * len(order)
        self.delete_xids = [None] * len(order)
        self.sorted_prefix = len(order)
        epoch.bump(self.table_name)


@dataclass
class SliceStorage:
    """All table shards resident on one slice, plus its disk."""

    slice_id: str
    disk: SimulatedDisk
    block_capacity: int = BLOCK_CAPACITY_DEFAULT

    def __post_init__(self) -> None:
        self._shards: dict[str, TableShard] = {}

    def create_shard(
        self,
        table_name: str,
        columns: Sequence[tuple[str, SqlType]],
        codecs: dict[str, Codec | str] | None = None,
    ) -> TableShard:
        if table_name in self._shards:
            raise StorageError(
                f"slice {self.slice_id} already has shard for {table_name!r}"
            )
        shard = TableShard(table_name, columns, codecs, self.block_capacity)
        self._shards[table_name] = shard
        epoch.bump(table_name)
        return shard

    def drop_shard(self, table_name: str) -> None:
        shard = self._shards.pop(table_name, None)
        if shard is not None:
            self.disk.record_delete(shard.encoded_bytes)
            epoch.bump(table_name)

    def shard(self, table_name: str) -> TableShard:
        shard = self._shards.get(table_name)
        if shard is None:
            raise StorageError(
                f"slice {self.slice_id} has no shard for table {table_name!r}"
            )
        return shard

    def has_shard(self, table_name: str) -> bool:
        return table_name in self._shards

    @property
    def shards(self) -> dict[str, TableShard]:
        return dict(self._shards)

    @property
    def used_bytes(self) -> int:
        return sum(s.encoded_bytes for s in self._shards.values())
