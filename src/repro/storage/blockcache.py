"""LRU cache of decoded block vectors.

The vectorized executor consumes whole decoded columns, so decoding the
same immutable block on every query is pure waste — the block's bytes
never change until a VACUUM rewrite, a scrub repair, or an injected
bit-flip replaces its content. The cache therefore keys on ``block_id``
and hands out the decoded value list itself (callers must treat it as
read-only); eviction is plain LRU.

Invalidation rules (see DESIGN.md §7):

- ``Block.corrupt()`` (the fault injector's bit-flip path) invalidates
  the block's entry in **every** live cache via the module-level weak
  registry, so a corrupted block is re-read and fails its checksum
  instead of being served from cache.
- Chain mutations that replace sealed blocks under an existing id
  (scrub-and-repair ``replace_block``) or retire whole block sets
  (``adopt_blocks``, VACUUM's ``rewrite_in_order``) invalidate the old
  ids explicitly.

Counters (hits / misses / evictions / invalidations) feed the
``stv_block_cache`` system table and EXPLAIN ANALYZE.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

from repro.storage import epoch

#: Every live cache instance; Block.corrupt() and chain rewrites reach
#: all of them without holding strong references.
_instances: "weakref.WeakSet" = weakref.WeakSet()

#: Default number of decoded blocks kept resident.
DEFAULT_CAPACITY = 4096


def invalidate_everywhere(block_id: str, table: str | None = None) -> None:
    """Drop *block_id* from every live cache (bit-flips, rewrites).

    Every caller of this function is rewriting block content in place
    (corruption, scrub repair, adopt_blocks, VACUUM), which also makes
    any forked worker-pool memory image stale — so this doubles as the
    storage-epoch bump for those mutation paths. *table* attributes the
    bump to the owning table (precise pool/result-cache invalidation);
    None falls back to the wildcard epoch.
    """
    epoch.bump(table)
    for cache in list(_instances):
        cache.invalidate(block_id)


class BlockDecodeCache:
    """LRU of ``block_id`` -> decoded value list."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, list]" = OrderedDict()
        #: Guards LRU mutation: the threaded parallel fallback shares one
        #: cache across workers, and OrderedDict reordering is not atomic.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Monotonic invalidation generation. A miss records the value it
        #: saw under the lock; the post-decode insert is discarded if any
        #: invalidation (or clear) landed in between, so a decode of
        #: pre-mutation content can never re-populate the cache after the
        #: mutation already evicted it.
        self._generation = 0
        _instances.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, block) -> tuple[list, bool]:
        """The decoded values of *block* and whether they were cached.

        On miss the block is decoded and checksum-verified once via
        :meth:`Block.read_vector` and the resulting list is cached; the
        returned list is shared — callers must never mutate it.
        """
        with self._lock:
            values = self._entries.get(block.block_id)
            if values is not None:
                self._entries.move_to_end(block.block_id)
                self.hits += 1
                return values, True
            self.misses += 1
            generation = self._generation
        # Decode outside the lock: read_vector() is the expensive part and
        # is safe to race (worst case two threads decode the same block).
        values = block.read_vector()
        with self._lock:
            existing = self._entries.get(block.block_id)
            if existing is not None:
                # Lost the insert race to another thread: the caller gets
                # the cached vector, so account it as a hit (the miss was
                # provisional).
                self.misses -= 1
                self.hits += 1
                return existing, True
            if self._generation != generation:
                # An invalidation landed between the miss and here; this
                # decode may predate the mutation that caused it, so it
                # must not re-populate the cache. Serve it uncached.
                return values, False
            self._entries[block.block_id] = values
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return values, False

    def peek(self, block) -> list | None:
        """The cached decoded values of *block*, or None — never decodes.

        The encoded scan path consults this first: when a decoded vector is
        already resident it is cheaper to consume than the compressed
        payload, so the peek counts as a hit. An absence is *not* counted
        as a miss — the encoded path is not going to decode, so no decode
        work was missed.
        """
        with self._lock:
            values = self._entries.get(block.block_id)
            if values is not None:
                self._entries.move_to_end(block.block_id)
                self.hits += 1
            return values

    def invalidate(self, block_id: str) -> bool:
        """Drop one entry; True when it was present.

        Always advances the invalidation generation — even when the entry
        is absent, an in-flight miss for this block must not insert its
        (possibly pre-mutation) decode.
        """
        with self._lock:
            self._generation += 1
            if self._entries.pop(block_id, None) is not None:
                self.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        with self._lock:
            self._generation += 1
            self._entries.clear()
