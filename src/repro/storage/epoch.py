"""A process-global storage version counter.

Fork-based parallel workers (see :mod:`repro.exec.workers`) execute
against the memory image they inherited when the worker pool forked. Any
mutation of slice storage after that fork — appended rows, tombstones,
sealed tails, VACUUM rewrites, scrub repairs, injected bit-flips — makes
that image stale, so every storage mutation path bumps this counter and
the pool manager re-forks when the counter no longer matches the value
the pool was created at.

The counter is deliberately global (not per cluster): it is a cheap
monotonic "anything changed anywhere" signal, and a spurious re-fork is
only a small cost while a missed one is a correctness bug.
"""

from __future__ import annotations

import itertools
import threading

_counter = itertools.count(1)
_current = 0
_lock = threading.Lock()


def bump() -> int:
    """Record a storage mutation; returns the new version."""
    global _current
    with _lock:
        _current = next(_counter)
        return _current


def current() -> int:
    """The version of the most recent storage mutation."""
    return _current
