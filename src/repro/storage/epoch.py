"""Process-global storage version counters, per table.

Two consumers depend on knowing when slice storage mutated:

- Fork-based parallel workers (see :mod:`repro.exec.workers`) execute
  against the memory image they inherited when the worker pool forked.
  Any mutation of a table a pipeline scans — appended rows, tombstones,
  sealed tails, VACUUM rewrites, scrub repairs, injected bit-flips —
  makes that image stale for that pipeline, so the pool manager re-forks
  when one of the *scanned* tables moved past the pool's fork epoch.
- The leader-side query result cache (:mod:`repro.engine.resultcache`)
  keys entries on the epochs of every referenced table and drops an
  entry the moment any of them moved.

All tables share one monotonic counter, so epoch values are totally
ordered across tables: ``table_epoch(t) > pool.epoch`` is a valid
staleness test no matter which tables bumped in between. A bump that
cannot be attributed to a table (``bump()`` with no name) raises the
*wildcard* epoch, which every ``table_epoch`` reflects — a spurious
invalidation is only a small cost while a missed one is a correctness
bug.

The counters are deliberately global (not per cluster): they are a cheap
"did anything change" signal, and reads/writes all take the module lock
(an unlocked read could observe a torn update under free-threaded
builds, and the lock also orders the per-table map with the counter).
"""

from __future__ import annotations

import contextlib
import itertools
import threading

_counter = itertools.count(1)
_current = 0
_wildcard = 0
#: table name -> counter value at that table's most recent mutation.
_tables: dict[str, int] = {}
_lock = threading.Lock()
_suppression = threading.local()


@contextlib.contextmanager
def suppressed():
    """Suppress epoch bumps made by the calling thread.

    Building a brand-new cluster from snapshot images (burst restore)
    runs the same ``create_shard``/``adopt_blocks`` paths as real
    writes, but produces no new version of the tables that *other*
    clusters in this process serve — their caches and worker pools
    remain valid. Since counters are keyed by table name and shared
    process-wide, those construction-time bumps would otherwise read as
    mutations everywhere. Suppression is thread-local, so concurrent
    genuine writes on other threads still bump normally.
    """
    depth = getattr(_suppression, "depth", 0)
    _suppression.depth = depth + 1
    try:
        yield
    finally:
        _suppression.depth = depth


def bump(table: str | None = None) -> int:
    """Record a storage mutation; returns the new version.

    With *table* the mutation is attributed to that table alone; without
    it the wildcard epoch moves and every table reads as mutated.
    No-ops (returning the current version) while the calling thread is
    inside :func:`suppressed`.
    """
    global _current, _wildcard
    if getattr(_suppression, "depth", 0):
        with _lock:
            return _current
    with _lock:
        _current = next(_counter)
        if table is None:
            _wildcard = _current
        else:
            _tables[table] = _current
        return _current


def current() -> int:
    """The version of the most recent storage mutation (any table)."""
    with _lock:
        return _current


def table_epoch(table: str) -> int:
    """The version of *table*'s most recent mutation.

    Includes the wildcard epoch: an unattributed mutation conservatively
    counts against every table.
    """
    with _lock:
        return max(_tables.get(table, 0), _wildcard)


def wildcard_epoch() -> int:
    """The version of the most recent unattributed mutation."""
    with _lock:
        return _wildcard
