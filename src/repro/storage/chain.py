"""Column chains: ordered block sequences for one column of one slice.

"Each column within each slice is encoded in a chain of one or more fixed
size data blocks. The linkage between the columns of an individual row is
derived by calculating the logical offset within each column chain"
(paper §2.1). The chain owns an open tail buffer that is sealed into an
encoded block when it reaches capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.compression.codecs import Codec, codec_by_name
from repro.datatypes.types import SqlType
from repro.storage import blockcache
from repro.storage.block import BLOCK_CAPACITY_DEFAULT, Block
from repro.storage.zonemap import ZoneMap


@dataclass
class ScanStats:
    """IO accounting for one chain scan — the currency of the zone-map
    experiments (blocks skipped are disk reads avoided).

    ``blocks_total``/``blocks_read``/``blocks_skipped`` count logical row
    blocks once each, regardless of how many column chains a scan touches;
    ``chains_read`` counts the per-column chain-block reads (so a 3-column
    scan reading one block reports blocks_read=1, chains_read=3).
    """

    blocks_total: int = 0
    blocks_read: int = 0
    blocks_skipped: int = 0
    #: Per-column chain-block reads (>= blocks_read for multi-column scans).
    chains_read: int = 0
    bytes_read: int = 0
    values_read: int = 0
    #: Block-decode cache traffic (batch scan path only).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Operate-on-compressed accounting (encoded scan path only): batches
    #: that carried at least one still-encoded column, and the uncompressed
    #: bytes whose eager decode those columns avoided.
    encoded_batches: int = 0
    decode_bytes_avoided: int = 0
    #: codec name -> [blocks, values, bytes_avoided, masks, folds, gathers]
    #: (see repro.exec.encoded ENC_* index constants); feeds
    #: svl_scan_encoding.
    encoding: dict = field(default_factory=dict)

    def merge(self, other: "ScanStats") -> None:
        self.blocks_total += other.blocks_total
        self.blocks_read += other.blocks_read
        self.blocks_skipped += other.blocks_skipped
        self.chains_read += other.chains_read
        self.bytes_read += other.bytes_read
        self.values_read += other.values_read
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.encoded_batches += other.encoded_batches
        self.decode_bytes_avoided += other.decode_bytes_avoided
        for codec, counts in other.encoding.items():
            entry = self.encoding.setdefault(codec, [0] * len(counts))
            for i, n in enumerate(counts):
                entry[i] += n


class ColumnChain:
    """The storage of one column on one slice."""

    def __init__(
        self,
        column_name: str,
        sql_type: SqlType,
        codec: Codec | str = "raw",
        block_capacity: int = BLOCK_CAPACITY_DEFAULT,
    ):
        if block_capacity < 1:
            raise ValueError(f"block capacity must be positive, got {block_capacity}")
        self.column_name = column_name
        self.sql_type = sql_type
        self.codec = codec_by_name(codec) if isinstance(codec, str) else codec
        self.block_capacity = block_capacity
        self._blocks: list[Block] = []
        self._tail: list[object] = []
        #: Owning table, set by TableShard; attributes cache/epoch
        #: invalidations to the table so per-table staleness stays precise.
        self.table_name: str | None = None

    # ---- writes -----------------------------------------------------------

    def append(self, values: Sequence[object]) -> None:
        """Append validated values, sealing full blocks as they fill."""
        for value in values:
            self._tail.append(value)
            if len(self._tail) >= self.block_capacity:
                self._seal_tail()

    def seal(self) -> None:
        """Flush the open tail buffer into a (possibly short) final block."""
        if self._tail:
            self._seal_tail()

    def _seal_tail(self) -> None:
        block = Block.build(self._tail, self.sql_type, self.codec)
        # Blocks learn their owning table so Block.corrupt() can attribute
        # its invalidation (it only knows the block).
        block.table_name = self.table_name
        self._blocks.append(block)
        self._tail = []

    def set_codec(self, codec: Codec | str) -> None:
        """Change the codec used for *future* blocks (existing blocks keep
        their encoding, as in a real engine until VACUUM rewrites them)."""
        self.codec = codec_by_name(codec) if isinstance(codec, str) else codec

    # ---- metadata -----------------------------------------------------------

    @property
    def row_count(self) -> int:
        return sum(b.count for b in self._blocks) + len(self._tail)

    @property
    def block_count(self) -> int:
        return len(self._blocks) + (1 if self._tail else 0)

    @property
    def blocks(self) -> list[Block]:
        """Sealed blocks (the tail buffer is not yet a block)."""
        return list(self._blocks)

    @property
    def tail_values(self) -> list[object]:
        """The open tail buffer. Treat as read-only."""
        return self._tail

    @property
    def encoded_bytes(self) -> int:
        """Accounted on-disk bytes of all sealed blocks plus the raw tail."""
        tail_bytes = len(self._tail) * self.sql_type.byte_width
        return sum(b.encoded_bytes for b in self._blocks) + tail_bytes

    def chain_zone_map(self) -> ZoneMap:
        """Zone map over the whole chain (used for table-level pruning)."""
        zone = ZoneMap.build(self._tail)
        for block in self._blocks:
            zone = zone.merge(block.zone_map)
        return zone

    # ---- reads ---------------------------------------------------------------

    def scan(
        self,
        zone_predicate: tuple[str, object] | None = None,
        stats: ScanStats | None = None,
    ) -> Iterator[tuple[int, object]]:
        """Yield (row_offset, value) pairs, skipping blocks via zone maps.

        *zone_predicate* is an (operator, literal) pair applied to this
        column; blocks whose zone map proves no row can satisfy it are
        skipped entirely (their rows are simply not yielded). Callers that
        need those row offsets for other columns must not pass a predicate.
        """
        offset = 0
        for block in self._blocks:
            skip = (
                zone_predicate is not None
                and not block.zone_map.might_satisfy(*zone_predicate)
            )
            if stats is not None:
                stats.blocks_total += 1
                if skip:
                    stats.blocks_skipped += 1
                else:
                    stats.blocks_read += 1
                    stats.chains_read += 1
                    stats.bytes_read += block.encoded_bytes
                    stats.values_read += block.count
            if skip:
                offset += block.count
                continue
            for value in block.read():
                yield offset, value
                offset += 1
        for value in self._tail:
            yield offset, value
            offset += 1
        if stats is not None and self._tail:
            stats.values_read += len(self._tail)

    def read_all(self) -> list[object]:
        """Materialize every value in the chain in row order."""
        out: list[object] = []
        for block in self._blocks:
            out.extend(block.read())
        out.extend(self._tail)
        return out

    def read_at(self, offsets: Sequence[int]) -> list[object]:
        """Fetch values at specific row offsets (offsets must be sorted).

        This is the "logical offset" linkage: after a predicate selects row
        positions on one column, sibling columns are fetched by offset.
        """
        out: list[object] = []
        if not offsets:
            return out
        it = iter(offsets)
        want = next(it)
        base = 0
        done = False
        for block in self._blocks:
            end = base + block.count
            if want < end:
                values = block.read()
                while want < end:
                    out.append(values[want - base])
                    try:
                        want = next(it)
                    except StopIteration:
                        done = True
                        break
            if done:
                break
            base = end
        else:
            while not done:
                out.append(self._tail[want - base])
                try:
                    want = next(it)
                except StopIteration:
                    done = True
        return out

    def replace_block(self, block_id: str, block: Block) -> bool:
        """Swap a sealed block for a repaired image with the same id.

        Used by scrub-and-repair to splice a restored block back into the
        chain in place. Returns False when no sealed block matches.
        """
        for i, existing in enumerate(self._blocks):
            if existing.block_id == block_id:
                block.table_name = self.table_name
                self._blocks[i] = block
                # The repaired image reuses the id; drop any stale
                # decoded entry so caches serve the new content.
                blockcache.invalidate_everywhere(block_id, self.table_name)
                return True
        return False

    def adopt_blocks(self, blocks: Sequence[Block]) -> None:
        """Replace this chain's contents with already-built blocks.

        Used by recovery and restore paths that reconstruct a chain from
        replicated or backed-up block images. Any open tail is discarded.
        """
        for existing in self._blocks:
            blockcache.invalidate_everywhere(existing.block_id, self.table_name)
        self._blocks = list(blocks)
        for block in self._blocks:
            block.table_name = self.table_name
        self._tail = []

    def rewrite_in_order(self, order: Sequence[int]) -> "ColumnChain":
        """Produce a new chain with rows permuted by *order* (VACUUM/sort).

        The retired blocks' decode-cache entries are invalidated; the
        rewritten chain gets fresh block ids.
        """
        for existing in self._blocks:
            blockcache.invalidate_everywhere(existing.block_id, self.table_name)
        values = self.read_all()
        fresh = ColumnChain(
            self.column_name, self.sql_type, self.codec, self.block_capacity
        )
        fresh.table_name = self.table_name
        fresh.append([values[i] for i in order])
        fresh.seal()
        return fresh
