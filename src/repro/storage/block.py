"""Fixed-capacity encoded column blocks.

A :class:`Block` is the unit of storage, replication, backup and restore:
it holds one encoded vector of up to ``capacity`` values of a single
column, its zone map, and a checksum verified on every read. Blocks are
immutable once built — updates append new blocks and VACUUM rewrites
chains, mirroring the copy-on-write behaviour the incremental-backup design
relies on.
"""

from __future__ import annotations

import itertools
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.compression.codecs import (
    Codec,
    EncodedVector,
    codec_by_name,
    corrupt_payload,
    payload_byte_chunks,
)
from repro.datatypes.types import SqlType
from repro.errors import BlockCorruptionError
from repro.storage import blockcache
from repro.storage.zonemap import ZoneMap

#: Default number of values per block. Real Redshift blocks are a fixed
#: 1 MB; a fixed *value capacity* gives the same skipping and replication
#: granularity while keeping accounting simple.
BLOCK_CAPACITY_DEFAULT = 4096

_block_ids = itertools.count(1)


def _next_block_id() -> str:
    return f"blk-{next(_block_ids):012d}"


def _checksum(vector: EncodedVector) -> int:
    """Content checksum over the encoded payload bytes.

    A single ``zlib.crc32`` pass over the vector's canonical byte image
    (typed-array buffers, compressed byte streams, residual object parts
    pickled once as a unit) plus the codec name, logical count and null
    positions. This replaces the old per-value ``pickle.dumps`` walk over
    decoded values — a hot-path tax paid on every first read — and lets
    encoded scans verify integrity without decoding at all.
    """
    crc = zlib.crc32(vector.codec_name.encode("utf-8"))
    crc = zlib.crc32(vector.count.to_bytes(8, "little"), crc)
    for pos in sorted(vector.null_positions):
        crc = zlib.crc32(pos.to_bytes(8, "little"), crc)
    for chunk in payload_byte_chunks(vector.payload):
        crc = zlib.crc32(chunk, crc)
    return crc


def _checksum_values(values: Sequence[object]) -> int:
    """Legacy content checksum over decoded values (compat shim).

    Blocks serialized before the payload checksum existed carry a CRC
    computed this way; :meth:`Block.deserialize` tags them
    ``checksum_kind="values"`` so they still verify. Each value is pickled
    independently: pickling the list as a whole would memoize repeated
    object references, making a run-length-decoded block (one shared
    object) checksum differently from the originally parsed values
    (distinct equal objects).
    """
    crc = 0
    for value in values:
        crc = zlib.crc32(pickle.dumps(value, protocol=4), crc)
    return crc


@dataclass
class Block:
    """One immutable encoded column block.

    Attributes:
        block_id: globally unique id used by replication and backup.
        vector: the encoded values.
        zone_map: min/max summary used for block skipping.
        checksum: CRC over the encoded payload bytes, verified on read
            (legacy images checksum decoded values; see ``checksum_kind``).
    """

    block_id: str
    vector: EncodedVector
    zone_map: ZoneMap
    checksum: int
    #: "payload" — checksum over encoded payload bytes (current format);
    #: "values" — legacy per-value CRC walk over decoded values, kept so
    #: pre-payload-checksum images (replicas, backups) still verify.
    checksum_kind: str = "payload"
    #: True once the content passed checksum verification; reset whenever
    #: the content can have changed (corrupt()), so the hot read path pays
    #: the CRC pass once per block, not once per read.
    _verified: bool = field(default=False, repr=False, compare=False)
    #: Owning table, stamped by the chain that sealed/adopted the block.
    #: Attributes corrupt()'s cache/epoch invalidation to the table;
    #: None (blocks built outside a shard) falls back to the wildcard.
    table_name: str | None = field(default=None, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        values: Sequence[object],
        sql_type: SqlType,
        codec: Codec,
        block_id: str | None = None,
    ) -> "Block":
        """Encode *values* into a new block with zone map and checksum."""
        vector = codec.encode(values, sql_type)
        return cls(
            block_id=block_id or _next_block_id(),
            vector=vector,
            zone_map=ZoneMap.build(values),
            checksum=_checksum(vector),
        )

    @property
    def count(self) -> int:
        """Number of values (including NULLs) stored in the block."""
        return self.vector.count

    @property
    def encoded_bytes(self) -> int:
        """Accounted on-disk size of the block."""
        return self.vector.encoded_bytes

    @property
    def codec_name(self) -> str:
        return self.vector.codec_name

    def read(self, verify: bool = True) -> list[object]:
        """Decode the block's values, verifying the checksum.

        Verification is memoized: the CRC walk runs once per decoded
        content, not once per read. :meth:`corrupt` resets the memo so
        injected bit-flips are still detected.

        Raises :class:`BlockCorruptionError` if the decoded content does
        not match the checksum recorded at build time.
        """
        return list(self.read_vector(verify))

    def read_vector(self, verify: bool = True) -> list[object]:
        """Like :meth:`read` but skips the defensive copy — the batch-scan
        fast path. Callers must not mutate the returned list.

        Deliberately NOT memoized on the block: blocks live as long as
        their chain, so a per-block memo would retain every decoded list
        for the life of the cluster. The bounded
        :class:`~repro.storage.blockcache.BlockDecodeCache` is the only
        place decoded vectors are retained.
        """
        if verify and not self._verified:
            self.verify_checksum()
        codec = codec_by_name(self.vector.codec_name)
        return codec.decode(self.vector)

    def verify_checksum(self) -> None:
        """Verify block integrity, raising :class:`BlockCorruptionError`.

        For payload-checksummed blocks this never decodes — the encoded
        scan path verifies compressed vectors it will execute on directly.
        Verification is memoized per content; :meth:`corrupt` resets it.
        """
        if self._verified:
            return
        if self.checksum_kind == "payload":
            actual = _checksum(self.vector)
        else:
            codec = codec_by_name(self.vector.codec_name)
            actual = _checksum_values(codec.decode(self.vector))
        if actual != self.checksum:
            raise BlockCorruptionError(
                f"block {self.block_id} failed checksum verification"
            )
        self._verified = True

    def corrupt(self) -> None:
        """Deliberately corrupt the block (test/failure-injection hook).

        Flips bits inside the encoded payload, resets the
        verified-checksum memo and evicts the block from every decode
        cache, so the next read re-verifies and fails.
        """
        corrupt_payload(self.vector)
        self._verified = False
        blockcache.invalidate_everywhere(self.block_id, self.table_name)

    def serialize(self) -> bytes:
        """Produce the byte image shipped to replicas and to S3 backup."""
        return pickle.dumps(
            {
                "block_id": self.block_id,
                "vector": self.vector,
                "zone_map": self.zone_map,
                "checksum": self.checksum,
                "checksum_kind": self.checksum_kind,
            },
            protocol=4,
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "Block":
        """Reconstruct a block from :meth:`serialize` output.

        Images produced before the payload checksum existed carry no
        ``checksum_kind``; they verify through the legacy decoded-value
        walk (see :func:`_checksum_values`).
        """
        fields = pickle.loads(data)
        return cls(
            block_id=fields["block_id"],
            vector=fields["vector"],
            zone_map=fields["zone_map"],
            checksum=fields["checksum"],
            checksum_kind=fields.get("checksum_kind", "values"),
        )
