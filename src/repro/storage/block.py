"""Fixed-capacity encoded column blocks.

A :class:`Block` is the unit of storage, replication, backup and restore:
it holds one encoded vector of up to ``capacity`` values of a single
column, its zone map, and a checksum verified on every read. Blocks are
immutable once built — updates append new blocks and VACUUM rewrites
chains, mirroring the copy-on-write behaviour the incremental-backup design
relies on.
"""

from __future__ import annotations

import itertools
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.compression.codecs import Codec, EncodedVector, codec_by_name
from repro.datatypes.types import SqlType
from repro.errors import BlockCorruptionError
from repro.storage import blockcache
from repro.storage.zonemap import ZoneMap

#: Default number of values per block. Real Redshift blocks are a fixed
#: 1 MB; a fixed *value capacity* gives the same skipping and replication
#: granularity while keeping accounting simple.
BLOCK_CAPACITY_DEFAULT = 4096

_block_ids = itertools.count(1)


def _next_block_id() -> str:
    return f"blk-{next(_block_ids):012d}"


def _checksum(values: Sequence[object]) -> int:
    """Content checksum over the value sequence.

    Each value is pickled independently: pickling the list as a whole
    would memoize repeated object references, making a run-length-decoded
    block (one shared object) checksum differently from the originally
    parsed values (distinct equal objects).
    """
    crc = 0
    for value in values:
        crc = zlib.crc32(pickle.dumps(value, protocol=4), crc)
    return crc


@dataclass
class Block:
    """One immutable encoded column block.

    Attributes:
        block_id: globally unique id used by replication and backup.
        vector: the encoded values.
        zone_map: min/max summary used for block skipping.
        checksum: CRC over the decoded values, verified on read.
    """

    block_id: str
    vector: EncodedVector
    zone_map: ZoneMap
    checksum: int
    _decoded_cache: list[object] | None = field(
        default=None, repr=False, compare=False
    )
    #: True once the decoded content passed checksum verification; reset
    #: whenever the content can have changed (corrupt()), so the hot read
    #: path pays the per-value CRC pickle walk once per block, not once
    #: per read.
    _verified: bool = field(default=False, repr=False, compare=False)
    #: Owning table, stamped by the chain that sealed/adopted the block.
    #: Attributes corrupt()'s cache/epoch invalidation to the table;
    #: None (blocks built outside a shard) falls back to the wildcard.
    table_name: str | None = field(default=None, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        values: Sequence[object],
        sql_type: SqlType,
        codec: Codec,
        block_id: str | None = None,
    ) -> "Block":
        """Encode *values* into a new block with zone map and checksum."""
        vector = codec.encode(values, sql_type)
        return cls(
            block_id=block_id or _next_block_id(),
            vector=vector,
            zone_map=ZoneMap.build(values),
            checksum=_checksum(values),
        )

    @property
    def count(self) -> int:
        """Number of values (including NULLs) stored in the block."""
        return self.vector.count

    @property
    def encoded_bytes(self) -> int:
        """Accounted on-disk size of the block."""
        return self.vector.encoded_bytes

    @property
    def codec_name(self) -> str:
        return self.vector.codec_name

    def read(self, verify: bool = True) -> list[object]:
        """Decode the block's values, verifying the checksum.

        Verification is memoized: the CRC walk runs once per decoded
        content, not once per read. :meth:`corrupt` resets the memo so
        injected bit-flips are still detected.

        Raises :class:`BlockCorruptionError` if the decoded content does
        not match the checksum recorded at build time.
        """
        return list(self.read_vector(verify))

    def read_vector(self, verify: bool = True) -> list[object]:
        """Like :meth:`read` but returns the shared decoded list without
        copying — the batch-scan fast path. Callers must not mutate it."""
        if self._decoded_cache is None:
            codec = codec_by_name(self.vector.codec_name)
            self._decoded_cache = codec.decode(self.vector)
            self._verified = False
        if verify and not self._verified:
            if _checksum(self._decoded_cache) != self.checksum:
                raise BlockCorruptionError(
                    f"block {self.block_id} failed checksum verification"
                )
            self._verified = True
        return self._decoded_cache

    def corrupt(self) -> None:
        """Deliberately corrupt the block (test/failure-injection hook).

        Resets the verified-checksum memo and evicts the block from every
        decode cache, so the next read re-verifies and fails.
        """
        values = self.read(verify=False)
        if values:
            values[0] = "☠CORRUPTED" if values[0] is None else None
        else:
            values.append("☠CORRUPTED")
        self._decoded_cache = values
        self._verified = False
        blockcache.invalidate_everywhere(self.block_id, self.table_name)

    def serialize(self) -> bytes:
        """Produce the byte image shipped to replicas and to S3 backup."""
        return pickle.dumps(
            {
                "block_id": self.block_id,
                "vector": self.vector,
                "zone_map": self.zone_map,
                "checksum": self.checksum,
            },
            protocol=4,
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "Block":
        """Reconstruct a block from :meth:`serialize` output."""
        fields = pickle.loads(data)
        return cls(
            block_id=fields["block_id"],
            vector=fields["vector"],
            zone_map=fields["zone_map"],
            checksum=fields["checksum"],
        )
