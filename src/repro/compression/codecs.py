"""Column compression codecs.

Each codec encodes a vector of Python values (with ``None`` for NULL) into
an :class:`EncodedVector` whose ``encoded_bytes`` is the size the encoding
would occupy on disk. Values round-trip exactly: ``decode(encode(v)) == v``.

NULLs are handled uniformly: the vector carries a null bitmap (one bit per
value, accounted into ``encoded_bytes``) and codecs see only the non-null
values.

Numeric structure codecs (DELTA, MOSTLY, RUNLENGTH on numerics) operate on
an integer image of the value: integers map to themselves, dates to their
proleptic ordinal, timestamps to epoch microseconds, decimals to their
scaled integer. This mirrors how a real engine applies these encodings to
any fixed-width type.
"""

from __future__ import annotations

import datetime
import decimal
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.datatypes.types import SqlType, TypeKind
from repro.errors import StorageError

_EPOCH = datetime.datetime(1970, 1, 1)

_HEADER_BYTES = 8  # codec id, value count, payload length


def _null_bitmap_bytes(count: int) -> int:
    return (count + 7) // 8


def _to_int_image(value: object, sql_type: SqlType) -> int:
    """Map a value of a fixed-width type to its integer image."""
    kind = sql_type.kind
    if kind is TypeKind.DATE:
        return value.toordinal()
    if kind is TypeKind.TIMESTAMP:
        delta = value - _EPOCH
        return delta.days * 86_400_000_000 + delta.seconds * 1_000_000 + delta.microseconds
    if kind is TypeKind.DECIMAL:
        return int(value.scaleb(sql_type.scale))
    if kind is TypeKind.BOOLEAN:
        return int(value)
    return value


def _from_int_image(image: int, sql_type: SqlType) -> object:
    kind = sql_type.kind
    if kind is TypeKind.DATE:
        return datetime.date.fromordinal(image)
    if kind is TypeKind.TIMESTAMP:
        return _EPOCH + datetime.timedelta(microseconds=image)
    if kind is TypeKind.DECIMAL:
        return decimal.Decimal(image).scaleb(-sql_type.scale)
    if kind is TypeKind.BOOLEAN:
        return bool(image)
    return image


def _int_image_supported(sql_type: SqlType) -> bool:
    return sql_type.is_integer or sql_type.kind in (
        TypeKind.DATE,
        TypeKind.TIMESTAMP,
        TypeKind.DECIMAL,
        TypeKind.BOOLEAN,
    )


def _serialize_values(values: Sequence[object], sql_type: SqlType) -> bytes:
    """Serialize non-null values to a byte stream for byte-oriented codecs.

    Strings are length-prefixed (4-byte little-endian) so embedded NULs and
    empty strings round-trip; fixed-width types pack to 8-byte integers or
    doubles.
    """
    import struct

    if sql_type.is_character:
        parts = []
        for v in values:
            encoded = v.encode("utf-8", "surrogateescape")
            parts.append(struct.pack("<I", len(encoded)))
            parts.append(encoded)
        return b"".join(parts)
    if sql_type.is_float:
        return struct.pack(f"<{len(values)}d", *values)
    images = [_to_int_image(v, sql_type) for v in values]
    return struct.pack(f"<{len(images)}q", *images)


@dataclass
class EncodedVector:
    """The on-disk image of one column vector.

    ``payload`` is codec-specific; ``encoded_bytes`` is the accounted disk
    size including header and null bitmap. ``values_with_nulls_count`` is
    the logical length including NULLs.
    """

    codec_name: str
    sql_type: SqlType
    count: int
    null_positions: frozenset[int]
    payload: object
    encoded_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bytes divided by encoded bytes (>1 means smaller)."""
        raw = self.count * self.sql_type.byte_width
        return raw / self.encoded_bytes if self.encoded_bytes else float("inf")


class Codec:
    """Base class for column codecs."""

    name = "raw"
    #: Relative CPU cost multiplier of decoding, used by the analyzer's
    #: tie-break and by the performance model.
    decode_cost = 1.0

    def supports(self, sql_type: SqlType) -> bool:
        """Whether this codec can encode columns of *sql_type*."""
        raise NotImplementedError

    def encode(self, values: Sequence[object], sql_type: SqlType) -> EncodedVector:
        """Encode *values* (which may contain ``None``) into a vector."""
        if not self.supports(sql_type):
            raise StorageError(f"codec {self.name} does not support {sql_type}")
        nulls = frozenset(i for i, v in enumerate(values) if v is None)
        present = [v for v in values if v is not None]
        payload, payload_bytes = self._encode_present(present, sql_type)
        total = _HEADER_BYTES + _null_bitmap_bytes(len(values)) + payload_bytes
        return EncodedVector(
            codec_name=self.name,
            sql_type=sql_type,
            count=len(values),
            null_positions=nulls,
            payload=payload,
            encoded_bytes=total,
        )

    def decode(self, vector: EncodedVector) -> list[object]:
        """Decode a vector back to the original value list."""
        present = self._decode_present(vector.payload, vector.sql_type)
        result: list[object] = []
        it = iter(present)
        for i in range(vector.count):
            result.append(None if i in vector.null_positions else next(it))
        return result

    # Subclass hooks --------------------------------------------------------

    def _encode_present(
        self, values: Sequence[object], sql_type: SqlType
    ) -> tuple[object, int]:
        raise NotImplementedError

    def _decode_present(self, payload: object, sql_type: SqlType) -> list[object]:
        raise NotImplementedError


class RawCodec(Codec):
    """No compression: every value stored at its nominal width."""

    name = "raw"
    decode_cost = 0.5

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        if sql_type.is_character:
            size = sum(len(v.encode("utf-8", "surrogateescape")) + 1 for v in values)
        else:
            size = len(values) * sql_type.byte_width
        return list(values), size

    def _decode_present(self, payload, sql_type):
        return list(payload)


class RunLengthCodec(Codec):
    """Run-length encoding: (value, run length) pairs.

    Effective on sorted or low-cardinality columns; each run costs the
    value's width plus a 4-byte count.
    """

    name = "runlength"
    decode_cost = 0.8

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        runs: list[tuple[object, int]] = []
        for v in values:
            if runs and runs[-1][0] == v:
                runs[-1] = (v, runs[-1][1] + 1)
            else:
                runs.append((v, 1))
        per_value = sql_type.byte_width if not sql_type.is_character else 0
        size = 0
        for value, _count in runs:
            if sql_type.is_character:
                size += len(value.encode("utf-8", "surrogateescape")) + 1 + 4
            else:
                size += per_value + 4
        return runs, size

    def _decode_present(self, payload, sql_type):
        out: list[object] = []
        for value, count in payload:
            out.extend([value] * count)
        return out


class ByteDictCodec(Codec):
    """Byte dictionary: up to 255 distinct values indexed by one byte.

    Values beyond the first 255 distinct are stored raw after an escape
    index, exactly mirroring Redshift's BYTEDICT exception handling.
    """

    name = "bytedict"
    decode_cost = 0.9
    _ESCAPE = 255
    _MAX_DICT = 255

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        dictionary: dict[object, int] = {}
        indexes: list[int] = []
        exceptions: list[object] = []
        for v in values:
            idx = dictionary.get(v)
            if idx is None and len(dictionary) < self._MAX_DICT:
                idx = len(dictionary)
                dictionary[v] = idx
            if idx is None:
                indexes.append(self._ESCAPE)
                exceptions.append(v)
            else:
                indexes.append(idx)

        def value_bytes(v: object) -> int:
            if sql_type.is_character:
                return len(v.encode("utf-8", "surrogateescape")) + 1
            return sql_type.byte_width

        size = (
            sum(value_bytes(v) for v in dictionary)
            + len(indexes)
            + sum(value_bytes(v) for v in exceptions)
        )
        ordered = list(dictionary)
        return (ordered, indexes, exceptions), size

    def _decode_present(self, payload, sql_type):
        ordered, indexes, exceptions = payload
        out: list[object] = []
        exc_iter = iter(exceptions)
        for idx in indexes:
            out.append(next(exc_iter) if idx == self._ESCAPE else ordered[idx])
        return out


class DeltaCodec(Codec):
    """Delta encoding: differences from the previous value.

    ``DeltaCodec(2)`` is DELTA32K (2-byte deltas); ``DeltaCodec(1)`` is
    DELTA (1-byte deltas). Deltas outside the representable range are
    stored as full-width exceptions behind an escape marker.
    """

    decode_cost = 0.9

    def __init__(self, delta_bytes: int = 1):
        if delta_bytes not in (1, 2):
            raise StorageError(f"delta width must be 1 or 2 bytes, got {delta_bytes}")
        self._delta_bytes = delta_bytes
        limit = 2 ** (8 * delta_bytes - 1)
        self._low = -limit + 1  # reserve the minimum as the escape marker
        self._high = limit - 1
        self.name = "delta" if delta_bytes == 1 else "delta32k"

    def supports(self, sql_type: SqlType) -> bool:
        return _int_image_supported(sql_type)

    def _encode_present(self, values, sql_type):
        images = [_to_int_image(v, sql_type) for v in values]
        entries: list[tuple[bool, int]] = []  # (is_exception, number)
        size = 0
        previous = 0
        for i, image in enumerate(images):
            delta = image - previous
            if i == 0 or not self._low <= delta <= self._high:
                entries.append((True, image))
                size += self._delta_bytes + sql_type.byte_width
            else:
                entries.append((False, delta))
                size += self._delta_bytes
            previous = image
        return entries, size

    def _decode_present(self, payload, sql_type):
        out: list[object] = []
        previous = 0
        for is_exception, number in payload:
            image = number if is_exception else previous + number
            out.append(_from_int_image(image, sql_type))
            previous = image
        return out


class MostlyCodec(Codec):
    """MOSTLY8/16/32: narrow storage with full-width exceptions.

    Values whose integer image fits in the narrow width are stored
    narrowly; the rest are stored at full width behind an escape marker.
    """

    decode_cost = 0.8

    def __init__(self, narrow_bytes: int):
        if narrow_bytes not in (1, 2, 4):
            raise StorageError(f"mostly width must be 1, 2 or 4, got {narrow_bytes}")
        self._narrow = narrow_bytes
        limit = 2 ** (8 * narrow_bytes - 1)
        self._low = -limit + 1  # reserve minimum as escape marker
        self._high = limit - 1
        self.name = f"mostly{8 * narrow_bytes}"

    def supports(self, sql_type: SqlType) -> bool:
        # Pointless unless it actually narrows the type.
        return _int_image_supported(sql_type) and sql_type.byte_width > self._narrow

    def _encode_present(self, values, sql_type):
        images = [_to_int_image(v, sql_type) for v in values]
        entries: list[tuple[bool, int]] = []
        size = 0
        for image in images:
            if self._low <= image <= self._high:
                entries.append((False, image))
                size += self._narrow
            else:
                entries.append((True, image))
                size += self._narrow + sql_type.byte_width
        return entries, size

    def _decode_present(self, payload, sql_type):
        return [_from_int_image(image, sql_type) for _, image in payload]


class LzoCodec(Codec):
    """Byte-oriented general-purpose compression (LZO, simulated with zlib).

    Applied to the serialized byte image of the vector; good on text,
    unspectacular on high-entropy numerics — the behaviour the analyzer's
    choices depend on.
    """

    name = "lzo"
    decode_cost = 1.6
    _LEVEL = 1  # LZO favours speed over ratio

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        raw = _serialize_values(values, sql_type)
        compressed = zlib.compress(raw, self._LEVEL)
        return (compressed, len(values)), len(compressed)

    def _decode_present(self, payload, sql_type):
        compressed, count = payload
        raw = zlib.decompress(compressed)
        return _deserialize_values(raw, count, sql_type)


class ZstdCodec(LzoCodec):
    """Higher-ratio general-purpose compression (ZSTD, simulated with zlib -9)."""

    name = "zstd"
    decode_cost = 1.8
    _LEVEL = 9


class Text255Codec(Codec):
    """Word-dictionary encoding for text: the first 245 distinct words per
    vector are stored as one-byte indexes; other words are stored verbatim."""

    name = "text255"
    decode_cost = 1.4
    _MAX_WORDS = 245

    def supports(self, sql_type: SqlType) -> bool:
        return sql_type.is_character

    def _encode_present(self, values, sql_type):
        dictionary: dict[str, int] = {}
        size = 0
        for value in values:
            words = value.split(" ")
            for word in words:
                idx = dictionary.get(word)
                if idx is None and len(dictionary) < self._MAX_WORDS:
                    dictionary[word] = len(dictionary)
                    idx = dictionary[word]
                if idx is None:
                    size += len(word.encode("utf-8", "surrogateescape")) + 1
                else:
                    size += 1
        dict_size = sum(len(w.encode("utf-8", "surrogateescape")) + 1 for w in dictionary)
        return list(values), size + dict_size

    def _decode_present(self, payload, sql_type):
        return list(payload)


def _deserialize_values(raw: bytes, count: int, sql_type: SqlType) -> list[object]:
    import struct

    if sql_type.is_character:
        out: list[object] = []
        offset = 0
        for _ in range(count):
            (length,) = struct.unpack_from("<I", raw, offset)
            offset += 4
            out.append(raw[offset:offset + length].decode("utf-8", "surrogateescape"))
            offset += length
        return out
    if sql_type.is_float:
        return list(struct.unpack(f"<{count}d", raw))
    images = struct.unpack(f"<{count}q", raw)
    return [_from_int_image(i, sql_type) for i in images]


_ALL_CODECS: list[Codec] = [
    RawCodec(),
    RunLengthCodec(),
    ByteDictCodec(),
    DeltaCodec(1),
    DeltaCodec(2),
    MostlyCodec(1),
    MostlyCodec(2),
    MostlyCodec(4),
    LzoCodec(),
    ZstdCodec(),
    Text255Codec(),
]

_BY_NAME = {codec.name: codec for codec in _ALL_CODECS}


def all_codecs() -> list[Codec]:
    """Every codec the engine knows, in analyzer evaluation order."""
    return list(_ALL_CODECS)


def codec_by_name(name: str) -> Codec:
    """Look up a codec by its SQL ENCODE name (case-insensitive)."""
    codec = _BY_NAME.get(name.lower())
    if codec is None:
        raise StorageError(f"unknown compression encoding {name!r}")
    return codec


def applicable_codecs(sql_type: SqlType) -> list[Codec]:
    """Codecs able to encode columns of *sql_type*."""
    return [codec for codec in _ALL_CODECS if codec.supports(sql_type)]
