"""Column compression codecs.

Each codec encodes a vector of Python values (with ``None`` for NULL) into
an :class:`EncodedVector` whose ``encoded_bytes`` is the size the encoding
would occupy on disk. Values round-trip exactly: ``decode(encode(v)) == v``.

NULLs are handled uniformly: the vector carries a null bitmap (one bit per
value, accounted into ``encoded_bytes``) and codecs see only the non-null
values.

Numeric structure codecs (DELTA, MOSTLY, RUNLENGTH on numerics) operate on
an integer image of the value: integers map to themselves, dates to their
proleptic ordinal, timestamps to epoch microseconds, decimals to their
scaled integer. This mirrors how a real engine applies these encodings to
any fixed-width type.
"""

from __future__ import annotations

import datetime
import decimal
import pickle
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Sequence

from repro.datatypes.types import SqlType, TypeKind
from repro.errors import StorageError

_EPOCH = datetime.datetime(1970, 1, 1)

_HEADER_BYTES = 8  # codec id, value count, payload length

#: Codecs whose payload layout the execution engine can consume directly
#: (predicate masks on dictionary codes, aggregate folds over runs, integer
#: image comparisons) without decoding the vector first. See
#: :mod:`repro.exec.encoded`.
OPERATE_ON_COMPRESSED = frozenset(
    {"bytedict", "runlength", "mostly8", "mostly16", "mostly32"}
)


def _null_bitmap_bytes(count: int) -> int:
    return (count + 7) // 8


def _to_int_image(value: object, sql_type: SqlType) -> int:
    """Map a value of a fixed-width type to its integer image."""
    kind = sql_type.kind
    if kind is TypeKind.DATE:
        return value.toordinal()
    if kind is TypeKind.TIMESTAMP:
        delta = value - _EPOCH
        return delta.days * 86_400_000_000 + delta.seconds * 1_000_000 + delta.microseconds
    if kind is TypeKind.DECIMAL:
        return int(value.scaleb(sql_type.scale))
    if kind is TypeKind.BOOLEAN:
        return int(value)
    return value


def _from_int_image(image: int, sql_type: SqlType) -> object:
    kind = sql_type.kind
    if kind is TypeKind.DATE:
        return datetime.date.fromordinal(image)
    if kind is TypeKind.TIMESTAMP:
        return _EPOCH + datetime.timedelta(microseconds=image)
    if kind is TypeKind.DECIMAL:
        return decimal.Decimal(image).scaleb(-sql_type.scale)
    if kind is TypeKind.BOOLEAN:
        return bool(image)
    return image


def _int_image_supported(sql_type: SqlType) -> bool:
    return sql_type.is_integer or sql_type.kind in (
        TypeKind.DATE,
        TypeKind.TIMESTAMP,
        TypeKind.DECIMAL,
        TypeKind.BOOLEAN,
    )


def _serialize_values(values: Sequence[object], sql_type: SqlType) -> bytes:
    """Serialize non-null values to a byte stream for byte-oriented codecs.

    Strings are length-prefixed (4-byte little-endian) so embedded NULs and
    empty strings round-trip; fixed-width types pack to 8-byte integers or
    doubles.
    """
    import struct

    if sql_type.is_character:
        parts = []
        for v in values:
            encoded = v.encode("utf-8", "surrogateescape")
            parts.append(struct.pack("<I", len(encoded)))
            parts.append(encoded)
        return b"".join(parts)
    if sql_type.is_float:
        return struct.pack(f"<{len(values)}d", *values)
    images = [_to_int_image(v, sql_type) for v in values]
    return struct.pack(f"<{len(images)}q", *images)


@dataclass
class EncodedVector:
    """The on-disk image of one column vector.

    ``payload`` is codec-specific; ``encoded_bytes`` is the accounted disk
    size including header and null bitmap. ``values_with_nulls_count`` is
    the logical length including NULLs.
    """

    codec_name: str
    sql_type: SqlType
    count: int
    null_positions: frozenset[int]
    payload: object
    encoded_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bytes divided by encoded bytes (>1 means smaller)."""
        raw = self.count * self.sql_type.byte_width
        return raw / self.encoded_bytes if self.encoded_bytes else float("inf")


class Codec:
    """Base class for column codecs."""

    name = "raw"
    #: Relative CPU cost multiplier of decoding, used by the analyzer's
    #: tie-break and by the performance model.
    decode_cost = 1.0

    def supports(self, sql_type: SqlType) -> bool:
        """Whether this codec can encode columns of *sql_type*."""
        raise NotImplementedError

    def encode(self, values: Sequence[object], sql_type: SqlType) -> EncodedVector:
        """Encode *values* (which may contain ``None``) into a vector."""
        if not self.supports(sql_type):
            raise StorageError(f"codec {self.name} does not support {sql_type}")
        nulls = frozenset(i for i, v in enumerate(values) if v is None)
        present = [v for v in values if v is not None]
        payload, payload_bytes = self._encode_present(present, sql_type)
        total = _HEADER_BYTES + _null_bitmap_bytes(len(values)) + payload_bytes
        return EncodedVector(
            codec_name=self.name,
            sql_type=sql_type,
            count=len(values),
            null_positions=nulls,
            payload=payload,
            encoded_bytes=total,
        )

    def decode(self, vector: EncodedVector) -> list[object]:
        """Decode a vector back to the original value list."""
        present = self._decode_present(vector.payload, vector.sql_type)
        result: list[object] = []
        it = iter(present)
        for i in range(vector.count):
            result.append(None if i in vector.null_positions else next(it))
        return result

    # Subclass hooks --------------------------------------------------------

    def _encode_present(
        self, values: Sequence[object], sql_type: SqlType
    ) -> tuple[object, int]:
        raise NotImplementedError

    def _decode_present(self, payload: object, sql_type: SqlType) -> list[object]:
        raise NotImplementedError


class RawCodec(Codec):
    """No compression: every value stored at its nominal width."""

    name = "raw"
    decode_cost = 0.5

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        if sql_type.is_character:
            size = sum(len(v.encode("utf-8", "surrogateescape")) + 1 for v in values)
        else:
            size = len(values) * sql_type.byte_width
        return _typed_present(values, sql_type), size

    def _decode_present(self, payload, sql_type):
        return list(payload)


class RunLengthCodec(Codec):
    """Run-length encoding: (value, run length) pairs.

    Effective on sorted or low-cardinality columns; each run costs the
    value's width plus a 4-byte count.
    """

    name = "runlength"
    decode_cost = 0.8

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        run_values: list[object] = []
        run_counts: list[int] = []
        for v in values:
            if run_counts and run_values[-1] == v:
                run_counts[-1] += 1
            else:
                run_values.append(v)
                run_counts.append(1)
        per_value = sql_type.byte_width if not sql_type.is_character else 0
        size = 0
        for value in run_values:
            if sql_type.is_character:
                size += len(value.encode("utf-8", "surrogateescape")) + 1 + 4
            else:
                size += per_value + 4
        return (_typed_present(run_values, sql_type), array("q", run_counts)), size

    def _decode_present(self, payload, sql_type):
        run_values, run_counts = payload
        out: list[object] = []
        for value, count in zip(run_values, run_counts):
            out.extend([value] * count)
        return out


class ByteDictCodec(Codec):
    """Byte dictionary: up to 255 distinct values indexed by one byte.

    Values beyond the first 255 distinct are stored raw after an escape
    index, exactly mirroring Redshift's BYTEDICT exception handling.
    """

    name = "bytedict"
    decode_cost = 0.9
    _ESCAPE = 255
    _MAX_DICT = 255

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        dictionary: dict[object, int] = {}
        indexes: list[int] = []
        exceptions: list[object] = []
        for v in values:
            idx = dictionary.get(v)
            if idx is None and len(dictionary) < self._MAX_DICT:
                idx = len(dictionary)
                dictionary[v] = idx
            if idx is None:
                indexes.append(self._ESCAPE)
                exceptions.append(v)
            else:
                indexes.append(idx)

        def value_bytes(v: object) -> int:
            if sql_type.is_character:
                return len(v.encode("utf-8", "surrogateescape")) + 1
            return sql_type.byte_width

        size = (
            sum(value_bytes(v) for v in dictionary)
            + len(indexes)
            + sum(value_bytes(v) for v in exceptions)
        )
        ordered = list(dictionary)
        return (ordered, array("B", indexes), exceptions), size

    def _decode_present(self, payload, sql_type):
        ordered, indexes, exceptions = payload
        out: list[object] = []
        exc_iter = iter(exceptions)
        for idx in indexes:
            out.append(next(exc_iter) if idx == self._ESCAPE else ordered[idx])
        return out


class DeltaCodec(Codec):
    """Delta encoding: differences from the previous value.

    ``DeltaCodec(2)`` is DELTA32K (2-byte deltas); ``DeltaCodec(1)`` is
    DELTA (1-byte deltas). Deltas outside the representable range are
    stored as full-width exceptions behind an escape marker.
    """

    decode_cost = 0.9

    def __init__(self, delta_bytes: int = 1):
        if delta_bytes not in (1, 2):
            raise StorageError(f"delta width must be 1 or 2 bytes, got {delta_bytes}")
        self._delta_bytes = delta_bytes
        limit = 2 ** (8 * delta_bytes - 1)
        self._low = -limit + 1  # reserve the minimum as the escape marker
        self._high = limit - 1
        self.name = "delta" if delta_bytes == 1 else "delta32k"

    def supports(self, sql_type: SqlType) -> bool:
        return _int_image_supported(sql_type)

    def _encode_present(self, values, sql_type):
        images = [_to_int_image(v, sql_type) for v in values]
        flags = bytearray()  # 1 = full-width exception, 0 = narrow delta
        numbers: list[int] = []
        size = 0
        previous = 0
        for i, image in enumerate(images):
            delta = image - previous
            if i == 0 or not self._low <= delta <= self._high:
                flags.append(1)
                numbers.append(image)
                size += self._delta_bytes + sql_type.byte_width
            else:
                flags.append(0)
                numbers.append(delta)
                size += self._delta_bytes
            previous = image
        return (bytes(flags), _int_array(numbers)), size

    def _decode_present(self, payload, sql_type):
        flags, numbers = payload
        out: list[object] = []
        previous = 0
        for is_exception, number in zip(flags, numbers):
            image = number if is_exception else previous + number
            out.append(_from_int_image(image, sql_type))
            previous = image
        return out


class MostlyCodec(Codec):
    """MOSTLY8/16/32: narrow storage with full-width exceptions.

    Values whose integer image fits in the narrow width are stored
    narrowly; the rest are stored at full width behind an escape marker.
    """

    decode_cost = 0.8

    def __init__(self, narrow_bytes: int):
        if narrow_bytes not in (1, 2, 4):
            raise StorageError(f"mostly width must be 1, 2 or 4, got {narrow_bytes}")
        self._narrow = narrow_bytes
        limit = 2 ** (8 * narrow_bytes - 1)
        self._low = -limit + 1  # reserve minimum as escape marker
        self._high = limit - 1
        self.name = f"mostly{8 * narrow_bytes}"

    def supports(self, sql_type: SqlType) -> bool:
        # Pointless unless it actually narrows the type.
        return _int_image_supported(sql_type) and sql_type.byte_width > self._narrow

    def _encode_present(self, values, sql_type):
        images = [_to_int_image(v, sql_type) for v in values]
        flags = bytearray()  # 1 = full-width exception, 0 = narrow
        size = 0
        for image in images:
            if self._low <= image <= self._high:
                flags.append(0)
                size += self._narrow
            else:
                flags.append(1)
                size += self._narrow + sql_type.byte_width
        return (bytes(flags), _int_array(images)), size

    def _decode_present(self, payload, sql_type):
        _flags, images = payload
        return [_from_int_image(image, sql_type) for image in images]


class LzoCodec(Codec):
    """Byte-oriented general-purpose compression (LZO, simulated with zlib).

    Applied to the serialized byte image of the vector; good on text,
    unspectacular on high-entropy numerics — the behaviour the analyzer's
    choices depend on.
    """

    name = "lzo"
    decode_cost = 1.6
    _LEVEL = 1  # LZO favours speed over ratio

    def supports(self, sql_type: SqlType) -> bool:
        return True

    def _encode_present(self, values, sql_type):
        raw = _serialize_values(values, sql_type)
        compressed = zlib.compress(raw, self._LEVEL)
        return (compressed, len(values)), len(compressed)

    def _decode_present(self, payload, sql_type):
        compressed, count = payload
        raw = zlib.decompress(compressed)
        return _deserialize_values(raw, count, sql_type)


class ZstdCodec(LzoCodec):
    """Higher-ratio general-purpose compression (ZSTD, simulated with zlib -9)."""

    name = "zstd"
    decode_cost = 1.8
    _LEVEL = 9


class Text255Codec(Codec):
    """Word-dictionary encoding for text: the first 245 distinct words per
    vector are stored as one-byte indexes; other words are stored verbatim."""

    name = "text255"
    decode_cost = 1.4
    _MAX_WORDS = 245

    def supports(self, sql_type: SqlType) -> bool:
        return sql_type.is_character

    def _encode_present(self, values, sql_type):
        dictionary: dict[str, int] = {}
        size = 0
        for value in values:
            words = value.split(" ")
            for word in words:
                idx = dictionary.get(word)
                if idx is None and len(dictionary) < self._MAX_WORDS:
                    dictionary[word] = len(dictionary)
                    idx = dictionary[word]
                if idx is None:
                    size += len(word.encode("utf-8", "surrogateescape")) + 1
                else:
                    size += 1
        dict_size = sum(len(w.encode("utf-8", "surrogateescape")) + 1 for w in dictionary)
        return list(values), size + dict_size

    def _decode_present(self, payload, sql_type):
        return list(payload)


def _deserialize_values(raw: bytes, count: int, sql_type: SqlType) -> list[object]:
    import struct

    if sql_type.is_character:
        out: list[object] = []
        offset = 0
        for _ in range(count):
            (length,) = struct.unpack_from("<I", raw, offset)
            offset += 4
            out.append(raw[offset:offset + length].decode("utf-8", "surrogateescape"))
            offset += length
        return out
    if sql_type.is_float:
        return list(struct.unpack(f"<{count}d", raw))
    images = struct.unpack(f"<{count}q", raw)
    return [_from_int_image(i, sql_type) for i in images]


def _typed_present(values: Sequence[object], sql_type: SqlType) -> object:
    """Pack present values into a typed ``array`` where that is lossless.

    Integer columns become ``array('q')`` and float columns ``array('d')`` —
    compact, cheaply picklable across the worker fork boundary, and fast to
    expand. Anything the typed form cannot represent exactly (bools masquerading
    as ints, out-of-64-bit integers, object types) stays a plain list.
    """
    if sql_type.is_integer:
        for v in values:
            if type(v) is not int:
                return list(values)
        try:
            return array("q", values)
        except OverflowError:
            return list(values)
    if sql_type.is_float:
        for v in values:
            if type(v) is not float:
                return list(values)
        return array("d", values)
    return list(values)


def _int_array(numbers: list[int]) -> object:
    """``array('q')`` when every number fits in 64 bits, else a plain list."""
    try:
        return array("q", numbers)
    except OverflowError:
        return list(numbers)


def payload_byte_chunks(part: object):
    """Yield a canonical byte image of a codec payload for checksumming.

    Typed arrays and byte strings contribute their raw bytes; residual
    object containers (dictionary entries, exception lists, character runs)
    are pickled once as a unit — never value-by-value.
    """
    if isinstance(part, array):
        yield part.typecode.encode("ascii")
        yield part.tobytes()
    elif isinstance(part, (bytes, bytearray)):
        yield bytes(part)
    elif isinstance(part, tuple):
        for sub in part:
            yield from payload_byte_chunks(sub)
    else:
        yield pickle.dumps(part, protocol=4)


def corrupt_payload(vector: EncodedVector) -> None:
    """Flip bits inside *vector*'s encoded payload in place.

    Used by ``Block.corrupt`` (tests and fault drills) to simulate media
    corruption at the storage layer; the damage must change the payload's
    byte image so checksum verification catches it before any decode.
    """
    mutated = _corrupt_part(vector.payload)
    if mutated is not None:
        vector.payload = mutated
        return
    # Nothing byte-bearing to damage (e.g. an all-NULL or empty vector):
    # corrupt the null bitmap instead.
    if vector.count:
        nulls = set(vector.null_positions)
        nulls.symmetric_difference_update({0})
        vector.null_positions = frozenset(nulls)
    else:
        vector.count = 1
        vector.null_positions = frozenset({0})


def _corrupt_part(part: object) -> object | None:
    """Damage one element of *part*; return the corrupted replacement
    (possibly *part* itself, mutated) or ``None`` if nothing was touched."""
    if isinstance(part, array) and len(part):
        if part.typecode == "d":
            part[0] = -part[0] if part[0] else 1.0
        else:
            part[0] ^= 1
        return part
    if isinstance(part, (bytes, bytearray)) and len(part):
        blob = bytearray(part)
        blob[0] ^= 1
        return bytes(blob)
    if isinstance(part, tuple):
        parts = list(part)
        # Prefer value-bearing parts (arrays, lists) over flag/byte streams
        # so the damage shows up in decoded output, not just the checksum.
        order = sorted(
            range(len(parts)),
            key=lambda i: isinstance(parts[i], (bytes, bytearray)),
        )
        for i in order:
            mutated = _corrupt_part(parts[i])
            if mutated is not None:
                parts[i] = mutated
                return tuple(parts)
        return None
    if isinstance(part, list) and part:
        part[0] = _corrupt_value(part[0])
        return part
    return None


def _corrupt_value(value: object) -> object:
    if value is None:
        return "☠CORRUPTED"
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, float):
        return -value if value else 1.0
    if isinstance(value, str):
        return value + "☠" if value else "☠"
    return "☠CORRUPTED"


_ALL_CODECS: list[Codec] = [
    RawCodec(),
    RunLengthCodec(),
    ByteDictCodec(),
    DeltaCodec(1),
    DeltaCodec(2),
    MostlyCodec(1),
    MostlyCodec(2),
    MostlyCodec(4),
    LzoCodec(),
    ZstdCodec(),
    Text255Codec(),
]

_BY_NAME = {codec.name: codec for codec in _ALL_CODECS}


def all_codecs() -> list[Codec]:
    """Every codec the engine knows, in analyzer evaluation order."""
    return list(_ALL_CODECS)


def codec_by_name(name: str) -> Codec:
    """Look up a codec by its SQL ENCODE name (case-insensitive)."""
    codec = _BY_NAME.get(name.lower())
    if codec is None:
        raise StorageError(f"unknown compression encoding {name!r}")
    return codec


def applicable_codecs(sql_type: SqlType) -> list[Codec]:
    """Codecs able to encode columns of *sql_type*."""
    return [codec for codec in _ALL_CODECS if codec.supports(sql_type)]
