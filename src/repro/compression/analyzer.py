"""Automatic compression selection by data sampling.

This is the paper's canonical "dusty knob": on COPY, the engine samples the
incoming data, trial-encodes each column with every applicable codec, and
picks the smallest encoding (with a decode-cost tie-break), so the user
never has to choose an ENCODE clause. The same machinery backs an explicit
``ANALYZE COMPRESSION``-style API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.compression.codecs import Codec, applicable_codecs, codec_by_name
from repro.datatypes.types import SqlType
from repro.util.rng import DeterministicRng

#: Default number of values sampled per column, mirroring the modest sample
#: Redshift's COMPUPDATE takes rather than scanning the full load.
DEFAULT_SAMPLE_SIZE = 2_000

#: A codec must beat RAW by at least this ratio to be preferred; below the
#: threshold the analyzer keeps RAW for its cheaper decode path.
MIN_IMPROVEMENT = 1.05


@dataclass
class CodecTrial:
    """Result of trial-encoding a sample with one codec."""

    codec_name: str
    encoded_bytes: int
    ratio_vs_raw: float
    decode_cost: float


@dataclass
class ColumnAnalysis:
    """Outcome of analyzing one column: the chosen codec and all trials."""

    column_name: str
    sql_type: SqlType
    chosen_codec: str
    sample_size: int
    trials: list[CodecTrial] = field(default_factory=list)

    def trial(self, codec_name: str) -> CodecTrial:
        """Look up the trial for *codec_name* (raises KeyError if absent)."""
        for t in self.trials:
            if t.codec_name == codec_name:
                return t
        raise KeyError(codec_name)

    @property
    def best_possible_bytes(self) -> int:
        """Smallest encoded size over all trials (the oracle choice)."""
        return min(t.encoded_bytes for t in self.trials)

    @property
    def regret(self) -> float:
        """How much larger the chosen encoding is than the oracle, as a ratio.

        1.0 means the analyzer picked the optimum; 1.10 means the pick is
        10% larger than the best possible codec on the sample.
        """
        return self.trial(self.chosen_codec).encoded_bytes / self.best_possible_bytes


def analyze_column(
    column_name: str,
    sql_type: SqlType,
    values: Sequence[object],
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    rng: DeterministicRng | None = None,
) -> ColumnAnalysis:
    """Pick the best codec for one column by trial-encoding a sample.

    Sampling is contiguous-prefix plus a random tail slice: delta and
    run-length codecs are sensitive to value *order*, so the sample must
    preserve local ordering rather than shuffle individual values.
    """
    sample = _take_sample(values, sample_size, rng)
    raw_trial_bytes: int | None = None
    trials: list[CodecTrial] = []
    for codec in applicable_codecs(sql_type):
        encoded = codec.encode(sample, sql_type)
        if codec.name == "raw":
            raw_trial_bytes = encoded.encoded_bytes
        trials.append(
            CodecTrial(
                codec_name=codec.name,
                encoded_bytes=encoded.encoded_bytes,
                ratio_vs_raw=0.0,  # filled below once raw size is known
                decode_cost=codec.decode_cost,
            )
        )
    assert raw_trial_bytes is not None  # RawCodec supports every type
    for trial in trials:
        trial.ratio_vs_raw = raw_trial_bytes / trial.encoded_bytes

    chosen = _choose(trials, raw_trial_bytes)
    return ColumnAnalysis(
        column_name=column_name,
        sql_type=sql_type,
        chosen_codec=chosen,
        sample_size=len(sample),
        trials=trials,
    )


def _take_sample(
    values: Sequence[object],
    sample_size: int,
    rng: DeterministicRng | None,
) -> list[object]:
    if len(values) <= sample_size:
        return list(values)
    head = sample_size // 2
    tail = sample_size - head
    rng = rng or DeterministicRng("compression-analyzer")
    start = rng.randrange(head, len(values) - tail + 1)
    return list(values[:head]) + list(values[start:start + tail])


def _choose(trials: Sequence[CodecTrial], raw_bytes: int) -> str:
    """Smallest encoding wins if it beats RAW by MIN_IMPROVEMENT; ties go to
    the cheaper decoder."""
    best = min(trials, key=lambda t: (t.encoded_bytes, t.decode_cost))
    if raw_bytes / best.encoded_bytes < MIN_IMPROVEMENT:
        return "raw"
    return best.codec_name


class CompressionAnalyzer:
    """Analyzer over a whole table load: one :class:`ColumnAnalysis` per column.

    Usage::

        analyzer = CompressionAnalyzer(sample_size=1000)
        choices = analyzer.analyze(schema_columns, column_vectors)
        choices["price"].chosen_codec  # e.g. 'mostly16'
    """

    def __init__(
        self,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        rng: DeterministicRng | None = None,
    ):
        if sample_size < 1:
            raise ValueError(f"sample_size must be positive, got {sample_size}")
        self._sample_size = sample_size
        self._rng = rng or DeterministicRng("compression-analyzer")

    def analyze(
        self,
        columns: Sequence[tuple[str, SqlType]],
        vectors: Sequence[Sequence[object]],
    ) -> dict[str, ColumnAnalysis]:
        """Analyze a set of parallel column vectors; returns name → analysis."""
        if len(columns) != len(vectors):
            raise ValueError(
                f"{len(columns)} columns but {len(vectors)} value vectors"
            )
        result: dict[str, ColumnAnalysis] = {}
        for (name, sql_type), values in zip(columns, vectors):
            result[name] = analyze_column(
                name, sql_type, values, self._sample_size, self._rng.child(name)
            )
        return result

    @staticmethod
    def codec_for(analysis: ColumnAnalysis) -> Codec:
        """Materialize the codec object an analysis selected."""
        return codec_by_name(analysis.chosen_codec)
