"""Per-column compression codecs and automatic encoding selection.

Amazon Redshift stores each column in fixed-size blocks, each encoded with
one of a family of codecs (RAW, BYTEDICT, DELTA, DELTA32K, LZO, MOSTLY8/16/32,
RUNLENGTH, TEXT255). The paper's "simplicity" thesis is that the *system*
picks the codec by sampling loaded data, so the knob stays "dusty". This
package implements the codecs and the sampling analyzer.

The LZO codec is simulated with zlib (see DESIGN.md substitution table):
both are byte-oriented general-purpose compressors and only the relative
behaviour (good on text, mediocre on random numerics, no structure
exploitation) matters for the paper's claims.
"""

from repro.compression.codecs import (
    Codec,
    EncodedVector,
    RawCodec,
    RunLengthCodec,
    ByteDictCodec,
    DeltaCodec,
    MostlyCodec,
    LzoCodec,
    ZstdCodec,
    Text255Codec,
    codec_by_name,
    all_codecs,
    applicable_codecs,
)
from repro.compression.analyzer import (
    CompressionAnalyzer,
    ColumnAnalysis,
    analyze_column,
)

__all__ = [
    "Codec", "EncodedVector",
    "RawCodec", "RunLengthCodec", "ByteDictCodec", "DeltaCodec",
    "MostlyCodec", "LzoCodec", "ZstdCodec", "Text255Codec",
    "codec_by_name", "all_codecs", "applicable_codecs",
    "CompressionAnalyzer", "ColumnAnalysis", "analyze_column",
]
