"""Bounded in-memory event store backing the system tables.

Rows are plain tuples appended per table into a fixed-size ring: when a
table reaches ``max_rows_per_table`` the oldest rows fall off (STL tables
in real Redshift similarly retain "two to five days" of log history, not
forever). Eviction is purely count-based, so retention is deterministic —
the same sequence of appends always leaves the same rows regardless of
wall-clock timing.

All operations take one store-wide lock: concurrent sessions append
telemetry from their own threads, and iterating a deque (``rows``) while
another thread appends raises "deque mutated during iteration".
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

#: Default per-table retention. Small enough that a long-lived cluster
#: cannot grow without bound, large enough that tests and examples never
#: notice eviction unless they ask for it.
DEFAULT_MAX_ROWS = 10_000


class SystemEventStore:
    """Per-table bounded FIFO of telemetry rows."""

    def __init__(self, max_rows_per_table: int = DEFAULT_MAX_ROWS):
        if max_rows_per_table < 1:
            raise ValueError(
                f"max_rows_per_table must be positive, got {max_rows_per_table}"
            )
        self.max_rows_per_table = max_rows_per_table
        self._tables: dict[str, deque[tuple]] = {}
        self._lock = threading.Lock()

    def _ring(self, table: str) -> deque[tuple]:
        ring = self._tables.get(table)
        if ring is None:
            ring = deque(maxlen=self.max_rows_per_table)
            self._tables[table] = ring
        return ring

    def append(self, table: str, row: Iterable[object]) -> None:
        """Append one row; the oldest row is evicted once full."""
        with self._lock:
            self._ring(table).append(tuple(row))

    def extend(self, table: str, rows: Iterable[Iterable[object]]) -> None:
        with self._lock:
            ring = self._ring(table)
            for row in rows:
                ring.append(tuple(row))

    def replace(self, table: str, rows: Iterable[Iterable[object]]) -> None:
        """Replace a table's contents (STV tables are snapshots, not logs)."""
        with self._lock:
            ring = self._ring(table)
            ring.clear()
            for row in rows:
                ring.append(tuple(row))

    def rows(self, table: str) -> list[tuple]:
        with self._lock:
            return list(self._tables.get(table, ()))

    def row_count(self, table: str) -> int:
        with self._lock:
            return len(self._tables.get(table, ()))

    def clear(self, table: str | None = None) -> None:
        with self._lock:
            if table is None:
                self._tables.clear()
            else:
                self._tables.pop(table, None)
