"""System tables: SQL-queryable telemetry (STL/STV/SVL).

The paper's §4–5 argument is that operators and users diagnose the fleet
through built-in telemetry instead of shell access. Real Redshift exposes
that telemetry as system tables queryable with ordinary SQL; this package
reproduces the design: an in-memory, bounded-retention event store fed by
instrumentation hooks in the session, executors and WLM, materialized as
virtual tables the binder and planner resolve like any user relation.
"""

from repro.systables.store import SystemEventStore
from repro.systables.tables import (
    SYSTEM_TABLE_COLUMNS,
    SystemTables,
)

__all__ = [
    "SystemEventStore",
    "SystemTables",
    "SYSTEM_TABLE_COLUMNS",
]
