"""System table schemas, recording API and virtual-table providers.

One :class:`SystemTables` instance rides on each cluster. It registers the
schemas below into the cluster catalog (so the binder and planner resolve
them like ordinary relations), offers the recording API the session, WLM
and executors call, and materializes rows on demand:

- ``stl_query`` — one row per completed statement (log).
- ``svl_query_summary`` — one row per executed plan step of a query (log),
  fed by the volcano/scan instrumentation hooks.
- ``stv_wlm_query_state`` — per-query admission outcomes of the most
  recent WLM simulation (snapshot: replaced each run).
- ``stl_wlm_rule_action`` — shed/timeout events from WLM admission (log).
- ``stv_blocklist`` — per-slice block/column/encoding/size, computed live
  from slice storage (snapshot: never stored).
- ``stl_fault_events`` — the fault injector's event log as a table,
  computed live from the attached injector.
- ``stv_slice_exec`` — per-slice worker accounting of the most recent
  parallel-executor query (snapshot: replaced each parallel run).
- ``stv_query_spill`` — per-operator spill activity of the most recent
  memory-governed query that spilled (snapshot: replaced per such query).
- ``svl_scan_encoding`` — per-codec operate-on-compressed counters of the
  most recent encoded scan (snapshot: replaced per such query).
- ``stv_sessions`` — one row per live server session, computed live from
  the attached :class:`~repro.server.ClusterServer` (empty when no
  server is running).
- ``stl_connection_log`` — connect/disconnect events of server sessions
  (log).

Timestamps come from a bound :class:`~repro.cloud.simclock.SimClock` when
the control plane manages the cluster (deterministic), and from wall
clock otherwise.
"""

from __future__ import annotations

import itertools
import time as _time

from repro.datatypes.types import BIGINT, DOUBLE, INTEGER, varchar_type
from repro.engine.catalog import ColumnInfo, TableInfo
from repro.engine.wlm import AdmissionStatus

#: table name -> [(column name, SqlType)]
SYSTEM_TABLE_COLUMNS: dict[str, list[tuple[str, object]]] = {
    "stl_query": [
        ("query", INTEGER),
        ("querytxt", varchar_type(4096)),
        ("queue", varchar_type(64)),
        ("state", varchar_type(16)),       # 'success' | 'error'
        ("error", varchar_type(1024)),
        ("starttime", DOUBLE),
        ("endtime", DOUBLE),
        ("elapsed_us", BIGINT),
        ("executor", varchar_type(16)),
        ("rows", BIGINT),
        ("segment_retries", INTEGER),
        ("session_id", INTEGER),
        ("user_name", varchar_type(64)),
        ("result_fingerprint", varchar_type(64)),
        ("routed_to", varchar_type(16)),   # 'main' | 'burst'
    ],
    "stv_sessions": [
        ("session_id", INTEGER),
        ("user_name", varchar_type(64)),
        ("queue", varchar_type(64)),
        ("state", varchar_type(16)),       # 'idle' | 'busy' | 'draining'
        ("connected_at", DOUBLE),
        ("queries", BIGINT),
        ("errors", BIGINT),
        ("queue_depth", INTEGER),
    ],
    "stv_burst_clusters": [
        ("cluster_id", varchar_type(128)),
        ("state", varchar_type(16)),       # 'active' | 'retired'
        ("snapshot_id", varchar_type(64)),
        ("provisioned_at", DOUBLE),
        ("last_routed_at", DOUBLE),
        ("routed_queries", BIGINT),
        ("fallbacks", BIGINT),
        ("stale_rejects", BIGINT),
    ],
    "stl_connection_log": [
        ("recorded_at", DOUBLE),
        ("event", varchar_type(32)),       # 'connect' | 'disconnect'
        ("session_id", INTEGER),
        ("user_name", varchar_type(64)),
        ("queue", varchar_type(64)),
        ("detail", varchar_type(256)),
    ],
    "svl_query_summary": [
        ("query", INTEGER),
        ("step", INTEGER),
        ("operator", varchar_type(128)),
        ("rows", BIGINT),
        ("bytes", BIGINT),
        ("elapsed_us", BIGINT),
        ("blocks_read", BIGINT),
        ("blocks_skipped", BIGINT),
        ("cache_hits", BIGINT),
        ("cache_misses", BIGINT),
        ("encoded_batches", BIGINT),
        ("decode_bytes_avoided", BIGINT),
        ("workers", INTEGER),
        ("morsels", INTEGER),
        ("result_cache_hit", INTEGER),
        ("spilled_bytes", BIGINT),
        ("spill_partitions", INTEGER),
        ("est_rows", DOUBLE),
        ("misest_factor", DOUBLE),
    ],
    "svl_table_stats": [
        ("table_name", varchar_type(128)),
        ("row_count", BIGINT),
        ("total_bytes", BIGINT),
        ("stale", INTEGER),
    ],
    "svl_column_stats": [
        ("table_name", varchar_type(128)),
        ("column_name", varchar_type(128)),
        ("low", varchar_type(256)),
        ("high", varchar_type(256)),
        ("ndv", BIGINT),
        ("null_fraction", DOUBLE),
    ],
    "stv_query_spill": [
        ("query", INTEGER),
        ("step", INTEGER),
        ("operator", varchar_type(128)),
        ("disk", varchar_type(64)),
        ("partitions", INTEGER),
        ("bytes_written", BIGINT),
        ("bytes_read", BIGINT),
    ],
    "svl_scan_encoding": [
        ("query", INTEGER),
        ("encoding", varchar_type(32)),
        ("blocks", BIGINT),
        ("values_scanned", BIGINT),
        ("bytes_avoided", BIGINT),
        ("masks", BIGINT),
        ("folds", BIGINT),
        ("gathers", BIGINT),
    ],
    "stv_slice_exec": [
        ("query", INTEGER),
        ("slice", varchar_type(32)),
        ("node", varchar_type(32)),
        ("mode", varchar_type(16)),        # 'fork' | 'thread' | 'serial'
        ("morsels", INTEGER),
        ("rows", BIGINT),
        ("scanned_rows", BIGINT),
        ("elapsed_us", BIGINT),
        ("crashes", INTEGER),
    ],
    "stv_wlm_query_state": [
        ("query", INTEGER),
        ("queue", varchar_type(64)),
        ("state", varchar_type(16)),       # AdmissionStatus values
        ("arrival_s", DOUBLE),
        ("started_s", DOUBLE),
        ("wait_s", DOUBLE),
        ("exec_s", DOUBLE),
        ("peak_queue_depth", INTEGER),
        ("label", varchar_type(128)),
    ],
    "stl_wlm_rule_action": [
        ("recorded_at", DOUBLE),
        ("queue", varchar_type(64)),
        ("action", varchar_type(16)),      # 'shed' | 'timeout'
        ("label", varchar_type(128)),
        ("wait_s", DOUBLE),
    ],
    "stv_blocklist": [
        ("slice", varchar_type(32)),
        ("tbl", varchar_type(128)),
        ("col", varchar_type(128)),
        ("blocknum", INTEGER),
        ("num_values", INTEGER),
        ("encoding", varchar_type(32)),
        ("size_bytes", BIGINT),
        ("minvalue", varchar_type(256)),
        ("maxvalue", varchar_type(256)),
    ],
    "stl_fault_events": [
        ("at_s", DOUBLE),
        ("kind", varchar_type(64)),
        ("target", varchar_type(128)),
        ("detail", varchar_type(512)),
    ],
    "stv_block_cache": [
        ("capacity", INTEGER),
        ("entries", INTEGER),
        ("hits", BIGINT),
        ("misses", BIGINT),
        ("evictions", BIGINT),
        ("invalidations", BIGINT),
    ],
    "stv_result_cache": [
        ("key", varchar_type(64)),
        ("querytxt", varchar_type(4096)),
        ("executor", varchar_type(16)),
        ("rows", BIGINT),
        ("tables", varchar_type(256)),
        ("hits", BIGINT),
        ("valid", INTEGER),
    ],
    "svl_compile_cache": [
        ("kind", varchar_type(16)),        # 'pipeline' | 'kernel'
        ("signature", varchar_type(64)),
        ("mode", varchar_type(16)),
        ("hits", BIGINT),
    ],
}

#: Tables whose rows live in the event store (the rest are computed live).
_STORED_TABLES = frozenset(
    (
        "stl_query",
        "svl_query_summary",
        "stv_wlm_query_state",
        "stl_wlm_rule_action",
        "stv_slice_exec",
        "stv_query_spill",
        "svl_scan_encoding",
        "stl_connection_log",
    )
)

_RULE_ACTIONS = {
    AdmissionStatus.SHED: "shed",
    AdmissionStatus.TIMED_OUT: "timeout",
}


def _misestimation_factor(actual: int, estimated: float) -> float:
    """How far off the planner's row estimate was, as a >=1 ratio.

    ``max(svl_query_summary.misest_factor)`` per query names the worst
    operator. Both sides are floored at one row so empty results and
    unestimated synthetic steps do not divide by zero.
    """
    actual_f = max(1.0, float(actual))
    estimated_f = max(1.0, float(estimated))
    return max(actual_f, estimated_f) / min(actual_f, estimated_f)


def _table_info(name: str) -> TableInfo:
    return TableInfo(
        name=name,
        columns=[
            ColumnInfo(name=column, sql_type=sql_type)
            for column, sql_type in SYSTEM_TABLE_COLUMNS[name]
        ],
    )


class SystemTables:
    """Per-cluster system-table facade: schemas, recording, providers."""

    def __init__(self, cluster, max_rows_per_table: int | None = None):
        from repro.systables.store import DEFAULT_MAX_ROWS, SystemEventStore

        self._cluster = cluster
        self.store = SystemEventStore(max_rows_per_table or DEFAULT_MAX_ROWS)
        self._clock = None
        self._query_ids = itertools.count(1)
        for name in SYSTEM_TABLE_COLUMNS:
            cluster.catalog.register_system_table(_table_info(name))

    # ---- time ----------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Stamp rows from *clock* (a SimClock) instead of wall time."""
        self._clock = clock

    @property
    def now(self) -> float:
        if self._clock is not None:
            return self._clock.now
        return _time.time()

    # ---- recording: queries ---------------------------------------------------

    def next_query_id(self) -> int:
        return next(self._query_ids)

    def record_query(
        self,
        query_id: int,
        text: str,
        state: str,
        started: float,
        ended: float,
        elapsed_us: int,
        queue: str = "default",
        error: str | None = None,
        executor: str | None = None,
        rows: int = 0,
        segment_retries: int = 0,
        session_id: int = 0,
        user_name: str = "",
        result_fingerprint: str = "",
        routed_to: str = "main",
    ) -> None:
        self.store.append(
            "stl_query",
            (
                query_id,
                text[:4096],
                queue,
                state,
                error,
                started,
                ended,
                elapsed_us,
                executor,
                rows,
                segment_retries,
                session_id,
                user_name,
                result_fingerprint,
                routed_to,
            ),
        )

    def record_connection(
        self,
        event: str,
        session_id: int,
        user_name: str,
        queue: str,
        detail: str = "",
    ) -> None:
        """Append one stl_connection_log row (server connect/disconnect)."""
        self.store.append(
            "stl_connection_log",
            (self.now, event, session_id, user_name, queue, detail[:256]),
        )

    def record_query_summary(
        self, query_id: int, operators, result_cache_hit: bool = False
    ) -> None:
        """One svl_query_summary row per executed plan step.

        *operators* are :class:`repro.exec.context.OperatorStat` objects.
        A result-cache hit records its one synthetic "Result Cache" step
        with ``result_cache_hit`` set on the row.
        """
        for op in sorted(operators, key=lambda o: o.step):
            self.store.append(
                "svl_query_summary",
                (
                    query_id,
                    op.step,
                    op.operator,
                    op.rows,
                    op.bytes_read,
                    op.elapsed_us,
                    op.blocks_read,
                    op.blocks_skipped,
                    op.cache_hits,
                    op.cache_misses,
                    op.encoded_batches,
                    op.decode_bytes_avoided,
                    op.workers,
                    op.morsels,
                    int(result_cache_hit),
                    op.spilled_bytes,
                    op.spill_partitions,
                    float(op.est_rows),
                    _misestimation_factor(op.rows, op.est_rows),
                ),
            )

    def record_scan_encoding(self, query_id: int, encoding: dict) -> None:
        """Snapshot the latest encoded query's per-codec scan counters
        (svl_scan_encoding; *encoding* is ``ScanStats.encoding`` — codec
        name → count vector indexed by ``repro.exec.encoded.ENC_*``)."""
        from repro.exec.encoded import (
            ENC_BLOCKS,
            ENC_BYTES_AVOIDED,
            ENC_FOLDS,
            ENC_GATHERS,
            ENC_MASKS,
            ENC_VALUES,
        )

        self.store.replace(
            "svl_scan_encoding",
            [
                (
                    query_id,
                    codec,
                    counts[ENC_BLOCKS],
                    counts[ENC_VALUES],
                    counts[ENC_BYTES_AVOIDED],
                    counts[ENC_MASKS],
                    counts[ENC_FOLDS],
                    counts[ENC_GATHERS],
                )
                for codec, counts in sorted(encoding.items())
            ],
        )

    def record_slice_exec(self, query_id: int, slice_execs) -> None:
        """Snapshot per-slice worker accounting of the latest parallel
        query (stv_slice_exec; *slice_execs* are
        :class:`repro.exec.context.SliceExec` objects)."""
        self.store.replace(
            "stv_slice_exec",
            [
                (
                    query_id,
                    s.slice_id,
                    s.node_id,
                    s.mode,
                    s.morsels,
                    s.rows,
                    s.scanned_rows,
                    s.elapsed_us,
                    s.crashes,
                )
                for s in slice_execs
            ],
        )

    def record_query_spill(self, query_id: int, events) -> None:
        """Snapshot the per-operator spill activity of the latest
        spilling query (stv_query_spill; *events* are
        :class:`repro.exec.context.SpillEvent` objects)."""
        self.store.replace(
            "stv_query_spill",
            [
                (
                    query_id,
                    e.step,
                    e.operator,
                    e.disk_id,
                    e.partitions,
                    e.bytes_written,
                    e.bytes_read,
                )
                for e in events
            ],
        )

    # ---- recording: WLM -------------------------------------------------------

    def record_wlm(self, reports: dict) -> None:
        """Record one WLM admission simulation.

        ``stv_wlm_query_state`` is a snapshot of the latest run (replaced);
        shed/timeout events append to ``stl_wlm_rule_action``.
        """
        state_rows: list[tuple] = []
        query_seq = 0
        for name in sorted(reports):
            report = reports[name]
            depth = report.max_queue_depth
            for outcome in sorted(
                report.outcomes, key=lambda o: o.arrival.arrival_s
            ):
                query_seq += 1
                state_rows.append(
                    (
                        query_seq,
                        name,
                        outcome.status.value,
                        outcome.arrival.arrival_s,
                        outcome.started_s,
                        outcome.wait_s,
                        outcome.finished_s - outcome.started_s,
                        depth,
                        outcome.arrival.label,
                    )
                )
                action = _RULE_ACTIONS.get(outcome.status)
                if action is not None:
                    self.store.append(
                        "stl_wlm_rule_action",
                        (
                            outcome.started_s,
                            name,
                            action,
                            outcome.arrival.label,
                            outcome.wait_s,
                        ),
                    )
        self.store.replace("stv_wlm_query_state", state_rows)

    # ---- providers ------------------------------------------------------------

    def rows(self, name: str) -> list[tuple]:
        """Materialize the current rows of one system table."""
        if name in _STORED_TABLES:
            return self.store.rows(name)
        if name == "stv_blocklist":
            return self._blocklist_rows()
        if name == "stl_fault_events":
            return self._fault_rows()
        if name == "stv_block_cache":
            return self._block_cache_rows()
        if name == "stv_result_cache":
            return self._result_cache_rows()
        if name == "svl_compile_cache":
            return self._compile_cache_rows()
        if name == "stv_sessions":
            return self._session_rows()
        if name == "stv_burst_clusters":
            return self._burst_cluster_rows()
        if name == "svl_table_stats":
            return self._table_stats_rows()
        if name == "svl_column_stats":
            return self._column_stats_rows()
        raise KeyError(f"unknown system table {name!r}")

    def _table_stats_rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for name in self._cluster.catalog.table_names():
            stats = self._cluster.catalog.table(name).statistics
            rows.append(
                (name, stats.row_count, stats.total_bytes, int(stats.stale))
            )
        return rows

    def _column_stats_rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for name in self._cluster.catalog.table_names():
            table = self._cluster.catalog.table(name)
            for column in table.columns:
                col = table.statistics.columns.get(column.name)
                if col is None:
                    continue  # never analyzed
                rows.append(
                    (
                        name,
                        column.name,
                        None if col.low is None else str(col.low),
                        None if col.high is None else str(col.high),
                        col.distinct_count,
                        col.null_fraction,
                    )
                )
        return rows

    def _session_rows(self) -> list[tuple]:
        server = getattr(self._cluster, "server", None)
        if server is None:
            return []
        return server.session_rows()

    def _burst_cluster_rows(self) -> list[tuple]:
        server = getattr(self._cluster, "server", None)
        if server is None:
            return []
        return server.burst_rows()

    def _result_cache_rows(self) -> list[tuple]:
        cache = getattr(self._cluster, "result_cache", None)
        if cache is None:
            return []
        return [
            (
                entry.key,
                entry.sql[:4096],
                entry.executor,
                len(entry.rows),
                ",".join(entry.tables)[:256],
                entry.hits,
                int(entry.valid()),
            )
            for entry in cache.entries()
        ]

    def _compile_cache_rows(self) -> list[tuple]:
        from repro.exec.batch import kernel_cache_rows

        rows: list[tuple] = []
        cache = getattr(self._cluster, "segment_cache", None)
        if cache is not None:
            rows.extend(
                ("pipeline", entry.signature, entry.mode, entry.hits)
                for entry in cache.entries()
            )
        # Kernel code objects are process-wide (shared by every cluster
        # in the process), unlike the per-cluster pipeline cache.
        rows.extend(
            ("kernel", signature, "", hits)
            for signature, hits in kernel_cache_rows()
        )
        return rows

    def _block_cache_rows(self) -> list[tuple]:
        cache = getattr(self._cluster, "block_cache", None)
        if cache is None:
            return []
        return [
            (
                cache.capacity,
                len(cache),
                cache.hits,
                cache.misses,
                cache.evictions,
                cache.invalidations,
            )
        ]

    def _blocklist_rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for store in self._cluster.slice_stores:
            for shard in store.shards.values():
                for column_name in shard.column_names:
                    chain = shard.chain(column_name)
                    for blocknum, block in enumerate(chain.blocks):
                        zone = block.zone_map
                        rows.append(
                            (
                                store.slice_id,
                                shard.table_name,
                                column_name,
                                blocknum,
                                block.count,
                                block.codec_name,
                                block.encoded_bytes,
                                None if zone.low is None else str(zone.low),
                                None if zone.high is None else str(zone.high),
                            )
                        )
        return rows

    def _fault_rows(self) -> list[tuple]:
        injector = self._cluster.fault_injector
        if injector is None:
            return []
        return [
            (event.at_s, event.kind, event.target, event.detail)
            for event in injector.log
        ]
