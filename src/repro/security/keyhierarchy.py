"""The three-level encryption key hierarchy.

"We generate block-specific encryption keys (to avoid injection attacks
from one block to another), wrap these with cluster-specific keys (to
avoid injection attacks from one cluster to another), and further wrap
these with a master key ... Key rotation is straightforward as it only
involves re-encrypting block keys or cluster keys, not the entire
database. Repudiation is equally straightforward, as it only involves
losing access to the customer's key" (paper §3.2).

The hierarchy's observable properties — what each rotation re-encrypts,
and what repudiation makes unreadable — are implemented exactly; the
cipher is the simulation-grade keyed stream from :mod:`repro.cloud.kms`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.kms import SimKMS, WrappedKey, xor_cipher
from repro.errors import KmsError


@dataclass(frozen=True)
class EncryptedBlob:
    """Block data encrypted under that block's own key."""

    block_id: str
    ciphertext: bytes


class ClusterKeyHierarchy:
    """Per-cluster key management: master → cluster key → block keys."""

    def __init__(self, kms: SimKMS, master_key_id: str, cluster_id: str):
        self._kms = kms
        self.master_key_id = master_key_id
        self.cluster_id = cluster_id
        # The cluster key is a data key wrapped by the customer's master.
        self._cluster_key, self._wrapped_cluster_key = kms.generate_data_key(
            master_key_id
        )
        #: block id -> block key encrypted under the cluster key
        self._wrapped_block_keys: dict[str, bytes] = {}
        self.block_key_rotations = 0
        self.cluster_key_rotations = 0

    # ---- internals -----------------------------------------------------------

    def _cluster_key_plaintext(self) -> bytes:
        """Unwrap the cluster key through KMS (fails after repudiation)."""
        return self._kms.unwrap(self._wrapped_cluster_key)

    def _block_key(self, block_id: str, create: bool) -> bytes:
        cluster_key = self._cluster_key_plaintext()
        wrapped = self._wrapped_block_keys.get(block_id)
        if wrapped is None:
            if not create:
                raise KmsError(f"no key registered for block {block_id!r}")
            import hashlib

            # Derive per-block keys from the cluster key + block id; stored
            # wrapped so cluster-key rotation can re-encrypt them.
            plaintext = hashlib.sha256(
                cluster_key + block_id.encode("utf-8")
            ).digest()
            self._wrapped_block_keys[block_id] = xor_cipher(
                cluster_key, plaintext
            )
            return plaintext
        return xor_cipher(cluster_key, wrapped)

    # ---- data path ---------------------------------------------------------------

    def encrypt_block(self, block_id: str, data: bytes) -> EncryptedBlob:
        key = self._block_key(block_id, create=True)
        return EncryptedBlob(block_id=block_id, ciphertext=xor_cipher(key, data))

    def decrypt_block(self, blob: EncryptedBlob) -> bytes:
        key = self._block_key(blob.block_id, create=False)
        return xor_cipher(key, blob.ciphertext)

    # ---- rotation / repudiation -----------------------------------------------------

    def rotate_cluster_key(self) -> None:
        """Replace the cluster key: re-wraps every block key (O(#blocks)),
        never touches block data."""
        old_cluster_key = self._cluster_key_plaintext()
        new_key, new_wrapped = self._kms.generate_data_key(self.master_key_id)
        rewrapped: dict[str, bytes] = {}
        for block_id, wrapped in self._wrapped_block_keys.items():
            plaintext = xor_cipher(old_cluster_key, wrapped)
            rewrapped[block_id] = xor_cipher(new_key, plaintext)
            self.block_key_rotations += 1
        self._wrapped_block_keys = rewrapped
        self._cluster_key = new_key
        self._wrapped_cluster_key = new_wrapped
        self.cluster_key_rotations += 1

    def rotate_master_key(self) -> None:
        """Master rotation re-wraps only the cluster key (O(1))."""
        self._kms.rotate_master_key(self.master_key_id)
        self._wrapped_cluster_key = self._kms.rewrap(self._wrapped_cluster_key)

    @property
    def block_key_count(self) -> int:
        return len(self._wrapped_block_keys)
