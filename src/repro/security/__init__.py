"""Encryption: the block/cluster/master key hierarchy of §3.2."""

from repro.security.keyhierarchy import ClusterKeyHierarchy, EncryptedBlob

__all__ = ["ClusterKeyHierarchy", "EncryptedBlob"]
