"""Cohorting: bounding the blast radius of a failure.

Secondaries for a node's blocks are placed only within that node's cohort.
Small cohorts bound how many nodes a failure forces to participate in
re-replication; large cohorts spread the re-replication load wider. The
paper: "we attempt to balance the resource impact of re-replication
against the increased probability of correlated failures as disk and node
counts increase."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CohortPlan:
    """Partitioning of node ids into fixed-size cohorts."""

    node_ids: list[str]
    cohort_size: int

    def __post_init__(self) -> None:
        if self.cohort_size < 2:
            raise ValueError(
                f"cohort size must be at least 2, got {self.cohort_size}"
            )
        self._index = {node: i for i, node in enumerate(self.node_ids)}

    def cohort_of(self, node_id: str) -> list[str]:
        """The nodes sharing a cohort with *node_id* (including itself)."""
        position = self._index[node_id]
        start = (position // self.cohort_size) * self.cohort_size
        return self.node_ids[start:start + self.cohort_size]

    def peers_of(self, node_id: str) -> list[str]:
        """Candidate secondary hosts for blocks whose primary is *node_id*."""
        return [n for n in self.cohort_of(node_id) if n != node_id]

    def blast_radius(self, node_id: str) -> int:
        """Nodes involved when *node_id* fails: its cohort."""
        return len(self.cohort_of(node_id))

    @property
    def cohort_count(self) -> int:
        return (len(self.node_ids) + self.cohort_size - 1) // self.cohort_size
