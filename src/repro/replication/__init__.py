"""Block replication, cohorting, failure handling, and durability math.

"Each data block is synchronously written to both its primary slice as
well as to at least one secondary on a separate node. Cohorting is used to
limit the number of slices impacted by an individual disk or node failure
... The primary, secondary and Amazon S3 copies of the data block are each
available for read, making media failures transparent. Loss of durability
requires multiple faults to occur in the time window from the first fault
to re-replication or backup to Amazon S3" (paper §2.1).
"""

from repro.replication.mirror import ReplicationManager, ReplicaInfo
from repro.replication.cohort import CohortPlan
from repro.replication.durability import (
    DurabilityModel,
    annual_durability,
)

__all__ = [
    "ReplicationManager", "ReplicaInfo",
    "CohortPlan",
    "DurabilityModel", "annual_durability",
]
