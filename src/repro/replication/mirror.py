"""Primary/secondary block mirroring with transparent failover.

The manager synchronises with an engine cluster after loads (a real engine
replicates synchronously on write; batching at sync points changes none of
the measured quantities), places each block's secondary on a peer node
inside the primary node's cohort, serves reads around disk failures, and
rebuilds failed slices from the surviving copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cluster import Cluster
from repro.errors import (
    BlockCorruptionError,
    DiskMediaError,
    DurabilityLossError,
    StorageError,
)
from repro.replication.cohort import CohortPlan
from repro.storage.block import Block
from repro.storage.slicestore import TableShard
from repro.util.units import MB


@dataclass
class ReplicaInfo:
    """Placement record for one block."""

    block_id: str
    primary_slice: str
    secondary_slice: str
    size_bytes: int
    table: str
    column: str
    in_s3: bool = False


@dataclass
class ScrubReport:
    """What one scrub pass over the replicated block set found and fixed."""

    blocks_checked: int = 0
    repaired: list[str] = field(default_factory=list)
    corrupt_primary: list[str] = field(default_factory=list)
    corrupt_secondary: list[str] = field(default_factory=list)
    unrepairable: list[str] = field(default_factory=list)


@dataclass
class _SliceLayout:
    """Reconstruction metadata for one slice captured at sync time."""

    tables: dict[str, dict] = field(default_factory=dict)
    # tables[table] = {
    #   "columns": {column: [block ids in chain order]},
    #   "insert_xids": [...], "delete_xids": [...],
    #   "codecs": {column: codec name},
    # }


class ReplicationManager:
    """Replica placement, failover reads, and slice recovery."""

    #: Node-to-node re-replication bandwidth for duration accounting.
    REREPLICATION_BANDWIDTH = 100 * MB

    def __init__(self, cluster: Cluster, cohort_size: int = 4):
        self._cluster = cluster
        node_ids = [node.node_id for node in cluster.nodes]
        self.cohorts = CohortPlan(
            node_ids, min(max(2, cohort_size), max(2, len(node_ids)))
        ) if len(node_ids) >= 2 else None
        self.replicas: dict[str, ReplicaInfo] = {}
        #: secondary slice id -> block id -> serialized block bytes
        self._secondary_store: dict[str, dict[str, bytes]] = {}
        self._layouts: dict[str, _SliceLayout] = {}
        self._placement_counter = 0
        self.bytes_replicated = 0

    # ---- placement -------------------------------------------------------------

    def _slice_node(self, slice_id: str) -> str:
        for node in self._cluster.nodes:
            for s in node.slices:
                if s.slice_id == slice_id:
                    return node.node_id
        raise StorageError(f"unknown slice {slice_id!r}")

    def _choose_secondary(self, primary_slice: str) -> str:
        """A slice on a different node within the primary node's cohort."""
        if self.cohorts is None:
            raise StorageError(
                "replication requires at least two nodes in the cluster"
            )
        primary_node = self._slice_node(primary_slice)
        peers = self.cohorts.peers_of(primary_node)
        candidate_slices = [
            s.slice_id
            for node in self._cluster.nodes
            if node.node_id in peers
            for s in node.slices
        ]
        self._placement_counter += 1
        return candidate_slices[self._placement_counter % len(candidate_slices)]

    def sync_from_cluster(self) -> int:
        """Register and mirror every block not yet replicated.

        Seals open tail buffers first (a replication checkpoint: rows are
        only durable once their block exists), then mirrors new blocks.
        Returns the number of newly replicated blocks and refreshes the
        per-slice layout metadata used by recovery.
        """
        for name in self._cluster.catalog.table_names():
            self._cluster.seal_table(name)
        new_blocks = 0
        for store in self._cluster.slice_stores:
            layout = _SliceLayout()
            for table_name, shard in store.shards.items():
                # Only sealed blocks replicate; open tails are below the
                # replication point until the next seal (loads seal).
                first_chain = next(iter(shard.chains.values()), None)
                sealed_rows = (
                    sum(b.count for b in first_chain.blocks)
                    if first_chain is not None
                    else 0
                )
                entry = {
                    "columns": {},
                    "insert_xids": list(shard.insert_xids[:sealed_rows]),
                    "delete_xids": list(shard.delete_xids[:sealed_rows]),
                    "codecs": {
                        name: chain.codec.name
                        for name, chain in shard.chains.items()
                    },
                }
                for column_name, chain in shard.chains.items():
                    ids = []
                    for block in chain.blocks:
                        ids.append(block.block_id)
                        if block.block_id in self.replicas:
                            continue
                        secondary = self._choose_secondary(store.slice_id)
                        data = block.serialize()
                        self._secondary_store.setdefault(secondary, {})[
                            block.block_id
                        ] = data
                        self.replicas[block.block_id] = ReplicaInfo(
                            block_id=block.block_id,
                            primary_slice=store.slice_id,
                            secondary_slice=secondary,
                            size_bytes=len(data),
                            table=table_name,
                            column=column_name,
                        )
                        self.bytes_replicated += len(data)
                        new_blocks += 1
                    entry["columns"][column_name] = ids
                layout.tables[table_name] = entry
            self._layouts[store.slice_id] = layout
        return new_blocks

    # ---- reads with failover -------------------------------------------------------

    def read_block(self, block_id: str, s3_reader=None) -> Block:
        """Read a block from primary, then secondary, then S3.

        *s3_reader* is an optional callable ``block_id -> bytes`` supplied
        by the backup manager; media failures are transparent as long as
        any copy survives.
        """
        info = self.replicas.get(block_id)
        if info is None:
            raise StorageError(f"block {block_id!r} is not replicated")
        primary_store = self._store(info.primary_slice)
        if not primary_store.disk.failed and primary_store.has_shard(info.table):
            shard = primary_store.shard(info.table)
            for block in shard.chain(info.column).blocks:
                if block.block_id == block_id:
                    try:
                        primary_store.disk.record_read(block.encoded_bytes)
                        block.read()  # checksum gate before serving
                        return block
                    except (BlockCorruptionError, DiskMediaError):
                        break  # fail over to the secondary copy
        secondary_store = self._store(info.secondary_slice)
        if not secondary_store.disk.failed:
            data = self._secondary_store.get(info.secondary_slice, {}).get(block_id)
            if data is not None:
                try:
                    secondary_store.disk.record_read(len(data))
                    candidate = Block.deserialize(data)
                    candidate.read()
                    return candidate
                except (BlockCorruptionError, DiskMediaError):
                    pass  # fall through to the S3 backup copy
        if s3_reader is not None:
            data = s3_reader(block_id)
            if data is not None:
                candidate = Block.deserialize(data)
                candidate.read()
                return candidate
        raise DurabilityLossError(
            f"no surviving replica of block {block_id!r}"
        )

    def _store(self, slice_id: str):
        for store in self._cluster.slice_stores:
            if store.slice_id == slice_id:
                return store
        raise StorageError(f"unknown slice {slice_id!r}")

    # ---- scrub-and-repair ----------------------------------------------------

    def _primary_block(self, info: ReplicaInfo):
        """Locate a replica's primary chain and block; (None, None) when the
        primary disk is down or the shard has been dropped."""
        store = self._store(info.primary_slice)
        if store.disk.failed or not store.has_shard(info.table):
            return None, None
        chain = store.shard(info.table).chain(info.column)
        for block in chain.blocks:
            if block.block_id == info.block_id:
                return chain, block
        return chain, None

    @staticmethod
    def _verified(block: Block) -> bool:
        try:
            block.read()
            return True
        except BlockCorruptionError:
            return False

    def scrub(self, s3_reader=None, node_id: str | None = None) -> ScrubReport:
        """Checksum-verify every replicated copy and repair corrupt ones.

        Each corrupt copy is rebuilt from a surviving good copy — mirror
        first, then the S3 backup via *s3_reader*. Blocks with no intact
        copy anywhere are reported unrepairable (durability lost). Pass
        *node_id* to scrub only blocks with a copy on that node.
        """
        report = ScrubReport()
        for block_id in sorted(self.replicas):
            info = self.replicas[block_id]
            if node_id is not None and node_id not in (
                self._slice_node(info.primary_slice),
                self._slice_node(info.secondary_slice),
            ):
                continue
            report.blocks_checked += 1
            chain, primary = self._primary_block(info)
            primary_ok = primary is not None and self._verified(primary)
            if primary is not None and not primary_ok:
                report.corrupt_primary.append(block_id)
            data = self._secondary_store.get(info.secondary_slice, {}).get(
                block_id
            )
            secondary_ok = data is not None and self._verified(
                Block.deserialize(data)
            )
            if data is not None and not secondary_ok:
                report.corrupt_secondary.append(block_id)
            if primary_ok and secondary_ok:
                continue
            source: bytes | None = None
            if primary_ok:
                source = primary.serialize()
            elif secondary_ok:
                source = data
            elif s3_reader is not None:
                candidate = s3_reader(block_id)
                if candidate is not None and self._verified(
                    Block.deserialize(candidate)
                ):
                    source = candidate
            if source is None:
                report.unrepairable.append(block_id)
                continue
            repaired_any = False
            if chain is not None and primary is not None and not primary_ok:
                fresh = Block.deserialize(source)
                if chain.replace_block(block_id, fresh):
                    self._store(info.primary_slice).disk.record_write(
                        fresh.encoded_bytes
                    )
                    # Block repair mutates primary storage outside any
                    # session; the optimizer must stop trusting stats
                    # measured against the pre-repair bytes.
                    self._cluster.invalidate_statistics(chain.table_name)
                    repaired_any = True
            if not secondary_ok:
                self._secondary_store.setdefault(info.secondary_slice, {})[
                    block_id
                ] = bytes(source)
                secondary_store = self._store(info.secondary_slice)
                if not secondary_store.disk.failed:
                    secondary_store.disk.record_write(len(source))
                repaired_any = True
            if repaired_any:
                report.repaired.append(block_id)
        return report

    # ---- failure & recovery ------------------------------------------------------------

    def fail_slice(self, slice_id: str) -> None:
        """Inject a disk failure on one slice."""
        self._store(slice_id).disk.fail()

    def fail_node(self, node_id: str) -> list[str]:
        """Fail every disk on a node; returns the failed slice ids."""
        failed = []
        for node in self._cluster.nodes:
            if node.node_id == node_id:
                for s in node.slices:
                    s.storage.disk.fail()
                    failed.append(s.slice_id)
        return failed

    def at_risk_blocks(self) -> list[str]:
        """Blocks currently down to a single in-cluster copy (the paper's
        durability window: a second fault before re-replication loses data
        unless the block reached S3)."""
        out = []
        for info in self.replicas.values():
            primary_failed = self._store(info.primary_slice).disk.failed
            secondary_failed = self._store(info.secondary_slice).disk.failed
            if primary_failed != secondary_failed:
                out.append(info.block_id)
        return out

    def recover_slice(self, slice_id: str, s3_reader=None) -> tuple[int, float]:
        """Rebuild a failed slice from surviving copies.

        Replaces the disk, reconstructs every shard from the layout captured
        at the last sync, and re-mirrors. Returns (bytes restored, simulated
        duration at the re-replication bandwidth).
        """
        store = self._store(slice_id)
        store.disk.repair()
        layout = self._layouts.get(slice_id)
        if layout is None:
            return 0, 0.0
        bytes_restored = 0
        table_infos = {
            name: self._cluster.catalog.table(name)
            for name in layout.tables
            if self._cluster.catalog.has_table(name)
        }
        # Start from empty shards, then adopt recovered blocks.
        for table_name, entry in layout.tables.items():
            info = table_infos.get(table_name)
            if info is None:
                continue
            if store.has_shard(table_name):
                store.drop_shard(table_name)
            shard = store.create_shard(
                table_name, info.column_specs, entry["codecs"]
            )
            for column_name, block_ids in entry["columns"].items():
                blocks = []
                for block_id in block_ids:
                    block = self.read_block(block_id, s3_reader)
                    blocks.append(block)
                    bytes_restored += block.encoded_bytes
                shard.chain(column_name).adopt_blocks(blocks)
            shard.insert_xids = list(entry["insert_xids"])
            shard.delete_xids = list(entry["delete_xids"])
            store.disk.record_write(shard.encoded_bytes)
            # Failover rebuilt this table's shard from mirror/S3 copies
            # — a storage mutation no session saw, so stale the stats.
            self._cluster.invalidate_statistics(table_name)
        duration = bytes_restored / self.REREPLICATION_BANDWIDTH
        return bytes_restored, duration
