"""Durability modelling.

"Loss of durability requires multiple faults to occur in the time window
from the first fault to re-replication or backup to Amazon S3" (§2.1).
The analytic model computes annual data-loss probability from disk fault
rates, the re-replication window, and whether the S3 copy exists; the
Monte Carlo model draws fault sequences to validate it and to measure
cohort-size effects (experiment a8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.rng import DeterministicRng
from repro.util.units import HOUR, YEAR


def annual_durability(
    disk_afr: float,
    rereplication_window_s: float,
    disks_per_cohort: int,
    s3_backed: bool,
    s3_annual_loss: float = 1e-11,
) -> float:
    """Probability a block survives one year.

    A block is lost when its primary disk fails and a cohort peer holding
    its secondary fails within the re-replication window (both orders).
    With an S3 copy, loss additionally requires losing the S3 object.
    """
    if not 0.0 < disk_afr < 1.0:
        raise ValueError(f"disk AFR must be in (0,1), got {disk_afr}")
    # Poisson failure model: rate per second per disk.
    rate = -math.log(1.0 - disk_afr) / YEAR
    window = rereplication_window_s
    # P(second specific disk fails within the window after a first failure).
    p_second_in_window = 1.0 - math.exp(-rate * window)
    # Expected first-failures of the primary per year ~ disk_afr; the
    # secondary lives on one specific peer disk.
    p_pair_loss = disk_afr * p_second_in_window
    # Either copy may fail first.
    p_cluster_loss = min(1.0, 2.0 * p_pair_loss)
    if s3_backed:
        return 1.0 - p_cluster_loss * s3_annual_loss
    return 1.0 - p_cluster_loss


@dataclass
class DurabilityModel:
    """Monte Carlo fault injection over a fleet of disks."""

    disk_count: int
    disk_afr: float = 0.04
    rereplication_window_s: float = 2 * HOUR
    cohort_size_disks: int = 8
    s3_backed: bool = False
    seed: int = 7

    def simulate_years(self, years: int) -> dict:
        """Simulate *years* of operation; returns loss statistics.

        Each disk draws failure times from an exponential distribution.
        A data-loss event occurs when two disks in the same cohort fail
        within the re-replication window (and no S3 copy exists).
        """
        rng = DeterministicRng(self.seed)
        rate = -math.log(1.0 - self.disk_afr) / YEAR
        horizon = years * YEAR
        failures: list[tuple[float, int]] = []
        for disk in range(self.disk_count):
            t = rng.exponential(rate)
            while t < horizon:
                failures.append((t, disk))
                t += rng.exponential(rate)
        failures.sort()
        loss_events = 0
        near_misses = 0
        recent: dict[int, list[float]] = {}
        for when, disk in failures:
            cohort = disk // self.cohort_size_disks
            window_start = when - self.rereplication_window_s
            times = [t for t in recent.get(cohort, []) if t >= window_start]
            if times:
                if self.s3_backed:
                    near_misses += 1
                else:
                    loss_events += 1
            times.append(when)
            recent[cohort] = times
        return {
            "disk_failures": len(failures),
            "loss_events": loss_events,
            "near_misses": near_misses,
            "loss_events_per_year": loss_events / years if years else 0.0,
        }
