"""Data distribution across slices: DISTSTYLE EVEN, KEY, and ALL.

"The user can specify whether data is distributed in a round robin fashion,
hashed according to a distribution key, or duplicated on all slices. Using
distribution keys allows join processing on that key to be co-located on
individual slices" (paper §2.1).
"""

from repro.distribution.hashing import stable_hash
from repro.distribution.diststyle import (
    DistStyle,
    Distribution,
    EvenDistribution,
    KeyDistribution,
    AllDistribution,
    make_distribution,
)

__all__ = [
    "stable_hash",
    "DistStyle", "Distribution",
    "EvenDistribution", "KeyDistribution", "AllDistribution",
    "make_distribution",
]
