"""Stable value hashing for distribution keys.

Python's built-in ``hash`` is salted per process for strings, so it cannot
place rows deterministically. ``stable_hash`` is an FNV-1a over a canonical
byte rendering of the value; equal SQL values always land on the same
slice, across runs and across the coercible numeric types (``1`` and
``1.0`` hash alike, as required for joins between int and float keys).
"""

from __future__ import annotations

import datetime
import decimal

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _canonical_bytes(value: object) -> bytes:
    if value is None:
        return b"\x00N"
    if isinstance(value, bool):
        return b"\x01T" if value else b"\x01F"
    if isinstance(value, (int, float, decimal.Decimal)):
        # Canonicalise numerics so 1, 1.0 and Decimal('1.00') agree.
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if isinstance(value, decimal.Decimal):
            if value == value.to_integral_value():
                value = int(value)
            else:
                value = float(value)
        if isinstance(value, int):
            return b"\x02" + str(value).encode("ascii")
        return b"\x03" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"\x04" + value.encode("utf-8", "surrogateescape")
    if isinstance(value, datetime.datetime):
        return b"\x06" + value.isoformat().encode("ascii")
    if isinstance(value, datetime.date):
        return b"\x05" + value.isoformat().encode("ascii")
    raise TypeError(f"cannot hash value of type {type(value).__name__}")


def stable_hash(value: object) -> int:
    """64-bit FNV-1a hash of the canonical rendering of *value*."""
    h = _FNV_OFFSET
    for byte in _canonical_bytes(value):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h
