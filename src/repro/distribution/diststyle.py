"""Distribution styles: how a table's rows map to slices."""

from __future__ import annotations

import enum
from typing import Sequence

from repro.distribution.hashing import stable_hash


class DistStyle(enum.Enum):
    """The three Redshift distribution styles."""

    EVEN = "even"
    KEY = "key"
    ALL = "all"


class Distribution:
    """Assigns each row to the slice(s) that store it."""

    style: DistStyle

    def target_slices(
        self, row_index: int, key_value: object, slice_count: int
    ) -> list[int]:
        """Slice indexes that store this row (a singleton except for ALL)."""
        raise NotImplementedError

    def colocated_with(self, other: "Distribution") -> bool:
        """Whether a join keyed on both tables' dist keys avoids any data
        movement. Refined by subclasses; ALL is co-located with anything."""
        return False

    def describe(self) -> str:
        raise NotImplementedError


class EvenDistribution(Distribution):
    """Round-robin placement; balanced but never join-co-located."""

    style = DistStyle.EVEN

    def target_slices(
        self, row_index: int, key_value: object, slice_count: int
    ) -> list[int]:
        return [row_index % slice_count]

    def describe(self) -> str:
        return "DISTSTYLE EVEN"


class KeyDistribution(Distribution):
    """Hash placement on a distribution key column."""

    style = DistStyle.KEY

    def __init__(self, column: str):
        if not column:
            raise ValueError("KEY distribution requires a column name")
        self.column = column

    def target_slices(
        self, row_index: int, key_value: object, slice_count: int
    ) -> list[int]:
        return [stable_hash(key_value) % slice_count]

    def colocated_with(self, other: Distribution) -> bool:
        # Equal keys hash to equal slices regardless of which table they
        # come from, so any two KEY-distributed tables joined *on their
        # dist keys* are co-located; the planner checks the join columns.
        return isinstance(other, (KeyDistribution, AllDistribution))

    def describe(self) -> str:
        return f"DISTSTYLE KEY DISTKEY({self.column})"


class AllDistribution(Distribution):
    """Full replication: every slice of every node holds all rows.

    (Real Redshift replicates per node; replicating per slice keeps the
    slice the only unit of parallelism without changing any claim the
    experiments measure — co-location and zero redistribution bytes.)
    """

    style = DistStyle.ALL

    def target_slices(
        self, row_index: int, key_value: object, slice_count: int
    ) -> list[int]:
        return list(range(slice_count))

    def colocated_with(self, other: Distribution) -> bool:
        return True

    def describe(self) -> str:
        return "DISTSTYLE ALL"


def make_distribution(
    style: DistStyle | str, key_column: str | None = None
) -> Distribution:
    """Factory from a style name plus optional DISTKEY column."""
    if isinstance(style, str):
        style = DistStyle(style.lower())
    if style is DistStyle.EVEN:
        return EvenDistribution()
    if style is DistStyle.ALL:
        return AllDistribution()
    if key_column is None:
        raise ValueError("DISTSTYLE KEY requires a key column")
    return KeyDistribution(key_column)
