"""Lazy (page-faulting) blocks for streaming restore.

A :class:`LazyBlock` carries the block's metadata (zone map, row count,
encoded size, checksum) — restored with the catalog — and fetches the data
payload from S3 on first read. Zone-map pruning therefore works *before*
the block is local: queries that skip a block never fault it in at all.
"""

from __future__ import annotations

from typing import Callable

from repro.storage.block import Block
from repro.storage.zonemap import ZoneMap

#: fetcher(block_id) -> serialized block bytes
Fetcher = Callable[[str], bytes]


class LazyBlock:
    """Duck-typed :class:`~repro.storage.block.Block` that faults in its
    payload on demand."""

    def __init__(
        self,
        block_id: str,
        zone_map: ZoneMap,
        count: int,
        encoded_bytes: int,
        checksum: int,
        fetcher: Fetcher,
        on_fault: Callable[["LazyBlock"], None] | None = None,
    ):
        self.block_id = block_id
        self.zone_map = zone_map
        self.count = count
        self.encoded_bytes = encoded_bytes
        self.checksum = checksum
        self._fetcher = fetcher
        self._on_fault = on_fault
        self._materialized: Block | None = None

    @property
    def resident(self) -> bool:
        """Whether the payload has been brought down from S3."""
        return self._materialized is not None

    @property
    def codec_name(self) -> str:
        return self._materialize().codec_name

    def _materialize(self) -> Block:
        if self._materialized is None:
            data = self._fetcher(self.block_id)
            self._materialized = Block.deserialize(data)
            if self._on_fault is not None:
                self._on_fault(self)
        return self._materialized

    def read(self, verify: bool = True) -> list[object]:
        """Fetch (if needed) and decode the block."""
        return self._materialize().read(verify)

    def serialize(self) -> bytes:
        return self._materialize().serialize()
