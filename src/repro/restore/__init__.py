"""Full and streaming restore from S3 backups.

"We are able to include Amazon S3 backups as part of our data availability
and durability design, by doing block-level backups and 'page-faulting' in
blocks when unavailable on local storage. This also allowed us to
implement a streaming restore capability, allowing the database to be
opened for SQL operations after metadata and catalog restoration, but
while blocks were still being brought down in background. Since the
average working set for a data warehouse is a small fraction of the total
data stored, this allows performant queries to be obtained in a small
fraction of the time required for a full restore." (paper §2.2)
"""

from repro.restore.manager import RestoreManager, RestoreResult
from repro.restore.lazyblock import LazyBlock

__all__ = ["RestoreManager", "RestoreResult", "LazyBlock"]
