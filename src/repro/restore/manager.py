"""Restore orchestration: full restore and streaming restore."""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.cloud.s3 import SimS3
from repro.cloud.simclock import SimClock
from repro.engine.catalog import TableStatistics
from repro.engine.cluster import Cluster
from repro.engine.transactions import BOOTSTRAP_XID
from repro.storage import epoch
from repro.errors import S3TransientError, SnapshotNotFoundError
from repro.faults.retry import RetryPolicy, with_backoff
from repro.restore.lazyblock import LazyBlock
from repro.security.keyhierarchy import ClusterKeyHierarchy, EncryptedBlob
from repro.storage.block import Block
from repro.util.rng import DeterministicRng


@dataclass
class RestoreResult:
    """Outcome of a restore operation."""

    cluster: Cluster
    snapshot_id: str
    streaming: bool
    #: Simulated time until SQL could be issued.
    time_to_first_query_s: float
    #: Simulated time until every block was local (equals the above for
    #: full restores; streaming restores grow it as faults occur or
    #: when complete_background_fetch runs).
    time_to_full_restore_s: float
    total_blocks: int
    total_bytes: int
    faulted_blocks: int = 0
    faulted_bytes: int = 0
    lazy_blocks: list[LazyBlock] = field(default_factory=list)
    #: Per-table mutation epochs captured when the snapshot was taken
    #: (empty for pre-epoch snapshots). Burst routing compares these
    #: against the live epochs to decide whether the restored cluster is
    #: fresh enough to serve a query.
    table_epochs: dict[str, int] = field(default_factory=dict)

    @property
    def resident_fraction(self) -> float:
        if not self.lazy_blocks:
            return 1.0
        resident = sum(1 for b in self.lazy_blocks if b.resident)
        return resident / len(self.lazy_blocks)


class RestoreManager:
    """Builds clusters back from snapshot manifests."""

    #: catalog + metadata restoration time before SQL opens (simulated).
    METADATA_RESTORE_S = 60.0

    def __init__(
        self,
        s3: SimS3,
        bucket: str,
        clock: SimClock,
        encryption: ClusterKeyHierarchy | None = None,
    ):
        self._s3 = s3
        self._bucket = bucket
        self._clock = clock
        self._encryption = encryption
        self._retry_rng = DeterministicRng(f"restore-retry/{bucket}")

    def _s3_call(self, fn):
        """One S3 request with backed-off retry of transient errors."""
        return with_backoff(
            fn,
            clock=self._clock,
            policy=RetryPolicy(),
            rng=self._retry_rng,
            retry_on=(S3TransientError,),
        )

    # ---- manifest plumbing ---------------------------------------------------

    def _load_manifest(self, snapshot_id: str) -> dict:
        key = f"manifests/{snapshot_id}"
        if not self._s3.has_object(self._bucket, key):
            raise SnapshotNotFoundError(snapshot_id)
        return pickle.loads(
            self._s3_call(lambda: self._s3.get_object(self._bucket, key)).data
        )

    def _fetch_block_bytes(self, block_id: str) -> bytes:
        data = self._s3_call(
            lambda: self._s3.get_object(self._bucket, f"blocks/{block_id}")
        ).data
        if self._encryption is not None:
            data = self._encryption.decrypt_block(
                EncryptedBlob(block_id=block_id, ciphertext=data)
            )
        return data

    # ---- restores ----------------------------------------------------------------

    def full_restore(self, snapshot_id: str) -> RestoreResult:
        """Restore everything before opening for SQL."""
        return self._restore(snapshot_id, streaming=False)

    def streaming_restore(self, snapshot_id: str) -> RestoreResult:
        """Open for SQL after metadata restore; blocks page-fault in."""
        return self._restore(snapshot_id, streaming=True)

    def _restore(self, snapshot_id: str, streaming: bool) -> RestoreResult:
        # Constructing a cluster from snapshot images replays the write
        # paths (create_shard, adopt_blocks) but is not a new version of
        # any table other clusters serve — keep it out of the shared
        # epoch counters so a burst restore doesn't invalidate the main
        # cluster's caches or defeat its own freshness check.
        with epoch.suppressed():
            return self._restore_locked(snapshot_id, streaming)

    def _restore_locked(self, snapshot_id: str, streaming: bool) -> RestoreResult:
        manifest = self._load_manifest(snapshot_id)
        cluster = Cluster(
            node_count=manifest["node_count"],
            slices_per_node=manifest["slices_per_node"],
            block_capacity=manifest["block_capacity"],
        )
        tables = pickle.loads(manifest["tables"])
        for table in tables:
            cluster.catalog.create_table(table)
            cluster.create_table_storage(table)

        total_blocks = 0
        total_bytes = 0
        per_slice_bytes: dict[str, int] = {}
        lazy_blocks: list[LazyBlock] = []
        live_rows: dict[str, int] = {}
        table_bytes: dict[str, int] = {}

        result = RestoreResult(
            cluster=cluster,
            snapshot_id=snapshot_id,
            streaming=streaming,
            time_to_first_query_s=0.0,
            time_to_full_restore_s=0.0,
            total_blocks=0,
            total_bytes=0,
        )

        def on_fault(block: LazyBlock) -> None:
            result.faulted_blocks += 1
            result.faulted_bytes += block.encoded_bytes
            fetch_time = self._s3.transfer_time(block.encoded_bytes)
            self._clock.advance(fetch_time)
            result.time_to_full_restore_s += fetch_time

        stores = {store.slice_id: store for store in cluster.slice_stores}
        restored_slice_ids = sorted(stores)
        source_slices = manifest["slices"]
        for slice_entry, target_id in zip(source_slices, restored_slice_ids):
            store = stores[target_id]
            for table_name, entry in slice_entry["tables"].items():
                shard = store.shard(table_name)
                for column_name, metas in entry["columns"].items():
                    blocks = []
                    for meta in metas:
                        total_blocks += 1
                        total_bytes += meta["encoded_bytes"]
                        per_slice_bytes[target_id] = (
                            per_slice_bytes.get(target_id, 0)
                            + meta["encoded_bytes"]
                        )
                        table_bytes[table_name] = (
                            table_bytes.get(table_name, 0)
                            + meta["encoded_bytes"]
                        )
                        if streaming:
                            lazy = LazyBlock(
                                block_id=meta["block_id"],
                                zone_map=meta["zone_map"],
                                count=meta["count"],
                                encoded_bytes=meta["encoded_bytes"],
                                checksum=meta["checksum"],
                                fetcher=self._fetch_block_bytes,
                                on_fault=on_fault,
                            )
                            lazy_blocks.append(lazy)
                            blocks.append(lazy)
                        else:
                            blocks.append(
                                Block.deserialize(
                                    self._fetch_block_bytes(meta["block_id"])
                                )
                            )
                    shard.chain(column_name).adopt_blocks(blocks)
                row_count = entry["row_count"]
                shard.insert_xids = [BOOTSTRAP_XID] * row_count
                shard.delete_xids = [None] * row_count
                for offset in entry["dead"]:
                    shard.delete_xids[offset] = BOOTSTRAP_XID
                live_rows[table_name] = (
                    live_rows.get(table_name, 0)
                    + row_count
                    - len(entry["dead"])
                )
                store.disk.record_write(shard.encoded_bytes if not streaming else 0)

        # The pickled TableInfo carries the *source* cluster's statistics
        # verbatim — including a possibly-fresh `stale=False` from an
        # ANALYZE that predates later mutations. Re-anchor the row count
        # and bytes on what was actually restored and mark everything
        # stale: the CBO then plans on the right table sizes but only
        # trusts NDV/min-max after a post-restore ANALYZE.
        for table in tables:
            stats = table.statistics
            if stats is None:
                stats = table.statistics = TableStatistics()
            stats.row_count = live_rows.get(table.name, 0)
            stats.total_bytes = table_bytes.get(table.name, 0)
            stats.stale = True

        metadata_time = (
            self._s3.transfer_time(len(pickle.dumps(manifest, protocol=4)))
            + self.METADATA_RESTORE_S
        )
        if streaming:
            time_to_first_query = metadata_time
            time_to_full = metadata_time  # grows as blocks fault in
        else:
            # Slices fetch their blocks in parallel; the busiest slice
            # bounds wall time.
            busiest = max(per_slice_bytes.values(), default=0)
            fetch_time = self._s3.transfer_time(busiest) if busiest else 0.0
            time_to_first_query = metadata_time + fetch_time
            time_to_full = time_to_first_query
        self._clock.advance(time_to_first_query)

        result.time_to_first_query_s = time_to_first_query
        result.time_to_full_restore_s = time_to_full
        result.total_blocks = total_blocks
        result.total_bytes = total_bytes
        result.lazy_blocks = lazy_blocks
        result.table_epochs = dict(manifest.get("table_epochs", {}))
        return result

    def complete_background_fetch(self, result: RestoreResult) -> float:
        """Finish a streaming restore's background download; returns the
        additional simulated time spent."""
        remaining = [b for b in result.lazy_blocks if not b.resident]
        start = self._clock.now
        for block in remaining:
            block.read()
        return self._clock.now - start
