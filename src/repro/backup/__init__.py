"""Continuous, incremental, automatic block-level backup to simulated S3.

"Data blocks are also asynchronously and automatically backed up to
Amazon S3 ... This has allowed us to entirely automate backup, making it
continuous, incremental and automatic ... the time required to backup an
entire cluster is proportional to the data changed on a single node.
System backups are taken automatically and are automatically aged out.
User backups leverage the blocks already backed up in system backups and
are kept until explicitly deleted." (paper §2.1–§3.2)
"""

from repro.backup.manager import BackupManager, SnapshotRecord

__all__ = ["BackupManager", "SnapshotRecord"]
