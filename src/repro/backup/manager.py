"""Block-level incremental backup manager."""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field

from repro.cloud.s3 import SimS3
from repro.cloud.simclock import SimClock
from repro.engine.cluster import Cluster
from repro.errors import S3TransientError, SnapshotNotFoundError
from repro.faults.retry import RetryPolicy, with_backoff
from repro.security.keyhierarchy import ClusterKeyHierarchy
from repro.storage import epoch
from repro.util.rng import DeterministicRng

_snapshot_ids = itertools.count(1)


@dataclass
class SnapshotRecord:
    """One completed snapshot."""

    snapshot_id: str
    kind: str  # "system" | "user"
    created_at: float
    manifest_key: str
    blocks_uploaded: int
    bytes_uploaded: int
    duration_s: float
    total_blocks: int
    total_bytes: int
    #: table name -> mutation epoch at snapshot time (after seal-all),
    #: consumed by burst-cluster freshness routing.
    table_epochs: dict[str, int] = field(default_factory=dict)


@dataclass
class _BlockMeta:
    block_id: str
    zone_map: object
    count: int
    encoded_bytes: int
    checksum: int
    s3_key: str


class BackupManager:
    """Uploads new blocks and snapshot manifests; ages out system backups.

    The S3 object space is shared by all snapshots — a block uploaded for
    one snapshot is reused by every later manifest that references it,
    which is what makes backups incremental and user backups cheap.
    """

    #: retained system snapshots (older ones age out automatically)
    SYSTEM_RETENTION = 5
    #: catalog/metadata restore overhead charged by restores (simulated s)
    METADATA_RESTORE_S = 60.0

    def __init__(
        self,
        cluster: Cluster,
        s3: SimS3,
        bucket: str,
        clock: SimClock,
        encryption: ClusterKeyHierarchy | None = None,
    ):
        self._cluster = cluster
        self._s3 = s3
        self._bucket = bucket
        self._clock = clock
        self._encryption = encryption
        self._retry_rng = DeterministicRng(f"backup-retry/{bucket}")
        self._s3_call(lambda: s3.create_bucket(bucket))
        self.snapshots: list[SnapshotRecord] = []
        self._uploaded_blocks: set[str] = set()
        self._dr_regions: list[SimS3] = []

    def _s3_call(self, fn):
        """Run one S3 request with backed-off retry of transient errors.

        Declared outages are persistent and re-raise immediately; only the
        per-request 503 analogue is retried."""
        return with_backoff(
            fn,
            clock=self._clock,
            policy=RetryPolicy(),
            rng=self._retry_rng,
            retry_on=(S3TransientError,),
        )

    # ---- DR ------------------------------------------------------------------

    def enable_disaster_recovery(self, remote_s3: SimS3) -> None:
        """Mirror every backup object to a second region (§3.2: 'only
        requires setting a checkbox and specifying the region')."""
        remote_s3.create_bucket(self._bucket)
        self._dr_regions.append(remote_s3)
        # Backfill what already exists.
        self._s3.replicate_to(remote_s3, self._bucket)

    # ---- snapshots ------------------------------------------------------------

    def snapshot(self, kind: str = "system", label: str | None = None) -> SnapshotRecord:
        """Take an incremental snapshot of the whole cluster."""
        if kind not in ("system", "user"):
            raise ValueError(f"snapshot kind must be system or user, got {kind!r}")
        self._cluster_seal_all()
        # Capture per-table mutation epochs *after* seal-all (sealing
        # open tails bumps them); a burst restore of this snapshot is
        # fresh for a table exactly while its live epoch still matches.
        table_epochs = {
            name: epoch.table_epoch(name)
            for name in self._cluster.catalog.table_names()
        }
        snapshot_id = label or f"snap-{next(_snapshot_ids):06d}"
        per_node_bytes: dict[str, int] = {}
        blocks_uploaded = 0
        bytes_uploaded = 0
        total_blocks = 0
        total_bytes = 0
        manifest_slices = []
        for node in self._cluster.nodes:
            for sl in node.slices:
                store = sl.storage
                slice_entry: dict = {"slice_id": store.slice_id, "tables": {}}
                for table_name, shard in store.shards.items():
                    columns: dict[str, list[dict]] = {}
                    for column_name, chain in shard.chains.items():
                        metas = []
                        for block in chain.blocks:
                            key = f"blocks/{block.block_id}"
                            total_blocks += 1
                            total_bytes += block.encoded_bytes
                            if block.block_id not in self._uploaded_blocks:
                                data = block.serialize()
                                if self._encryption is not None:
                                    data = self._encryption.encrypt_block(
                                        block.block_id, data
                                    ).ciphertext
                                self._s3_call(
                                    lambda key=key, data=data: self._s3.put_object(
                                        self._bucket, key, data
                                    )
                                )
                                self._uploaded_blocks.add(block.block_id)
                                blocks_uploaded += 1
                                bytes_uploaded += len(data)
                                per_node_bytes[node.node_id] = (
                                    per_node_bytes.get(node.node_id, 0) + len(data)
                                )
                            metas.append(
                                {
                                    "block_id": block.block_id,
                                    "zone_map": block.zone_map,
                                    "count": block.count,
                                    "encoded_bytes": block.encoded_bytes,
                                    "checksum": block.checksum,
                                    "s3_key": key,
                                }
                            )
                        columns[column_name] = metas
                    dead = [
                        offset
                        for offset, xid in enumerate(shard.delete_xids)
                        if xid is not None
                        and self._cluster.transactions.is_committed(xid)
                    ]
                    slice_entry["tables"][table_name] = {
                        "columns": columns,
                        "row_count": shard.row_count,
                        "dead": dead,
                        "codecs": {
                            name: chain.codec.name
                            for name, chain in shard.chains.items()
                        },
                    }
                manifest_slices.append(slice_entry)

        manifest = {
            "snapshot_id": snapshot_id,
            "kind": kind,
            "created_at": self._clock.now,
            "node_count": self._cluster.node_count,
            "slices_per_node": len(self._cluster.nodes[0].slices),
            "block_capacity": self._cluster.block_capacity,
            "tables": pickle.dumps(
                [
                    self._cluster.catalog.table(name)
                    for name in self._cluster.catalog.table_names()
                ],
                protocol=4,
            ),
            "slices": manifest_slices,
            "table_epochs": table_epochs,
        }
        manifest_key = f"manifests/{snapshot_id}"
        manifest_bytes = pickle.dumps(manifest, protocol=4)
        self._s3_call(
            lambda: self._s3.put_object(
                self._bucket, manifest_key, manifest_bytes
            )
        )

        # Uploads run in parallel per node: wall time tracks the busiest
        # node — "proportional to the data changed on a single node".
        busiest = max(per_node_bytes.values(), default=0)
        duration = self._s3.transfer_time(busiest + len(manifest_bytes))
        self._clock.advance(duration)

        for remote in self._dr_regions:
            self._s3.replicate_to(remote, self._bucket)

        record = SnapshotRecord(
            snapshot_id=snapshot_id,
            kind=kind,
            created_at=self._clock.now,
            manifest_key=manifest_key,
            blocks_uploaded=blocks_uploaded,
            bytes_uploaded=bytes_uploaded,
            duration_s=duration,
            total_blocks=total_blocks,
            total_bytes=total_bytes,
            table_epochs=table_epochs,
        )
        self.snapshots.append(record)
        if kind == "system":
            self._age_out()
        return record

    def _cluster_seal_all(self) -> None:
        for name in self._cluster.catalog.table_names():
            self._cluster.seal_table(name)

    def _age_out(self) -> None:
        """Delete manifests of old system snapshots (blocks referenced by
        surviving manifests are retained)."""
        system = [s for s in self.snapshots if s.kind == "system"]
        excess = len(system) - self.SYSTEM_RETENTION
        for record in system[:max(0, excess)]:
            self._s3_call(
                lambda record=record: self._s3.delete_object(
                    self._bucket, record.manifest_key
                )
            )
            self.snapshots.remove(record)
        if excess > 0:
            self._collect_unreferenced_blocks()

    def _collect_unreferenced_blocks(self) -> None:
        referenced: set[str] = set()
        for record in self.snapshots:
            manifest = self._load_manifest(record.snapshot_id)
            for slice_entry in manifest["slices"]:
                for table in slice_entry["tables"].values():
                    for metas in table["columns"].values():
                        referenced.update(m["s3_key"] for m in metas)
        for key in self._s3_call(
            lambda: self._s3.list_objects(self._bucket, "blocks/")
        ):
            if key not in referenced:
                self._s3_call(
                    lambda key=key: self._s3.delete_object(self._bucket, key)
                )
                self._uploaded_blocks.discard(key.removeprefix("blocks/"))

    # ---- lookups ------------------------------------------------------------------

    def delete_snapshot(self, snapshot_id: str) -> None:
        record = self.find(snapshot_id)
        self._s3_call(
            lambda: self._s3.delete_object(self._bucket, record.manifest_key)
        )
        self.snapshots.remove(record)
        self._collect_unreferenced_blocks()

    def find(self, snapshot_id: str) -> SnapshotRecord:
        for record in self.snapshots:
            if record.snapshot_id == snapshot_id:
                return record
        raise SnapshotNotFoundError(snapshot_id)

    def _load_manifest(self, snapshot_id: str) -> dict:
        record = self.find(snapshot_id)
        data = self._s3_call(
            lambda: self._s3.get_object(self._bucket, record.manifest_key)
        ).data
        return pickle.loads(data)

    def s3_block_reader(self, block_id: str) -> bytes | None:
        """Fetch a block image from backup (for replication failover)."""
        key = f"blocks/{block_id}"
        if not self._s3.has_object(self._bucket, key):
            return None
        data = self._s3_call(
            lambda: self._s3.get_object(self._bucket, key)
        ).data
        if self._encryption is not None:
            from repro.security.keyhierarchy import EncryptedBlob

            data = self._encryption.decrypt_block(
                EncryptedBlob(block_id=block_id, ciphertext=data)
            )
        return data

    @property
    def bucket(self) -> str:
        return self._bucket
