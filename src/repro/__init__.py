"""repro — a reproduction of "Amazon Redshift and the Case for Simpler
Data Warehouses" (SIGMOD 2015).

The package provides two layers:

* **Data plane** (:mod:`repro.engine` and below): an embeddable columnar
  MPP SQL engine — leader/compute/slice topology, per-column compression
  with automatic codec selection, zone maps, distribution styles,
  compound/interleaved (z-curve) sort keys, snapshot-isolation
  transactions, interpreted and compiled executors, and a parallel COPY
  ingest path.

* **Managed service** (:mod:`repro.cloud`, :mod:`repro.controlplane`,
  :mod:`repro.ops` …): a discrete-event simulation of the control plane —
  provisioning, patching, backup/restore (including streaming restore),
  resize, replication and durability, fleet operations.

Quick start::

    from repro import Cluster

    cluster = Cluster(node_count=2, slices_per_node=2)
    session = cluster.connect()
    session.execute("CREATE TABLE t (id int, v varchar(32)) DISTKEY(id)")
    session.execute("INSERT INTO t VALUES (1, 'hello'), (2, 'world')")
    result = session.execute("SELECT count(*) FROM t")
    assert result.scalar() == 2
"""

from repro.engine.cluster import Cluster
from repro.engine.session import Session, QueryResult
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["Cluster", "Session", "QueryResult", "ReproError", "__version__"]
