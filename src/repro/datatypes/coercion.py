"""Implicit type coercion rules.

The coercion lattice mirrors PostgreSQL's behaviour for the supported
types: integers widen to wider integers, integers and decimals promote to
floats when mixed with them, CHAR promotes to VARCHAR, DATE promotes to
TIMESTAMP. Coercions never lose the ability to represent the value except
for the documented integer→float cases.
"""

from __future__ import annotations

import datetime
import decimal

from repro.datatypes.types import (
    BIGINT,
    DOUBLE,
    SqlType,
    TypeKind,
    TIMESTAMP,
    varchar_type,
)
from repro.errors import TypeMismatchError

# Numeric promotion order: a type may implicitly widen to any type that
# appears later in this list.
_NUMERIC_ORDER = [
    TypeKind.SMALLINT,
    TypeKind.INTEGER,
    TypeKind.BIGINT,
    TypeKind.DECIMAL,
    TypeKind.REAL,
    TypeKind.DOUBLE,
]


def can_coerce(source: SqlType, target: SqlType) -> bool:
    """Return True if *source* values may be implicitly used as *target*."""
    if source.kind == target.kind:
        if source.is_character:
            return target.length == 0 or source.length <= target.length
        return True
    if source.is_numeric and target.is_numeric:
        return _NUMERIC_ORDER.index(source.kind) <= _NUMERIC_ORDER.index(target.kind)
    if source.kind is TypeKind.CHAR and target.kind is TypeKind.VARCHAR:
        return True
    if source.kind is TypeKind.DATE and target.kind is TypeKind.TIMESTAMP:
        return True
    return False


def common_type(left: SqlType, right: SqlType) -> SqlType:
    """Return the common supertype both operands coerce to.

    Raises :class:`TypeMismatchError` when no common type exists.
    """
    if left == right:
        return left
    if left.is_numeric and right.is_numeric:
        order = max(
            _NUMERIC_ORDER.index(left.kind), _NUMERIC_ORDER.index(right.kind)
        )
        kind = _NUMERIC_ORDER[order]
        if kind is TypeKind.DECIMAL:
            precision = max(left.precision or 18, right.precision or 18)
            scale = max(left.scale, right.scale)
            return SqlType(TypeKind.DECIMAL, precision=precision, scale=scale)
        if kind in (TypeKind.REAL, TypeKind.DOUBLE):
            # Mixing decimal with a float yields double precision.
            if TypeKind.DECIMAL in (left.kind, right.kind):
                return DOUBLE
            return SqlType(kind)
        return SqlType(kind)
    if left.is_character and right.is_character:
        length = max(left.length, right.length)
        return varchar_type(length if length else 256)
    if left.is_temporal and right.is_temporal:
        return TIMESTAMP
    raise TypeMismatchError(f"no common type for {left} and {right}")


def coerce_value(value: object, source: SqlType, target: SqlType) -> object:
    """Convert a runtime *value* of *source* type to *target* type.

    NULL coerces to NULL; otherwise requires :func:`can_coerce` to hold.
    """
    if value is None:
        return None
    if not can_coerce(source, target):
        raise TypeMismatchError(f"cannot coerce {source} to {target}")
    if source.kind == target.kind:
        return target.validate(value)
    if target.is_float:
        return float(value)
    if target.kind is TypeKind.DECIMAL:
        return target.validate(
            value if isinstance(value, (int, decimal.Decimal))
            else decimal.Decimal(str(value))
        )
    if target.is_integer:
        return target.validate(int(value))
    if target.kind is TypeKind.VARCHAR:
        return target.validate(str(value).rstrip() if source.kind is TypeKind.CHAR else str(value))
    if target.kind is TypeKind.TIMESTAMP and isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    return target.validate(value)  # pragma: no cover - exhaustive above


# Convenience: the widest integer type, used by SUM() result typing.
SUM_RESULT_INTEGER = BIGINT
