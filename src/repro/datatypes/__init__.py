"""SQL type system: types, coercion, and text parsing for loads."""

from repro.datatypes.types import (
    SqlType,
    TypeKind,
    SMALLINT,
    INTEGER,
    BIGINT,
    REAL,
    DOUBLE,
    BOOLEAN,
    DATE,
    TIMESTAMP,
    decimal_type,
    char_type,
    varchar_type,
    type_from_name,
)
from repro.datatypes.coercion import (
    common_type,
    can_coerce,
    coerce_value,
)
from repro.datatypes.parsing import parse_literal, render_literal

__all__ = [
    "SqlType", "TypeKind",
    "SMALLINT", "INTEGER", "BIGINT", "REAL", "DOUBLE", "BOOLEAN",
    "DATE", "TIMESTAMP",
    "decimal_type", "char_type", "varchar_type", "type_from_name",
    "common_type", "can_coerce", "coerce_value",
    "parse_literal", "render_literal",
]
