"""SQL data types supported by the engine.

The engine supports the scalar types Amazon Redshift documents: two- to
eight-byte integers, single and double precision floats, fixed-point
DECIMAL, BOOLEAN, fixed and variable length character strings, DATE and
TIMESTAMP. A :class:`SqlType` instance carries everything storage and
execution need: a :class:`TypeKind`, optional length/precision parameters,
and the fixed byte width used for disk accounting.

Dates and timestamps are represented at runtime as ``datetime.date`` and
``datetime.datetime``; decimals as ``decimal.Decimal``; everything else as
the natural Python scalar. SQL NULL is Python ``None`` everywhere.
"""

from __future__ import annotations

import datetime
import decimal
import enum
from dataclasses import dataclass

from repro.errors import DataError


class TypeKind(enum.Enum):
    """Enumeration of the engine's scalar type families."""

    SMALLINT = "smallint"
    INTEGER = "integer"
    BIGINT = "bigint"
    REAL = "real"
    DOUBLE = "double precision"
    DECIMAL = "decimal"
    BOOLEAN = "boolean"
    CHAR = "char"
    VARCHAR = "varchar"
    DATE = "date"
    TIMESTAMP = "timestamp"


_INT_RANGES = {
    TypeKind.SMALLINT: (-(2 ** 15), 2 ** 15 - 1),
    TypeKind.INTEGER: (-(2 ** 31), 2 ** 31 - 1),
    TypeKind.BIGINT: (-(2 ** 63), 2 ** 63 - 1),
}

_FIXED_WIDTHS = {
    TypeKind.SMALLINT: 2,
    TypeKind.INTEGER: 4,
    TypeKind.BIGINT: 8,
    TypeKind.REAL: 4,
    TypeKind.DOUBLE: 8,
    TypeKind.DECIMAL: 8,
    TypeKind.BOOLEAN: 1,
    TypeKind.DATE: 4,
    TypeKind.TIMESTAMP: 8,
}


@dataclass(frozen=True)
class SqlType:
    """A concrete SQL type, possibly parameterised.

    Attributes:
        kind: the type family.
        length: max characters for CHAR/VARCHAR, else 0.
        precision: total digits for DECIMAL, else 0.
        scale: fractional digits for DECIMAL, else 0.
    """

    kind: TypeKind
    length: int = 0
    precision: int = 0
    scale: int = 0

    # ---- classification ------------------------------------------------

    @property
    def is_integer(self) -> bool:
        return self.kind in _INT_RANGES

    @property
    def is_float(self) -> bool:
        return self.kind in (TypeKind.REAL, TypeKind.DOUBLE)

    @property
    def is_numeric(self) -> bool:
        return self.is_integer or self.is_float or self.kind is TypeKind.DECIMAL

    @property
    def is_character(self) -> bool:
        return self.kind in (TypeKind.CHAR, TypeKind.VARCHAR)

    @property
    def is_temporal(self) -> bool:
        return self.kind in (TypeKind.DATE, TypeKind.TIMESTAMP)

    # ---- storage accounting ---------------------------------------------

    @property
    def byte_width(self) -> int:
        """Nominal uncompressed bytes per value, used for disk accounting.

        Character types account their declared maximum, mirroring how a
        fixed-width columnar layout reserves space before compression.
        """
        if self.is_character:
            return max(1, self.length)
        return _FIXED_WIDTHS[self.kind]

    # ---- value validation -------------------------------------------------

    def validate(self, value: object) -> object:
        """Check *value* against this type, returning the canonical form.

        ``None`` (SQL NULL) is always accepted. Raises :class:`DataError`
        for out-of-range or wrongly typed values.
        """
        if value is None:
            return None
        if self.is_integer:
            if isinstance(value, bool) or not isinstance(value, int):
                raise DataError(f"expected {self}, got {value!r}")
            low, high = _INT_RANGES[self.kind]
            if not low <= value <= high:
                raise DataError(f"value {value} out of range for {self}")
            return value
        if self.is_float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise DataError(f"expected {self}, got {value!r}")
            return float(value)
        if self.kind is TypeKind.DECIMAL:
            if isinstance(value, bool):
                raise DataError(f"expected {self}, got {value!r}")
            if not isinstance(value, (int, decimal.Decimal)):
                raise DataError(f"expected {self}, got {value!r}")
            quantum = decimal.Decimal(1).scaleb(-self.scale)
            try:
                canonical = decimal.Decimal(value).quantize(quantum)
            except decimal.InvalidOperation as exc:
                raise DataError(f"value {value} not representable as {self}") from exc
            if len(canonical.as_tuple().digits) > self.precision:
                raise DataError(f"value {value} exceeds precision of {self}")
            return canonical
        if self.kind is TypeKind.BOOLEAN:
            if not isinstance(value, bool):
                raise DataError(f"expected {self}, got {value!r}")
            return value
        if self.is_character:
            if not isinstance(value, str):
                raise DataError(f"expected {self}, got {value!r}")
            if self.length and len(value) > self.length:
                raise DataError(
                    f"value of length {len(value)} too long for {self}"
                )
            if self.kind is TypeKind.CHAR and self.length:
                return value.ljust(self.length)
            return value
        if self.kind is TypeKind.DATE:
            if isinstance(value, datetime.datetime) or not isinstance(
                value, datetime.date
            ):
                raise DataError(f"expected {self}, got {value!r}")
            return value
        if self.kind is TypeKind.TIMESTAMP:
            if isinstance(value, datetime.date) and not isinstance(
                value, datetime.datetime
            ):
                return datetime.datetime(value.year, value.month, value.day)
            if not isinstance(value, datetime.datetime):
                raise DataError(f"expected {self}, got {value!r}")
            return value
        raise DataError(f"unsupported type {self}")  # pragma: no cover

    # ---- rendering ---------------------------------------------------------

    def __str__(self) -> str:
        if self.kind is TypeKind.DECIMAL:
            return f"decimal({self.precision},{self.scale})"
        if self.is_character and self.length:
            return f"{self.kind.value}({self.length})"
        return self.kind.value


SMALLINT = SqlType(TypeKind.SMALLINT)
INTEGER = SqlType(TypeKind.INTEGER)
BIGINT = SqlType(TypeKind.BIGINT)
REAL = SqlType(TypeKind.REAL)
DOUBLE = SqlType(TypeKind.DOUBLE)
BOOLEAN = SqlType(TypeKind.BOOLEAN)
DATE = SqlType(TypeKind.DATE)
TIMESTAMP = SqlType(TypeKind.TIMESTAMP)


def decimal_type(precision: int, scale: int = 0) -> SqlType:
    """Construct a DECIMAL(precision, scale) type."""
    if not 1 <= precision <= 38:
        raise DataError(f"decimal precision must be in [1, 38], got {precision}")
    if not 0 <= scale <= precision:
        raise DataError(f"decimal scale must be in [0, {precision}], got {scale}")
    return SqlType(TypeKind.DECIMAL, precision=precision, scale=scale)


def char_type(length: int) -> SqlType:
    """Construct a CHAR(length) type."""
    if length < 1:
        raise DataError(f"char length must be positive, got {length}")
    return SqlType(TypeKind.CHAR, length=length)


def varchar_type(length: int = 256) -> SqlType:
    """Construct a VARCHAR(length) type."""
    if length < 1:
        raise DataError(f"varchar length must be positive, got {length}")
    return SqlType(TypeKind.VARCHAR, length=length)


_NAME_ALIASES = {
    "smallint": TypeKind.SMALLINT,
    "int2": TypeKind.SMALLINT,
    "integer": TypeKind.INTEGER,
    "int": TypeKind.INTEGER,
    "int4": TypeKind.INTEGER,
    "bigint": TypeKind.BIGINT,
    "int8": TypeKind.BIGINT,
    "real": TypeKind.REAL,
    "float4": TypeKind.REAL,
    "double precision": TypeKind.DOUBLE,
    "double": TypeKind.DOUBLE,
    "float": TypeKind.DOUBLE,
    "float8": TypeKind.DOUBLE,
    "decimal": TypeKind.DECIMAL,
    "numeric": TypeKind.DECIMAL,
    "boolean": TypeKind.BOOLEAN,
    "bool": TypeKind.BOOLEAN,
    "char": TypeKind.CHAR,
    "character": TypeKind.CHAR,
    "varchar": TypeKind.VARCHAR,
    "character varying": TypeKind.VARCHAR,
    "text": TypeKind.VARCHAR,
    "date": TypeKind.DATE,
    "timestamp": TypeKind.TIMESTAMP,
    "datetime": TypeKind.TIMESTAMP,
}


def type_from_name(name: str, *params: int) -> SqlType:
    """Resolve a type name (as written in SQL) plus optional parameters.

    >>> type_from_name("varchar", 32)
    SqlType(kind=<TypeKind.VARCHAR: 'varchar'>, length=32, precision=0, scale=0)
    """
    kind = _NAME_ALIASES.get(name.strip().lower())
    if kind is None:
        raise DataError(f"unknown type name {name!r}")
    if kind is TypeKind.DECIMAL:
        precision = params[0] if params else 18
        scale = params[1] if len(params) > 1 else 0
        return decimal_type(precision, scale)
    if kind is TypeKind.CHAR:
        return char_type(params[0] if params else 1)
    if kind is TypeKind.VARCHAR:
        return varchar_type(params[0] if params else 256)
    if params:
        raise DataError(f"type {name!r} does not take parameters")
    return SqlType(kind)
