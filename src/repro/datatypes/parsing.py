"""Parsing and rendering of typed values as text.

Used by the COPY path (loading delimited text from the simulated S3) and by
the result-rendering helpers in examples. The accepted formats follow
PostgreSQL's defaults: ISO dates, optional fractional seconds, ``t/f`` and
``true/false`` booleans, and an empty-string-or-NULL marker for NULL.
"""

from __future__ import annotations

import datetime
import decimal

from repro.datatypes.types import SqlType, TypeKind
from repro.errors import DataError

_TRUE_LITERALS = {"t", "true", "y", "yes", "on", "1"}
_FALSE_LITERALS = {"f", "false", "n", "no", "off", "0"}

_TIMESTAMP_FORMATS = (
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S.%f",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)


def parse_literal(text: str, sql_type: SqlType, null_marker: str = "") -> object:
    """Parse a text field into a runtime value of *sql_type*.

    A field equal to *null_marker* parses as NULL. Raises
    :class:`DataError` with the offending text on failure.
    """
    if text == null_marker:
        return None
    kind = sql_type.kind
    try:
        if sql_type.is_integer:
            return sql_type.validate(int(text))
        if sql_type.is_float:
            return sql_type.validate(float(text))
        if kind is TypeKind.DECIMAL:
            return sql_type.validate(decimal.Decimal(text))
        if kind is TypeKind.BOOLEAN:
            lowered = text.strip().lower()
            if lowered in _TRUE_LITERALS:
                return True
            if lowered in _FALSE_LITERALS:
                return False
            raise DataError(f"invalid boolean literal {text!r}")
        if sql_type.is_character:
            return sql_type.validate(text)
        if kind is TypeKind.DATE:
            return sql_type.validate(
                datetime.datetime.strptime(text.strip(), "%Y-%m-%d").date()
            )
        if kind is TypeKind.TIMESTAMP:
            stripped = text.strip()
            for fmt in _TIMESTAMP_FORMATS:
                try:
                    return sql_type.validate(datetime.datetime.strptime(stripped, fmt))
                except ValueError:
                    continue
            raise DataError(f"invalid timestamp literal {text!r}")
    except DataError:
        raise
    except (ValueError, decimal.InvalidOperation) as exc:
        raise DataError(f"invalid {sql_type} literal {text!r}") from exc
    raise DataError(f"unsupported type {sql_type}")  # pragma: no cover


def render_literal(value: object, sql_type: SqlType, null_marker: str = "") -> str:
    """Render a runtime value back to its text form (inverse of parse)."""
    if value is None:
        return null_marker
    kind = sql_type.kind
    if kind is TypeKind.BOOLEAN:
        return "t" if value else "f"
    if kind is TypeKind.DATE:
        return value.isoformat()
    if kind is TypeKind.TIMESTAMP:
        return value.strftime("%Y-%m-%d %H:%M:%S.%f" if value.microsecond else "%Y-%m-%d %H:%M:%S")
    return str(value)
