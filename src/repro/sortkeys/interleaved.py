"""Interleaved (z-curve) sort keys.

Rows are ordered by the Morton code of their key tuple, so blocks stay
range-clustered in *every* key dimension simultaneously. Pruning quality
degrades gracefully as more columns participate and remains useful when the
leading column is absent from the predicate — the property §3.3 of the
paper claims over projections.
"""

from __future__ import annotations

from typing import Sequence

from repro.sortkeys.zorder import ZOrderMapper


class InterleavedSortKey:
    """Orders rows along a z-curve over the named columns."""

    kind = "interleaved"

    def __init__(self, columns: Sequence[str], bits_per_dim: int = 8):
        if not columns:
            raise ValueError("an interleaved sort key needs at least one column")
        self.columns = list(columns)
        self.bits_per_dim = bits_per_dim

    def sort_order(
        self, key_vectors: Sequence[Sequence[object]]
    ) -> list[int]:
        """Return the row permutation ordering rows by z-code.

        The mapper is fitted on the same data being sorted, mirroring how
        the engine computes curve boundaries during VACUUM REINDEX.
        """
        if len(key_vectors) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} key vectors, got {len(key_vectors)}"
            )
        mapper = ZOrderMapper(self.bits_per_dim).fit(key_vectors)
        n = len(key_vectors[0]) if key_vectors else 0
        codes = [
            mapper.code([vec[i] for vec in key_vectors]) for i in range(n)
        ]
        return sorted(range(n), key=codes.__getitem__)

    def describe(self) -> str:
        return f"INTERLEAVED SORTKEY({', '.join(self.columns)})"
