"""C-Store/Vertica-style projections — the baseline the paper argues against.

A projection is a redundant, independently sorted copy of (a subset of) a
table. Queries whose predicate matches some projection's leading sort
column scan that copy with excellent pruning; queries that match none fall
back to a full scan of the base table. Every projection multiplies load
work and storage — the "additional one can greatly impact load time" cost
the paper contrasts with z-curves (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sortkeys.compound import CompoundSortKey


@dataclass
class Projection:
    """One sorted copy: the sort order it maintains."""

    name: str
    sort_columns: tuple[str, ...]

    def serves(self, predicate_column: str) -> bool:
        """A projection prunes well only when the predicate hits its
        leading sort column."""
        return bool(self.sort_columns) and self.sort_columns[0] == predicate_column

    def sort_key(self) -> CompoundSortKey:
        return CompoundSortKey(list(self.sort_columns))


class ProjectionSet:
    """The projections maintained for one table, plus their cost model.

    ``load_amplification`` is the multiplier on ingest work: every loaded
    row must be sorted into and written to each projection. This is the
    quantity the a4 ablation charges against the projection design.
    """

    def __init__(self, table_name: str):
        self.table_name = table_name
        self._projections: list[Projection] = []

    def add(self, name: str, sort_columns: Sequence[str]) -> Projection:
        if any(p.name == name for p in self._projections):
            raise ValueError(
                f"projection {name!r} already exists on {self.table_name!r}"
            )
        projection = Projection(name=name, sort_columns=tuple(sort_columns))
        self._projections.append(projection)
        return projection

    @property
    def projections(self) -> list[Projection]:
        return list(self._projections)

    @property
    def load_amplification(self) -> int:
        """Copies written per loaded row: the base table plus every projection."""
        return 1 + len(self._projections)

    def choose(self, predicate_column: str) -> Projection | None:
        """Pick a projection that serves *predicate_column*, else None
        (meaning the query full-scans the base table)."""
        for projection in self._projections:
            if projection.serves(predicate_column):
                return projection
        return None
