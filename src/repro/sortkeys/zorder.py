"""Z-order (Morton) curves over arbitrary column values.

A z-curve maps a multi-dimensional point to a single integer by bit
interleaving, so that points close in the curve order are close in every
dimension — the property that lets zone maps prune blocks for predicates
on *any* subset of the key columns, not just a leading prefix [Orenstein &
Merrett, PODS'84].

Arbitrary SQL values (strings, dates, floats) are first mapped to bounded
integer ranks by :class:`ZOrderMapper`, which fits per-dimension quantile
boundaries from the data — the same normalisation a real engine performs
so skewed columns still spread across the curve.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence


def interleave(coords: Sequence[int], bits_per_dim: int) -> int:
    """Interleave the low *bits_per_dim* bits of each coordinate.

    Bit ``b`` of dimension ``d`` lands at position ``b * ndims + d`` of the
    result, giving the classic Morton order.

    >>> interleave([0b11, 0b00], 2)
    5
    """
    if bits_per_dim < 1:
        raise ValueError(f"bits_per_dim must be positive, got {bits_per_dim}")
    ndims = len(coords)
    limit = 1 << bits_per_dim
    code = 0
    for d, coord in enumerate(coords):
        if not 0 <= coord < limit:
            raise ValueError(
                f"coordinate {coord} out of range [0, {limit}) "
                f"for {bits_per_dim}-bit dimension {d}"
            )
        for b in range(bits_per_dim):
            if coord & (1 << b):
                code |= 1 << (b * ndims + d)
    return code


def deinterleave(code: int, ndims: int, bits_per_dim: int) -> list[int]:
    """Invert :func:`interleave`.

    >>> deinterleave(5, 2, 2)
    [3, 0]
    """
    if code < 0:
        raise ValueError(f"z-code must be non-negative, got {code}")
    coords = [0] * ndims
    for d in range(ndims):
        for b in range(bits_per_dim):
            if code & (1 << (b * ndims + d)):
                coords[d] |= 1 << b
    return coords


class ZOrderMapper:
    """Maps tuples of arbitrary comparable values to z-codes.

    Fit once on a sample of the key columns; each dimension gets
    ``2**bits_per_dim - 1`` quantile boundaries, and a value's rank is the
    number of boundaries below it. NULL ranks lowest (rank 0), matching
    NULLS FIRST ordering.
    """

    def __init__(self, bits_per_dim: int = 8):
        if not 1 <= bits_per_dim <= 21:
            raise ValueError(
                f"bits_per_dim must be in [1, 21], got {bits_per_dim}"
            )
        self.bits_per_dim = bits_per_dim
        self._boundaries: list[list[object]] | None = None

    @property
    def fitted(self) -> bool:
        return self._boundaries is not None

    @property
    def ndims(self) -> int:
        if self._boundaries is None:
            raise RuntimeError("ZOrderMapper is not fitted")
        return len(self._boundaries)

    def fit(self, dimensions: Sequence[Sequence[object]]) -> "ZOrderMapper":
        """Compute quantile boundaries from one value sequence per dimension."""
        if not dimensions:
            raise ValueError("at least one dimension is required")
        buckets = (1 << self.bits_per_dim) - 1
        boundaries: list[list[object]] = []
        for values in dimensions:
            present = sorted(v for v in values if v is not None)
            if not present:
                boundaries.append([])
                continue
            cuts: list[object] = []
            for i in range(1, buckets + 1):
                idx = min(len(present) - 1, (i * len(present)) // (buckets + 1))
                cuts.append(present[idx])
            # Deduplicate while preserving order so low-cardinality columns
            # get fewer, wider buckets instead of empty ones.
            deduped: list[object] = []
            for cut in cuts:
                if not deduped or cut > deduped[-1]:
                    deduped.append(cut)
            boundaries.append(deduped)
        self._boundaries = boundaries
        return self

    def rank(self, dim: int, value: object) -> int:
        """Rank of *value* along dimension *dim* in [0, 2**bits_per_dim)."""
        if self._boundaries is None:
            raise RuntimeError("ZOrderMapper is not fitted")
        if value is None:
            return 0
        return bisect_right(self._boundaries[dim], value)

    def code(self, key: Sequence[object]) -> int:
        """Z-code of one key tuple."""
        if self._boundaries is None:
            raise RuntimeError("ZOrderMapper is not fitted")
        if len(key) != len(self._boundaries):
            raise ValueError(
                f"key has {len(key)} values, mapper has "
                f"{len(self._boundaries)} dimensions"
            )
        coords = [self.rank(d, v) for d, v in enumerate(key)]
        return interleave(coords, self.bits_per_dim)
