"""Sort-key machinery: compound keys, interleaved (z-curve) keys, and a
C-Store-style projection baseline.

The paper (§3.3) argues for multi-dimensional z-curves over indexes and
projections: "a missing projection can result in a full table scan while an
additional one can greatly impact load time. By comparison, a
multidimensional index using z-curves degrades more gracefully with excess
participation and still provides utility if leading columns are not
specified." This package supplies the pieces the ablation (experiment a4)
compares.
"""

from repro.sortkeys.zorder import (
    interleave,
    deinterleave,
    ZOrderMapper,
)
from repro.sortkeys.compound import CompoundSortKey
from repro.sortkeys.interleaved import InterleavedSortKey
from repro.sortkeys.projection import Projection, ProjectionSet

__all__ = [
    "interleave", "deinterleave", "ZOrderMapper",
    "CompoundSortKey", "InterleavedSortKey",
    "Projection", "ProjectionSet",
]
