"""Compound sort keys: lexicographic ordering over a column list.

A compound key gives perfect block pruning on its leading column and
progressively less on trailing columns — the behaviour the z-curve ablation
(experiment a4) contrasts with interleaved keys.
"""

from __future__ import annotations

from typing import Sequence


class _NullsFirst:
    """Wrapper making heterogenous optional values totally ordered,
    with NULL ordering before every non-NULL value."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_NullsFirst") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullsFirst) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)


class CompoundSortKey:
    """Orders rows lexicographically by the named columns."""

    kind = "compound"

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("a compound sort key needs at least one column")
        self.columns = list(columns)

    def sort_order(
        self, key_vectors: Sequence[Sequence[object]]
    ) -> list[int]:
        """Return the row permutation that sorts rows by this key.

        *key_vectors* holds one value sequence per key column, parallel to
        row offsets.
        """
        if len(key_vectors) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} key vectors, got {len(key_vectors)}"
            )
        n = len(key_vectors[0]) if key_vectors else 0
        return sorted(
            range(n),
            key=lambda i: tuple(_NullsFirst(vec[i]) for vec in key_vectors),
        )

    def describe(self) -> str:
        return f"SORTKEY({', '.join(self.columns)})"
