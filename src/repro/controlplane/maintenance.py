"""Automatic table maintenance — §3.2's future work, implemented.

"Future work will remove the need for user-initiated table administration
operations, making them closer to backup in operation. The database should
be able to determine when data access performance is degrading and take
action to correct itself when load is otherwise light."

The daemon polls table health on the simulation clock, and when a table's
dead-row or unsorted fraction crosses its threshold *and* the cluster is
idle, runs VACUUM on it — turning the last remaining administration
statement into a dusty knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.simclock import ScheduledEvent, SimClock
from repro.engine.cluster import Cluster
from repro.engine.health import cluster_health
from repro.util.units import HOUR


@dataclass(frozen=True)
class MaintenanceAction:
    at: float
    table_name: str
    reason: str
    dead_fraction: float
    unsorted_fraction: float


@dataclass
class AutoMaintenanceDaemon:
    """Polls health and self-corrects with VACUUM when load is light."""

    cluster: Cluster
    clock: SimClock
    dead_threshold: float = 0.15
    unsorted_threshold: float = 0.20
    poll_interval_s: float = 6 * HOUR
    actions: list[MaintenanceAction] = field(default_factory=list)
    _handle: ScheduledEvent | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._session = self.cluster.connect()

    # ---- load signal -----------------------------------------------------

    def load_is_light(self) -> bool:
        """Idle check: no transaction is in flight on the cluster.

        (A production system watches query queues and CPU; the visible
        signal here is active transactions.)
        """
        return self.cluster.transactions.active_count == 0

    # ---- one pass ----------------------------------------------------------

    def poll(self) -> list[MaintenanceAction]:
        """Inspect every table; VACUUM the degraded ones if idle."""
        if not self.load_is_light():
            return []
        performed: list[MaintenanceAction] = []
        for health in cluster_health(self.cluster):
            reasons = []
            if health.dead_fraction >= self.dead_threshold:
                reasons.append(
                    f"dead rows {health.dead_fraction:.0%} >= "
                    f"{self.dead_threshold:.0%}"
                )
            if health.unsorted_fraction >= self.unsorted_threshold:
                reasons.append(
                    f"unsorted {health.unsorted_fraction:.0%} >= "
                    f"{self.unsorted_threshold:.0%}"
                )
            if not reasons:
                continue
            action = MaintenanceAction(
                at=self.clock.now,
                table_name=health.table_name,
                reason="; ".join(reasons),
                dead_fraction=health.dead_fraction,
                unsorted_fraction=health.unsorted_fraction,
            )
            self._session.execute(f"VACUUM {health.table_name}")
            performed.append(action)
            self.actions.append(action)
        return performed

    # ---- scheduling --------------------------------------------------------

    def start(self) -> None:
        """Run automatically every poll interval on the simulation clock."""
        if self._handle is None:
            self._handle = self.clock.schedule_repeating(
                self.poll_interval_s, self.poll
            )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
