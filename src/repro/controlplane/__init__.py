"""The managed-service control plane.

"Most control plane actions are coordinated off-instance by a separate
Amazon Redshift control plane fleet ... Example tasks would include node
replacements, cluster resize, backup, restore, provisioning, patching"
(paper §2.2). This package implements those workflows against the
simulated cloud substrate, plus the console interaction ("clicks") model
behind the paper's time-to-first-report metric and Figure 2.
"""

from repro.controlplane.service import RedshiftService, ManagedCluster, ClusterState
from repro.controlplane.console import ConsoleModel, AdminOperation
from repro.controlplane.patching import PatchManager, EngineRelease, PatchOutcome
from repro.controlplane.hostmanager import HostManager, HostEvent

__all__ = [
    "RedshiftService", "ManagedCluster", "ClusterState",
    "ConsoleModel", "AdminOperation",
    "PatchManager", "EngineRelease", "PatchOutcome",
    "HostManager", "HostEvent",
]
