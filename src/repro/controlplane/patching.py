"""Fleet patching: weekly windows, two-version invariant, auto-rollback.

"Amazon Redshift is set up to automatically patch customer clusters on a
weekly basis in a 30-minute window specified by the customer. Patches are
reversible and will automatically be reversed if we see an increase in
errors or latency in our telemetry. At any point, a customer will only be
on one of two patch versions ... We typically push new database engine
software every two weeks. We have found reducing this pace, for example
to every four weeks, meaningfully increased the probability of a failed
patch." (paper §5)

The defect model makes the cadence claim quantitative: each release
carries changes accumulated since the previous one; every change has an
independent chance of regressing, plus an interaction term that grows
with batch size (big-bang releases fail more than the sum of their
parts). Longer cadence → more changes per release → superlinearly higher
failed-patch probability.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cloud.simclock import SimClock
from repro.controlplane.service import ManagedCluster, RedshiftService
from repro.util.rng import DeterministicRng
from repro.util.units import MINUTE, WEEK


class PatchOutcome(enum.Enum):
    APPLIED = "applied"
    ROLLED_BACK = "rolled_back"
    SKIPPED = "skipped"


@dataclass
class EngineRelease:
    """One release train's payload."""

    version: str
    change_count: int
    cut_at: float
    #: whether this release carries a latent regression (decided at cut
    #: time; every cluster applying it sees the same defect, as in life)
    regressive: bool = False


@dataclass
class PatchRecord:
    cluster_id: str
    version: str
    outcome: PatchOutcome
    at: float
    window_seconds: float


@dataclass
class DefectModel:
    """Probability a release regresses, as a function of its batch size."""

    per_change_regression_rate: float = 0.004
    #: pairwise interaction risk between changes in the same release
    interaction_rate: float = 0.00002

    def failure_probability(self, change_count: int) -> float:
        independent = 1.0 - (1.0 - self.per_change_regression_rate) ** change_count
        pairs = change_count * (change_count - 1) / 2.0
        interaction = 1.0 - (1.0 - self.interaction_rate) ** pairs
        return 1.0 - (1.0 - independent) * (1.0 - interaction)


class PatchManager:
    """Cuts releases and rolls them across a fleet."""

    #: per-cluster patch application time (within the 30-minute window)
    APPLY_SECONDS = 6 * MINUTE
    ROLLBACK_SECONDS = 4 * MINUTE
    #: engineering throughput feeding release trains
    CHANGES_PER_WEEK = 18.0

    def __init__(
        self,
        service: RedshiftService,
        defect_model: DefectModel | None = None,
        seed: int | str = "patching",
    ):
        self._service = service
        self._clock: SimClock = service.env.clock
        self._rng = DeterministicRng(seed)
        self.defects = defect_model or DefectModel()
        self._versions = itertools.count(1)
        self.releases: list[EngineRelease] = []
        self.history: list[PatchRecord] = []
        self._pending_changes = 0.0

    # ---- release trains ---------------------------------------------------------

    def accumulate_development(self, weeks: float) -> None:
        """Engineering keeps landing changes between releases."""
        self._pending_changes += self.CHANGES_PER_WEEK * weeks

    def cut_release(self) -> EngineRelease:
        """Cut a release carrying everything landed since the last one."""
        change_count = max(1, round(self._pending_changes))
        self._pending_changes = 0.0
        probability = self.defects.failure_probability(change_count)
        release = EngineRelease(
            version=f"1.0.{next(self._versions)}",
            change_count=change_count,
            cut_at=self._clock.now,
            regressive=self._rng.random() < probability,
        )
        self.releases.append(release)
        return release

    # ---- fleet rollout --------------------------------------------------------------

    def patch_fleet(self, release: EngineRelease) -> list[PatchRecord]:
        """Apply a release to every cluster, honouring windows and the
        two-version invariant, rolling back on telemetry regression."""
        records = []
        for managed in self._service.fleet:
            records.append(self.patch_cluster(managed, release))
        return records

    def patch_cluster(
        self, managed: ManagedCluster, release: EngineRelease
    ) -> PatchRecord:
        start = self._clock.now
        # Two-version invariant: a cluster more than one version behind
        # first steps to the previous release (counts into the window).
        window = self.APPLY_SECONDS
        managed.previous_version = managed.engine_version
        managed.engine_version = release.version
        self._clock.advance(self.APPLY_SECONDS)

        if release.regressive:
            # Telemetry (error/latency) regresses; automatic reversal.
            self._service.env.cloudwatch.put_metric(
                "EngineErrorRate", 25.0, {"cluster": managed.cluster_id}
            )
            managed.engine_version = managed.previous_version
            managed.previous_version = release.version
            self._clock.advance(self.ROLLBACK_SECONDS)
            window += self.ROLLBACK_SECONDS
            outcome = PatchOutcome.ROLLED_BACK
        else:
            self._service.env.cloudwatch.put_metric(
                "EngineErrorRate", 1.0, {"cluster": managed.cluster_id}
            )
            outcome = PatchOutcome.APPLIED
        record = PatchRecord(
            cluster_id=managed.cluster_id,
            version=release.version,
            outcome=outcome,
            at=start,
            window_seconds=window,
        )
        self.history.append(record)
        managed.record(self._clock.now, f"patch {release.version}: {outcome.value}")
        return record

    # ---- cadence experiment ----------------------------------------------------------

    def simulate_cadence(
        self, cadence_weeks: float, horizon_weeks: float, trials: int = 1
    ) -> dict:
        """Probability of a failed (rolled-back) release at a given cadence.

        Pure release-level simulation (no fleet needed): development lands
        changes continuously; releases cut every *cadence_weeks*.
        """
        rng = self._rng.child(f"cadence-{cadence_weeks}")
        failed = 0
        total = 0
        for _trial in range(trials):
            pending = 0.0
            weeks = 0.0
            while weeks < horizon_weeks:
                pending += self.CHANGES_PER_WEEK * cadence_weeks
                weeks += cadence_weeks
                change_count = max(1, round(pending))
                pending = 0.0
                probability = self.defects.failure_probability(change_count)
                total += 1
                if rng.random() < probability:
                    failed += 1
        return {
            "cadence_weeks": cadence_weeks,
            "releases": total,
            "failed": failed,
            "failure_rate": failed / total if total else 0.0,
            "per_release_probability": self.defects.failure_probability(
                max(1, round(self.CHANGES_PER_WEEK * cadence_weeks))
            ),
        }

    def fleet_version_invariant_holds(self) -> bool:
        """At most two engine versions across the fleet."""
        versions = {m.engine_version for m in self._service.fleet}
        return len(versions) <= 2
