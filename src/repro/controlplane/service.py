"""RedshiftService: the customer-facing managed-warehouse API.

One facade owning the fleet: create/delete clusters, snapshot, restore
(full or streaming), resize, enable encryption and disaster recovery —
each implemented as an SWF workflow over the simulated cloud substrate,
with durations accumulating on the shared simulation clock. These
workflows are the generators of Figure 2 and the provisioning claims
(15-minute cold creates, 3-minute warm-pool creates).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.backup.manager import BackupManager, SnapshotRecord
from repro.cloud.environment import CloudEnvironment
from repro.cloud.swf import Workflow
from repro.controlplane.console import AdminOperation, ConsoleModel
from repro.controlplane.hostmanager import HostManager
from repro.engine.cluster import Cluster
from repro.errors import (
    ClusterNotFoundError,
    InsufficientCapacityError,
    InvalidClusterStateError,
    TransientServiceError,
)
from repro.faults.recovery import RecoveryCoordinator
from repro.faults.retry import RetryPolicy, with_backoff
from repro.replication.mirror import ReplicationManager
from repro.restore.manager import RestoreManager, RestoreResult
from repro.security.keyhierarchy import ClusterKeyHierarchy
from repro.util.units import MB, MINUTE

#: node-to-node copy bandwidth during resize
RESIZE_BANDWIDTH = 120 * MB
#: per-node engine install + configure time during provisioning
ENGINE_INSTALL_S = 80.0
#: endpoint (DNS) creation / flip
ENDPOINT_S = 25.0
#: network (VPC) setup
NETWORK_SETUP_S = 20.0


class ClusterState(enum.Enum):
    CREATING = "creating"
    AVAILABLE = "available"
    READ_ONLY = "read_only"
    RESIZING = "resizing"
    RESTORING = "restoring"
    DELETED = "deleted"


@dataclass
class ManagedCluster:
    """A cluster plus everything the service manages around it."""

    cluster_id: str
    engine: Cluster
    node_type: str
    state: ClusterState
    created_at: float
    engine_version: str = "1.0.0"
    previous_version: str | None = None
    backups: BackupManager | None = None
    replication: ReplicationManager | None = None
    encryption: ClusterKeyHierarchy | None = None
    host_managers: dict[str, HostManager] = field(default_factory=dict)
    instance_ids: list[str] = field(default_factory=list)
    maintenance_window_hour: int = 3  # weekly window start (hour of day)
    events: list[tuple[float, str]] = field(default_factory=list)
    #: Set on concurrency-scaling burst clusters: the cluster id this
    #: one bursts for. Burst clusters carry no backups/replication of
    #: their own — they are disposable snapshot clones.
    burst_of: str | None = None

    def record(self, clock_now: float, message: str) -> None:
        self.events.append((clock_now, message))

    def connect(self, executor: str = "compiled"):
        if self.state not in (ClusterState.AVAILABLE, ClusterState.READ_ONLY):
            raise InvalidClusterStateError(
                f"cluster {self.cluster_id} is {self.state.value}"
            )
        return self.engine.connect(executor)


@dataclass
class OperationTiming:
    """What an admin operation cost: human clicks + automated seconds."""

    operation: AdminOperation
    click_seconds: float
    automated_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.click_seconds + self.automated_seconds


class RedshiftService:
    """The control plane entry point."""

    def __init__(
        self,
        env: CloudEnvironment | None = None,
        console: ConsoleModel | None = None,
    ):
        self.env = env or CloudEnvironment()
        self.console = console or ConsoleModel()
        self.clusters: dict[str, ManagedCluster] = {}
        self._ids = itertools.count(1)
        self.operation_log: list[tuple[str, OperationTiming]] = []
        self._retry_rng = self.env.rng.child("controlplane-retry")

    # ---- helpers ------------------------------------------------------------

    def cluster(self, cluster_id: str) -> ManagedCluster:
        managed = self.clusters.get(cluster_id)
        if managed is None or managed.state is ClusterState.DELETED:
            raise ClusterNotFoundError(cluster_id)
        return managed

    def _cluster_record(self, cluster_id: str) -> ManagedCluster:
        """Like :meth:`cluster` but also returns deleted clusters — their
        snapshots outlive them (the Friday-delete/Monday-restore pattern)."""
        managed = self.clusters.get(cluster_id)
        if managed is None:
            raise ClusterNotFoundError(cluster_id)
        return managed

    def _log(self, cluster_id: str, timing: OperationTiming) -> None:
        self.operation_log.append((cluster_id, timing))
        self.env.cloudtrail.record(
            actor="customer",
            action=f"redshift:{timing.operation.value}",
            resource=cluster_id,
            parameters={
                "automated_seconds": f"{timing.automated_seconds:.1f}",
            },
        )

    def _provision(self, node_type: str, count: int, allow_cold: bool = True):
        """EC2 provision with backed-off retry: transient service errors
        and capacity gaps get a few spaced attempts before the typed error
        surfaces to the caller."""
        return with_backoff(
            lambda: self.env.ec2.provision(node_type, count, allow_cold),
            clock=self.env.clock,
            policy=RetryPolicy(max_attempts=4, base_delay_s=2.0, max_delay_s=20.0),
            rng=self._retry_rng,
            retry_on=(TransientServiceError, InsufficientCapacityError),
        )

    def _install_recovery(self, managed: ManagedCluster) -> None:
        """Attach the shared fault injector and stand up query recovery.

        Every cluster the service runs gets leader-side segment retry with
        replica failover and scrub-and-repair; redundancy loss flips the
        managed state to READ_ONLY instead of failing the cluster."""
        engine = managed.engine
        engine.attach_faults(self.env.faults)
        # System-table timestamps follow the simulation clock so stl_query
        # rows line up with CloudTrail entries and CloudWatch points.
        engine.systables.bind_clock(self.env.clock)
        if managed.replication is None:
            return
        clock = self.env.clock

        def on_degraded(reason: str) -> None:
            managed.state = ClusterState.READ_ONLY
            managed.record(clock.now, f"degraded: {reason}")

        def on_recovered() -> None:
            managed.state = ClusterState.AVAILABLE
            managed.record(clock.now, "redundancy restored")

        RecoveryCoordinator(
            engine,
            replication=managed.replication,
            s3_reader=(
                managed.backups.s3_block_reader
                if managed.backups is not None
                else None
            ),
            injector=self.env.faults,
            clock=clock,
            on_degraded=on_degraded,
            on_recovered=on_recovered,
        )

    # ---- create -----------------------------------------------------------------

    def create_cluster(
        self,
        cluster_id: str | None = None,
        node_count: int = 2,
        node_type: str = "dw2.large",
        slices_per_node: int = 2,
        block_capacity: int = 4096,
        encrypted: bool = False,
        use_warm_pool: bool = True,
    ) -> tuple[ManagedCluster, OperationTiming]:
        """Provision a cluster; returns it plus the operation timing.

        The workflow mirrors §3.1: network setup, instance acquisition
        (warm pool first), parallel engine install, endpoint creation.
        """
        cluster_id = cluster_id or f"cluster-{next(self._ids):04d}"
        if cluster_id in self.clusters and self.clusters[
            cluster_id
        ].state is not ClusterState.DELETED:
            raise InvalidClusterStateError(
                f"cluster {cluster_id!r} already exists"
            )
        clock = self.env.clock
        start = clock.now
        captured: dict = {}

        def acquire_instances() -> float:
            instances, duration = self.env.ec2.provision(
                node_type, node_count, allow_cold=True
            ) if use_warm_pool else self.env.ec2.provision(
                node_type, node_count, allow_cold=True
            )
            captured["instances"] = instances
            return duration

        workflow = (
            Workflow(name="create_cluster")
            .step("setup_network", lambda: NETWORK_SETUP_S)
            .step(
                "acquire_instances",
                acquire_instances,
                max_attempts=4,
                retry_delay_s=10.0,
                backoff_factor=2.0,
                max_delay_s=120.0,
            )
            .step("install_engine", lambda: ENGINE_INSTALL_S)
            .step("create_endpoint", lambda: ENDPOINT_S)
        )
        self.env.swf.run(workflow)

        engine = Cluster(
            node_count=node_count,
            slices_per_node=slices_per_node,
            block_capacity=block_capacity,
            node_type=node_type,
        )
        managed = ManagedCluster(
            cluster_id=cluster_id,
            engine=engine,
            node_type=node_type,
            state=ClusterState.AVAILABLE,
            created_at=clock.now,
            instance_ids=[i.instance_id for i in captured.get("instances", [])],
        )
        if encrypted:
            master = self.env.kms.create_master_key(f"{cluster_id}-master")
            managed.encryption = ClusterKeyHierarchy(
                self.env.kms, master, cluster_id
            )
        managed.backups = BackupManager(
            engine,
            self.env.s3,
            f"{cluster_id}-backup",
            clock,
            managed.encryption,
        )
        managed.replication = ReplicationManager(engine) if node_count >= 2 else None
        for node in engine.nodes:
            managed.host_managers[node.node_id] = HostManager(
                node_id=node.node_id, clock=clock
            )
        self._install_recovery(managed)
        self.clusters[cluster_id] = managed
        managed.record(clock.now, "cluster created")

        timing = OperationTiming(
            operation=AdminOperation.DEPLOY,
            click_seconds=self.console.click_time(AdminOperation.DEPLOY),
            automated_seconds=clock.now - start,
        )
        self._log(cluster_id, timing)
        self.env.cloudwatch.put_metric(
            "ClusterCreateSeconds", timing.automated_seconds,
            {"node_count": str(node_count)},
        )
        return managed, timing

    def connect_timing(self, cluster_id: str) -> OperationTiming:
        """Console time to find the endpoint and connect a SQL client."""
        self.cluster(cluster_id)  # validate
        timing = OperationTiming(
            operation=AdminOperation.CONNECT,
            click_seconds=self.console.click_time(AdminOperation.CONNECT),
            automated_seconds=5.0,  # driver handshake
        )
        self._log(cluster_id, timing)
        return timing

    def time_to_first_report(
        self, node_count: int = 2, node_type: str = "dw2.large"
    ) -> float:
        """The §1 metric: decide → create → connect → first query result."""
        managed, deploy = self.create_cluster(
            node_count=node_count, node_type=node_type
        )
        connect = self.connect_timing(managed.cluster_id)
        session = managed.connect()
        session.execute("SELECT 1 x")
        first_query = 2.0  # leader round trip at console scale
        return deploy.total_seconds + connect.total_seconds + first_query

    # ---- delete -------------------------------------------------------------------

    def delete_cluster(
        self, cluster_id: str, final_snapshot: bool = False
    ) -> SnapshotRecord | None:
        managed = self.cluster(cluster_id)
        record = None
        if final_snapshot and managed.backups is not None:
            record = managed.backups.snapshot(
                "user", label=f"{cluster_id}-final"
            )
        for instance_id in managed.instance_ids:
            self.env.ec2.terminate(instance_id)
        managed.state = ClusterState.DELETED
        managed.record(self.env.clock.now, "cluster deleted")
        self.env.cloudtrail.record(
            actor="customer",
            action="redshift:delete",
            resource=cluster_id,
            parameters={"final_snapshot": final_snapshot},
        )
        return record

    # ---- snapshot / restore -----------------------------------------------------------

    def snapshot_cluster(
        self, cluster_id: str, label: str | None = None, kind: str = "user"
    ) -> tuple[SnapshotRecord, OperationTiming]:
        managed = self.cluster(cluster_id)
        start = self.env.clock.now
        record = managed.backups.snapshot(kind, label=label)
        timing = OperationTiming(
            operation=AdminOperation.BACKUP,
            click_seconds=self.console.click_time(AdminOperation.BACKUP)
            if kind == "user"
            else 0.0,
            automated_seconds=self.env.clock.now - start,
        )
        self._log(cluster_id, timing)
        return record, timing

    def restore_cluster(
        self,
        source_cluster_id: str,
        snapshot_id: str,
        new_cluster_id: str | None = None,
        streaming: bool = True,
    ) -> tuple[ManagedCluster, RestoreResult, OperationTiming]:
        """Restore a snapshot into a brand-new cluster."""
        source = self._cluster_record(source_cluster_id)
        clock = self.env.clock
        start = clock.now
        new_cluster_id = new_cluster_id or f"{source_cluster_id}-restored"

        manager = RestoreManager(
            self.env.s3,
            source.backups.bucket,
            clock,
            source.encryption,
        )
        # Instances first (the restored cluster needs hardware too).
        manifest_nodes = source.engine.node_count
        _instances, boot = self._provision(source.node_type, manifest_nodes)
        clock.advance(boot)
        result = (
            manager.streaming_restore(snapshot_id)
            if streaming
            else manager.full_restore(snapshot_id)
        )
        managed = ManagedCluster(
            cluster_id=new_cluster_id,
            engine=result.cluster,
            node_type=source.node_type,
            state=ClusterState.AVAILABLE,
            created_at=clock.now,
        )
        managed.backups = BackupManager(
            result.cluster,
            self.env.s3,
            f"{new_cluster_id}-backup",
            clock,
            source.encryption,
        )
        managed.replication = (
            ReplicationManager(result.cluster)
            if result.cluster.node_count >= 2
            else None
        )
        self._install_recovery(managed)
        self.clusters[new_cluster_id] = managed
        managed.record(clock.now, f"restored from {snapshot_id}")
        timing = OperationTiming(
            operation=AdminOperation.RESTORE,
            click_seconds=self.console.click_time(AdminOperation.RESTORE),
            automated_seconds=clock.now - start,
        )
        self._log(new_cluster_id, timing)
        return managed, result, timing

    # ---- concurrency scaling ----------------------------------------------------------

    def provision_burst_cluster(
        self,
        cluster_id: str,
        snapshot_id: str | None = None,
        burst_cluster_id: str | None = None,
        streaming: bool = False,
    ):
        """Stand up a concurrency-scaling burst cluster for *cluster_id*.

        Restores the latest snapshot (taking one first if none exists)
        onto freshly provisioned instances and returns a
        :class:`repro.server.burst.BurstCluster` carrying the snapshot's
        captured table epochs — the router's freshness oracle. Burst
        clusters deliberately get **no** recovery coordinator,
        replication, or backups: they are disposable; a fault mid-query
        propagates to the router, which falls back to main and retires
        the clone.
        """
        from repro.server.burst import BurstCluster

        source = self.cluster(cluster_id)
        if source.backups is None:
            raise InvalidClusterStateError(
                f"cluster {cluster_id} has no backups to burst from"
            )
        clock = self.env.clock
        start = clock.now
        if snapshot_id is None:
            if source.backups.snapshots:
                snapshot_id = source.backups.snapshots[-1].snapshot_id
            else:
                snapshot_id = source.backups.snapshot("system").snapshot_id
        burst_id = burst_cluster_id or f"{cluster_id}-burst-{next(self._ids)}"

        manager = RestoreManager(
            self.env.s3,
            source.backups.bucket,
            clock,
            source.encryption,
        )
        instances, boot = self._provision(
            source.node_type, source.engine.node_count
        )
        clock.advance(boot)
        try:
            result = (
                manager.streaming_restore(snapshot_id)
                if streaming
                else manager.full_restore(snapshot_id)
            )
        except Exception:
            # A failed restore (S3 outage mid-fetch) must not strand the
            # instances it would have used.
            for instance in instances:
                self.env.ec2.terminate(instance.instance_id)
            raise
        engine = result.cluster
        engine.attach_faults(self.env.faults)
        engine.systables.bind_clock(clock)
        managed = ManagedCluster(
            cluster_id=burst_id,
            engine=engine,
            node_type=source.node_type,
            state=ClusterState.AVAILABLE,
            created_at=clock.now,
            instance_ids=[i.instance_id for i in instances],
            burst_of=cluster_id,
        )
        self.clusters[burst_id] = managed
        managed.record(clock.now, f"burst cluster from {snapshot_id}")
        source.record(clock.now, f"burst cluster {burst_id} attached")
        self.env.cloudtrail.record(
            actor="service",
            action="redshift:burst-provision",
            resource=burst_id,
            parameters={
                "source": cluster_id,
                "snapshot": snapshot_id,
                "automated_seconds": f"{clock.now - start:.1f}",
            },
        )
        return (
            BurstCluster(
                cluster_id=burst_id,
                cluster=engine,
                snapshot_id=snapshot_id,
                snapshot_epochs=dict(result.table_epochs),
                provisioned_at=clock.now,
            ),
            result,
        )

    def retire_burst_cluster(self, burst_cluster_id: str) -> None:
        """Release a burst cluster's instances and mark it deleted."""
        managed = self.clusters.get(burst_cluster_id)
        if managed is None or managed.state is ClusterState.DELETED:
            return
        for instance_id in managed.instance_ids:
            self.env.ec2.terminate(instance_id)
        managed.state = ClusterState.DELETED
        managed.record(self.env.clock.now, "burst cluster retired")
        self.env.cloudtrail.record(
            actor="service",
            action="redshift:burst-retire",
            resource=burst_cluster_id,
            parameters={"source": managed.burst_of or ""},
        )

    def enable_concurrency_scaling(
        self,
        cluster_id: str,
        server,
        config=None,
    ):
        """Wire a :class:`~repro.server.burst.BurstRouter` onto *server*.

        The router owns the when (queue-pressure trigger, idle
        retirement); this service owns the how (snapshot restore onto
        EC2, instance teardown) via the provision/retire callables.
        Returns the attached router.
        """
        from repro.server.burst import BurstConfig, BurstRouter

        config = config or BurstConfig()
        self.cluster(cluster_id)  # validate up front

        def provision():
            burst, _result = self.provision_burst_cluster(cluster_id)
            return burst

        def retire(burst):
            self.retire_burst_cluster(burst.cluster_id)

        router = BurstRouter(server, config, provision, retire)
        server.burst_router = router
        return router

    # ---- resize ---------------------------------------------------------------------------

    def resize_cluster(
        self,
        cluster_id: str,
        new_node_count: int,
        new_node_type: str | None = None,
    ) -> tuple[ManagedCluster, OperationTiming]:
        """Resize by parallel copy to a freshly provisioned cluster.

        "We provision a new cluster, put the original cluster in read-only
        mode, and run a parallel node-to-node copy from source cluster to
        target. The source cluster is available for reads until the
        operation completes, at which time, we move the SQL endpoint and
        decommission the source" (§3.1).
        """
        managed = self.cluster(cluster_id)
        if managed.state is not ClusterState.AVAILABLE:
            raise InvalidClusterStateError(
                f"cluster {cluster_id} is {managed.state.value}, not available"
            )
        clock = self.env.clock
        start = clock.now
        node_type = new_node_type or managed.node_type

        # 1. Provision the target (warm pool first).
        _instances, boot = self._provision(node_type, new_node_count)
        clock.advance(boot + ENGINE_INSTALL_S)

        # 2. Source goes read-only; reads keep working.
        managed.state = ClusterState.READ_ONLY
        managed.record(clock.now, "resize started: source read-only")

        # 3. Parallel node-to-node copy.
        source = managed.engine
        target = Cluster(
            node_count=new_node_count,
            slices_per_node=len(source.nodes[0].slices),
            block_capacity=source.block_capacity,
            node_type=node_type,
        )
        total_bytes = 0
        for name in source.catalog.table_names():
            info = source.catalog.table(name)
            target.catalog.create_table(info)
            target.create_table_storage(info)
            rows = self._read_table_rows(source, name)
            target.distribute_rows(info, rows, xid=0, validate=False)
            target.seal_table(name)
            total_bytes += source.table_bytes(name)
        streams = min(source.node_count, new_node_count)
        copy_seconds = total_bytes / (RESIZE_BANDWIDTH * max(1, streams))
        clock.advance(copy_seconds)

        # 4. Flip the endpoint, decommission the source.
        clock.advance(ENDPOINT_S)
        for instance_id in managed.instance_ids:
            self.env.ec2.terminate(instance_id)
        managed.engine = target
        managed.node_type = node_type
        managed.state = ClusterState.AVAILABLE
        managed.replication = (
            ReplicationManager(target) if new_node_count >= 2 else None
        )
        managed.backups = BackupManager(
            target,
            self.env.s3,
            f"{cluster_id}-backup-{clock.now:.0f}",
            clock,
            managed.encryption,
        )
        managed.host_managers = {
            node.node_id: HostManager(node_id=node.node_id, clock=clock)
            for node in target.nodes
        }
        self._install_recovery(managed)
        managed.record(clock.now, f"resized to {new_node_count} nodes")
        timing = OperationTiming(
            operation=AdminOperation.RESIZE,
            click_seconds=self.console.click_time(AdminOperation.RESIZE),
            automated_seconds=clock.now - start,
        )
        self._log(cluster_id, timing)
        return managed, timing

    @staticmethod
    def _read_table_rows(cluster: Cluster, table_name: str):
        """All visible rows of a table (resize source is read-only)."""
        from repro.distribution.diststyle import DistStyle
        from repro.exec.scan import scan_shard

        info = cluster.catalog.table(table_name)
        snapshot = cluster.transactions.snapshot_latest()
        rows: list[tuple] = []
        for store in cluster.slice_stores:
            if not store.has_shard(table_name):
                continue
            rows.extend(
                scan_shard(
                    store.shard(table_name), info.column_names, [], snapshot
                )
            )
            if info.distribution.style is DistStyle.ALL:
                break
        return rows

    # ---- node replacement -------------------------------------------------------------------

    def replace_node(
        self, cluster_id: str, node_id: str
    ) -> tuple[float, int]:
        """Replace a failed node: new instance, re-replicate its slices.

        §2.2 lists "node replacements" first among control-plane tasks and
        §5 explains the warm pool keeps replacements flowing "if there is
        an Amazon EC2 provisioning interruption". Returns (simulated
        seconds, bytes restored).
        """
        managed = self.cluster(cluster_id)
        clock = self.env.clock
        start = clock.now
        node = next(
            (n for n in managed.engine.nodes if n.node_id == node_id), None
        )
        if node is None:
            raise InvalidClusterStateError(
                f"cluster {cluster_id} has no node {node_id!r}"
            )

        # 1. Acquire replacement hardware (warm pool first, §5).
        instances, boot = self._provision(managed.node_type, 1)
        clock.advance(boot + ENGINE_INSTALL_S)
        managed.instance_ids.append(instances[0].instance_id)

        # 2. Rebuild the node's slices from replicas (and S3 if needed).
        restored = 0
        if managed.replication is not None:
            s3_reader = (
                managed.backups.s3_block_reader
                if managed.backups is not None
                else None
            )
            for sl in node.slices:
                nbytes, duration = managed.replication.recover_slice(
                    sl.slice_id, s3_reader
                )
                restored += nbytes
                clock.advance(duration)

        # 3. Fresh host manager for the new hardware.
        managed.host_managers[node_id] = HostManager(
            node_id=node_id, clock=clock
        )
        managed.record(clock.now, f"node {node_id} replaced")
        self.env.cloudtrail.record(
            actor="control-plane",
            action="redshift:replace_node",
            resource=cluster_id,
            parameters={"node": node_id, "restored_bytes": restored},
        )
        return clock.now - start, restored

    # ---- feature toggles ----------------------------------------------------------------------

    def enable_encryption(self, cluster_id: str) -> OperationTiming:
        """§3.2: 'Enabling encryption requires setting a checkbox.'"""
        managed = self.cluster(cluster_id)
        start = self.env.clock.now
        if managed.encryption is None:
            master = self.env.kms.create_master_key(f"{cluster_id}-master")
            managed.encryption = ClusterKeyHierarchy(
                self.env.kms, master, cluster_id
            )
            managed.backups = BackupManager(
                managed.engine,
                self.env.s3,
                f"{cluster_id}-backup-encrypted",
                self.env.clock,
                managed.encryption,
            )
            # Existing data re-encrypts in the background.
            self.env.clock.advance(
                managed.engine.total_bytes() / (80 * MB) + 30.0
            )
        timing = OperationTiming(
            operation=AdminOperation.ENABLE_ENCRYPTION,
            click_seconds=self.console.click_time(
                AdminOperation.ENABLE_ENCRYPTION
            ),
            automated_seconds=self.env.clock.now - start,
        )
        self._log(cluster_id, timing)
        return timing

    def enable_disaster_recovery(
        self, cluster_id: str, region: str
    ) -> OperationTiming:
        """§3.2: DR 'only requires setting a checkbox and specifying the
        region'."""
        managed = self.cluster(cluster_id)
        start = self.env.clock.now
        remote = self.env.add_remote_region(region)
        managed.backups.enable_disaster_recovery(remote.s3)
        timing = OperationTiming(
            operation=AdminOperation.ENABLE_DR,
            click_seconds=self.console.click_time(AdminOperation.ENABLE_DR),
            automated_seconds=self.env.clock.now - start,
        )
        self._log(cluster_id, timing)
        return timing

    # ---- observability ---------------------------------------------------------------------------

    def publish_query_metrics(self, cluster_id: str) -> dict[str, float]:
        """Publish one cluster's query telemetry into CloudWatch.

        The numbers come out of the cluster's own ``stl_query`` system
        table through ordinary SQL — the control plane is just another
        client of the warehouse's self-description. Emits ``QueryCount``,
        ``QueryErrors`` and ``QueryLatencyUs`` (mean over successes) under
        a ``cluster_id`` dimension and returns the published values.

        The aggregation statement itself lands in ``stl_query`` only
        after it completes, so it never counts itself; it will show up in
        the *next* publish, like any other client query.
        """
        managed = self.cluster(cluster_id)
        session = managed.connect()
        rows = session.execute(
            "SELECT state, count(*) n, sum(elapsed_us) total_us "
            "FROM stl_query GROUP BY state"
        ).rows
        by_state = {state: (n, total_us or 0) for state, n, total_us in rows}
        successes, success_us = by_state.get("success", (0, 0))
        errors, _ = by_state.get("error", (0, 0))
        metrics = {
            "QueryCount": float(successes + errors),
            "QueryErrors": float(errors),
            "QueryLatencyUs": (success_us / successes) if successes else 0.0,
        }
        dimensions = {"cluster_id": cluster_id}
        for name, value in metrics.items():
            self.env.cloudwatch.put_metric(name, value, dimensions)
        return metrics

    # ---- fleet view ------------------------------------------------------------------------------

    @property
    def fleet(self) -> list[ManagedCluster]:
        return [
            m
            for m in self.clusters.values()
            if m.state is not ClusterState.DELETED
        ]

    def fleet_versions(self) -> set[str]:
        return {m.engine_version for m in self.fleet}
