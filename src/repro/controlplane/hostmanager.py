"""Per-node host manager.

"Each Amazon Redshift node has host manager software that helps with
deploying new database engine bits, aggregating events and metrics,
generating instance-level events, archiving and rotating logs, and
monitoring the host, database and log files for errors. The host manager
also has limited capability to perform actions, for example, restarting a
database process on failure" (paper §2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cloud.simclock import SimClock


class HostEventKind(enum.Enum):
    PROCESS_CRASH = "process_crash"
    PROCESS_RESTARTED = "process_restarted"
    NODE_UNHEALTHY = "node_unhealthy"
    REPLACEMENT_REQUESTED = "replacement_requested"
    LOG_ROTATED = "log_rotated"
    SCRUB_COMPLETED = "scrub_completed"
    BLOCK_REPAIRED = "block_repaired"


@dataclass(frozen=True)
class HostEvent:
    node_id: str
    kind: HostEventKind
    at: float
    detail: str = ""


@dataclass
class HostManager:
    """Monitors one node; restarts the engine process; escalates."""

    node_id: str
    clock: SimClock
    #: polling cadence for crash detection
    poll_interval_s: float = 30.0
    #: engine restart duration
    restart_s: float = 45.0
    #: crashes within the escalation window before asking for replacement
    escalation_threshold: int = 3
    escalation_window_s: float = 3600.0

    events: list[HostEvent] = field(default_factory=list)
    process_running: bool = True
    _recent_crashes: list[float] = field(default_factory=list)

    def crash_process(self) -> None:
        """Failure injection: the engine process dies."""
        self.process_running = False
        self.events.append(
            HostEvent(self.node_id, HostEventKind.PROCESS_CRASH, self.clock.now)
        )

    def poll(self) -> HostEvent | None:
        """One monitoring pass: detect and repair a dead process.

        Returns the most significant event generated, if any. Detection
        costs up to one poll interval, restart a fixed restart time —
        together the "degrade, don't fail" window for the node.
        """
        if self.process_running:
            return None
        # Detection + restart consume simulated time.
        self.clock.advance(self.restart_s)
        self.process_running = True
        now = self.clock.now
        self._recent_crashes = [
            t for t in self._recent_crashes if t >= now - self.escalation_window_s
        ]
        self._recent_crashes.append(now)
        restarted = HostEvent(
            self.node_id, HostEventKind.PROCESS_RESTARTED, now
        )
        self.events.append(restarted)
        if len(self._recent_crashes) >= self.escalation_threshold:
            escalation = HostEvent(
                self.node_id,
                HostEventKind.REPLACEMENT_REQUESTED,
                now,
                detail=f"{len(self._recent_crashes)} crashes in window",
            )
            self.events.append(escalation)
            return escalation
        return restarted

    #: per-block checksum verification cost charged by :meth:`run_scrub`
    SCRUB_SECONDS_PER_BLOCK = 0.01

    def run_scrub(self, replication, s3_reader=None) -> HostEvent:
        """Monitoring pass over this node's blocks: checksum-verify every
        replicated copy the node holds and repair corrupt ones via the
        replication manager (mirror first, S3 backup as the fallback).

        This is the host manager's "monitoring ... for errors" duty
        extended to silent data corruption. Returns the summary event.
        """
        report = replication.scrub(s3_reader, node_id=self.node_id)
        self.clock.advance(report.blocks_checked * self.SCRUB_SECONDS_PER_BLOCK)
        for block_id in report.repaired:
            self.events.append(
                HostEvent(
                    self.node_id,
                    HostEventKind.BLOCK_REPAIRED,
                    self.clock.now,
                    detail=block_id,
                )
            )
        summary = HostEvent(
            self.node_id,
            HostEventKind.SCRUB_COMPLETED,
            self.clock.now,
            detail=(
                f"{report.blocks_checked} checked, "
                f"{len(report.repaired)} repaired, "
                f"{len(report.unrepairable)} unrepairable"
            ),
        )
        self.events.append(summary)
        return summary

    def rotate_logs(self) -> HostEvent:
        event = HostEvent(self.node_id, HostEventKind.LOG_ROTATED, self.clock.now)
        self.events.append(event)
        return event

    @property
    def crash_count(self) -> int:
        return sum(
            1 for e in self.events if e.kind is HostEventKind.PROCESS_CRASH
        )
