"""The console interaction ("clicks") model.

"We measure the time it takes our customers to go from deciding to create
a cluster to seeing the results of their first query" (§1); Figure 2
splits each admin operation into "time spent on clicks" versus the
automated remainder. The click model charges a page load plus a few
seconds per form field, with per-operation field counts matching the
paper's description: cluster creation asks only for "number and type of
nodes, basic network configuration and administrative account
information" (§3.1), and backup/DR/encryption are single checkboxes
(§3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AdminOperation(enum.Enum):
    DEPLOY = "deploy"
    CONNECT = "connect"
    BACKUP = "backup"
    RESTORE = "restore"
    RESIZE = "resize"
    ENABLE_ENCRYPTION = "enable_encryption"
    ENABLE_DR = "enable_dr"


@dataclass
class ConsoleModel:
    """Seconds of human interaction per operation."""

    page_load_s: float = 8.0
    seconds_per_field: float = 7.0

    #: form fields / clicks per operation (paper §3.1–§3.2)
    FIELDS = {
        AdminOperation.DEPLOY: 6,       # name, type, count, network, user, password
        AdminOperation.CONNECT: 3,      # copy endpoint, driver config, credentials
        AdminOperation.BACKUP: 1,       # one click
        AdminOperation.RESTORE: 3,      # pick snapshot, name, confirm
        AdminOperation.RESIZE: 2,       # target count/type, confirm
        AdminOperation.ENABLE_ENCRYPTION: 1,  # "setting a checkbox"
        AdminOperation.ENABLE_DR: 2,    # checkbox + region
    }

    def click_time(self, operation: AdminOperation) -> float:
        """Human seconds spent in the console for *operation*."""
        return self.page_load_s + self.FIELDS[operation] * self.seconds_per_field


# ---- observability pages --------------------------------------------------
#
# The monitoring side of the console renders straight from the cluster's
# system tables through ordinary SQL — the same path a customer's client
# uses, which is the paper's point about keeping the service simple: the
# warehouse explains itself through tables, not a separate telemetry stack.


def slowest_queries(session, limit: int = 5) -> list[tuple]:
    """Top *limit* completed statements by elapsed time.

    Rows: (query, querytxt, elapsed_us, rows).
    """
    result = session.execute(
        "SELECT query, querytxt, elapsed_us, rows FROM stl_query "
        f"WHERE state = 'success' ORDER BY elapsed_us DESC LIMIT {int(limit)}"
    )
    return result.rows


def most_pruned_scans(session, limit: int = 5) -> list[tuple]:
    """Scan steps that skipped the most blocks via zone maps.

    Rows: (query, operator, blocks_read, blocks_skipped).
    """
    result = session.execute(
        "SELECT query, operator, blocks_read, blocks_skipped "
        "FROM svl_query_summary WHERE blocks_skipped > 0 "
        f"ORDER BY blocks_skipped DESC LIMIT {int(limit)}"
    )
    return result.rows


def fault_timeline(session) -> list[tuple]:
    """The injected-fault history, oldest first: (at_s, kind, target)."""
    result = session.execute(
        "SELECT at_s, kind, target FROM stl_fault_events ORDER BY at_s"
    )
    return result.rows


def storage_summary(session) -> list[tuple]:
    """Per-table block count and on-disk bytes: (tbl, blocks, bytes)."""
    result = session.execute(
        "SELECT tbl, count(*) blocks, sum(size_bytes) total_bytes "
        "FROM stv_blocklist GROUP BY tbl ORDER BY tbl"
    )
    return result.rows
