"""The MPP database engine: cluster topology, catalog, transactions,
query execution driver, and the COPY ingest path.

An :class:`~repro.engine.cluster.Cluster` is one leader node plus compute
nodes partitioned into slices (one per core). Clients obtain a
:class:`~repro.engine.session.Session` via :meth:`Cluster.connect` and
issue SQL through :meth:`Session.execute`.
"""

from repro.engine.catalog import Catalog, TableInfo, ColumnInfo, TableStatistics, ColumnStatistics
from repro.engine.network import Interconnect, NetworkStats
from repro.engine.transactions import TransactionManager, Snapshot
from repro.engine.cluster import Cluster, ComputeNode, Slice
from repro.engine.session import Session, QueryResult

__all__ = [
    "Catalog", "TableInfo", "ColumnInfo", "TableStatistics", "ColumnStatistics",
    "Interconnect", "NetworkStats",
    "TransactionManager", "Snapshot",
    "Cluster", "ComputeNode", "Slice",
    "Session", "QueryResult",
]
