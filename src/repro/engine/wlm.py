"""Workload management: queues, slots, and admission control.

§4: declarative SQL matters most "when computation needs to be distributed
and parallelized across many nodes, and resources distributed across many
concurrent queries." WLM is how Redshift distributes those resources: each
queue owns a number of concurrency slots and a memory share; queries wait
for a slot, run, and release it.

The engine executes one statement at a time, so WLM here is a
discrete-event admission simulator over a trace of query arrivals — the
tool for answering the sizing questions WLM exists for (how much does a
separate short-query queue cut p95 wait?), exercised by the tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.util.stats import mean, percentile


@dataclass(frozen=True)
class QueueConfig:
    """One WLM queue: concurrency slots and a memory share."""

    name: str
    slots: int
    memory_fraction: float

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"queue {self.name!r} needs at least 1 slot")
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ValueError(
                f"queue {self.name!r} memory fraction must be in (0, 1]"
            )


@dataclass(frozen=True)
class QueryArrival:
    """One query in the trace."""

    queue: str
    arrival_s: float
    duration_s: float
    label: str = ""


@dataclass(frozen=True)
class QueryOutcome:
    arrival: QueryArrival
    started_s: float
    finished_s: float

    @property
    def wait_s(self) -> float:
        return self.started_s - self.arrival.arrival_s


@dataclass
class QueueReport:
    """Per-queue simulation results."""

    name: str
    outcomes: list[QueryOutcome] = field(default_factory=list)

    @property
    def mean_wait_s(self) -> float:
        return mean([o.wait_s for o in self.outcomes]) if self.outcomes else 0.0

    @property
    def p95_wait_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return percentile([o.wait_s for o in self.outcomes], 95)

    @property
    def max_queue_depth(self) -> int:
        """Peak number of queries waiting simultaneously."""
        events: list[tuple[float, int]] = []
        for o in self.outcomes:
            if o.wait_s > 0:
                events.append((o.arrival.arrival_s, +1))
                events.append((o.started_s, -1))
        events.sort()
        depth = peak = 0
        for _, delta in events:
            depth += delta
            peak = max(peak, depth)
        return peak


class WorkloadManager:
    """Simulates queue admission over a query trace.

    The default configuration mirrors Redshift's out-of-the-box single
    queue; callers define more queues to isolate workloads.
    """

    def __init__(self, queues: list[QueueConfig] | None = None):
        self.queues = queues or [QueueConfig("default", slots=5, memory_fraction=1.0)]
        names = [q.name for q in self.queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names: {names}")
        total = sum(q.memory_fraction for q in self.queues)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"queue memory fractions sum to {total:.2f} (> 1.0)"
            )
        self._by_name = {q.name: q for q in self.queues}

    def queue(self, name: str) -> QueueConfig:
        config = self._by_name.get(name)
        if config is None:
            raise KeyError(
                f"no WLM queue {name!r}; defined: {sorted(self._by_name)}"
            )
        return config

    def simulate(self, trace: list[QueryArrival]) -> dict[str, QueueReport]:
        """Run the admission simulation; returns per-queue reports.

        Within a queue, queries start in arrival order as slots free up
        (FIFO); queues are independent.
        """
        reports = {q.name: QueueReport(q.name) for q in self.queues}
        by_queue: dict[str, list[QueryArrival]] = {q.name: [] for q in self.queues}
        for arrival in trace:
            self.queue(arrival.queue)  # validates
            by_queue[arrival.queue].append(arrival)

        for name, arrivals in by_queue.items():
            slots = self.queue(name).slots
            arrivals.sort(key=lambda a: a.arrival_s)
            # Min-heap of slot-free times, one entry per slot.
            free_at: list[float] = [0.0] * slots
            heapq.heapify(free_at)
            for arrival in arrivals:
                slot_free = heapq.heappop(free_at)
                start = max(arrival.arrival_s, slot_free)
                finish = start + arrival.duration_s
                heapq.heappush(free_at, finish)
                reports[name].outcomes.append(
                    QueryOutcome(arrival=arrival, started_s=start, finished_s=finish)
                )
        return reports

    def memory_per_slot_fraction(self, queue_name: str) -> float:
        """The memory share one running query in this queue gets."""
        config = self.queue(queue_name)
        return config.memory_fraction / config.slots
