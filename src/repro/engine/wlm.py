"""Workload management: queues, slots, and admission control.

§4: declarative SQL matters most "when computation needs to be distributed
and parallelized across many nodes, and resources distributed across many
concurrent queries." WLM is how Redshift distributes those resources: each
queue owns a number of concurrency slots and a memory share; queries wait
for a slot, run, and release it.

The engine executes one statement at a time, so WLM here is a
discrete-event admission simulator over a trace of query arrivals — the
tool for answering the sizing questions WLM exists for (how much does a
separate short-query queue cut p95 wait?), exercised by the tests.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

from repro.util.stats import mean, percentile


class AdmissionStatus(enum.Enum):
    """How one query left the admission system."""

    COMPLETED = "completed"
    #: Waited longer than the queue's admission timeout and gave up.
    TIMED_OUT = "timed_out"
    #: Rejected on arrival because the queue was already at max depth.
    SHED = "shed"


@dataclass(frozen=True)
class QueueConfig:
    """One WLM queue: concurrency slots and a memory share."""

    name: str
    slots: int
    memory_fraction: float
    #: Arrivals beyond this many waiting queries are shed (None: unbounded).
    max_queue_depth: int | None = None
    #: Queries abandon the queue after waiting this long (None: wait forever).
    admission_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"queue {self.name!r} needs at least 1 slot")
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ValueError(
                f"queue {self.name!r} memory fraction must be in (0, 1]"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError(
                f"queue {self.name!r} max_queue_depth must be non-negative"
            )
        if self.admission_timeout_s is not None and self.admission_timeout_s < 0:
            raise ValueError(
                f"queue {self.name!r} admission timeout must be non-negative"
            )


@dataclass(frozen=True)
class QueryArrival:
    """One query in the trace."""

    queue: str
    arrival_s: float
    duration_s: float
    label: str = ""


@dataclass(frozen=True)
class QueryOutcome:
    arrival: QueryArrival
    started_s: float
    finished_s: float
    status: AdmissionStatus = AdmissionStatus.COMPLETED

    @property
    def wait_s(self) -> float:
        return self.started_s - self.arrival.arrival_s


@dataclass
class QueueReport:
    """Per-queue simulation results."""

    name: str
    outcomes: list[QueryOutcome] = field(default_factory=list)

    @property
    def completed(self) -> list[QueryOutcome]:
        return [
            o for o in self.outcomes if o.status is AdmissionStatus.COMPLETED
        ]

    @property
    def timed_out_count(self) -> int:
        return sum(
            1 for o in self.outcomes if o.status is AdmissionStatus.TIMED_OUT
        )

    @property
    def shed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status is AdmissionStatus.SHED)

    @property
    def mean_wait_s(self) -> float:
        completed = self.completed
        return mean([o.wait_s for o in completed]) if completed else 0.0

    @property
    def p95_wait_s(self) -> float:
        completed = self.completed
        if not completed:
            return 0.0
        return percentile([o.wait_s for o in completed], 95)

    @property
    def max_queue_depth(self) -> int:
        """Peak number of queries waiting simultaneously."""
        events: list[tuple[float, int]] = []
        for o in self.outcomes:
            if o.wait_s > 0:
                events.append((o.arrival.arrival_s, +1))
                events.append((o.started_s, -1))
        events.sort()
        depth = peak = 0
        for _, delta in events:
            depth += delta
            peak = max(peak, depth)
        return peak


class WorkloadManager:
    """Simulates queue admission over a query trace.

    The default configuration mirrors Redshift's out-of-the-box single
    queue; callers define more queues to isolate workloads.
    """

    def __init__(
        self,
        queues: list[QueueConfig] | None = None,
        systables=None,
    ):
        self.queues = queues or [QueueConfig("default", slots=5, memory_fraction=1.0)]
        names = [q.name for q in self.queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names: {names}")
        total = sum(q.memory_fraction for q in self.queues)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"queue memory fractions sum to {total:.2f} (> 1.0)"
            )
        self._by_name = {q.name: q for q in self.queues}
        #: Optional repro.systables.SystemTables sink: each simulation
        #: refreshes stv_wlm_query_state and appends stl_wlm_rule_action.
        self._systables = systables

    def attach_systables(self, systables) -> None:
        """Record simulation outcomes into *systables* from now on."""
        self._systables = systables

    def queue(self, name: str) -> QueueConfig:
        config = self._by_name.get(name)
        if config is None:
            raise KeyError(
                f"no WLM queue {name!r}; defined: {sorted(self._by_name)}"
            )
        return config

    def simulate(self, trace: list[QueryArrival]) -> dict[str, QueueReport]:
        """Run the admission simulation; returns per-queue reports.

        Within a queue, queries start in arrival order as slots free up
        (FIFO); queues are independent.
        """
        reports = {q.name: QueueReport(q.name) for q in self.queues}
        by_queue: dict[str, list[QueryArrival]] = {q.name: [] for q in self.queues}
        for arrival in trace:
            self.queue(arrival.queue)  # validates
            by_queue[arrival.queue].append(arrival)

        for name, arrivals in by_queue.items():
            config = self.queue(name)
            slots = config.slots
            arrivals.sort(key=lambda a: a.arrival_s)
            # Min-heap of slot-free times, one entry per slot.
            free_at: list[float] = [0.0] * slots
            heapq.heapify(free_at)
            admitted: list[QueryOutcome] = []
            for arrival in arrivals:
                now = arrival.arrival_s
                if config.max_queue_depth is not None:
                    waiting = sum(1 for o in admitted if o.started_s > now)
                    if waiting >= config.max_queue_depth:
                        # Overload shedding: fail fast at the door instead
                        # of letting the backlog grow without bound.
                        reports[name].outcomes.append(
                            QueryOutcome(
                                arrival=arrival,
                                started_s=now,
                                finished_s=now,
                                status=AdmissionStatus.SHED,
                            )
                        )
                        continue
                slot_free = free_at[0]
                wait = max(0.0, slot_free - now)
                if (
                    config.admission_timeout_s is not None
                    and wait > config.admission_timeout_s
                ):
                    # The query abandons without ever taking a slot.
                    gave_up = now + config.admission_timeout_s
                    outcome = QueryOutcome(
                        arrival=arrival,
                        started_s=gave_up,
                        finished_s=gave_up,
                        status=AdmissionStatus.TIMED_OUT,
                    )
                    reports[name].outcomes.append(outcome)
                    admitted.append(outcome)
                    continue
                heapq.heappop(free_at)
                start = max(now, slot_free)
                finish = start + arrival.duration_s
                heapq.heappush(free_at, finish)
                outcome = QueryOutcome(
                    arrival=arrival, started_s=start, finished_s=finish
                )
                reports[name].outcomes.append(outcome)
                admitted.append(outcome)
        if self._systables is not None:
            self._systables.record_wlm(reports)
        return reports

    def memory_per_slot_fraction(self, queue_name: str) -> float:
        """The memory share one running query in this queue gets."""
        config = self.queue(queue_name)
        return config.memory_fraction / config.slots


class AdmissionGate:
    """Inline admission hook on the session's query execution path.

    The :class:`WorkloadManager` above answers sizing questions over
    traces; this gate is the live seam the leader consults before it
    actually *executes* a SELECT. Its load-bearing property is what it
    is **not** asked to do: a result-cache hit returns rows without ever
    reaching the gate (``record_bypass`` fires instead), so cached
    queries consume no admission slot — the WLM-bypass behaviour real
    Redshift gives result-cache hits.

    ``on_admit`` lets tests and control planes attach queueing logic or
    accounting; the gate itself only counts.
    """

    def __init__(self, queue: str = "default", on_admit=None):
        self.queue = queue
        self._on_admit = on_admit
        #: Queries that reached execution and took an admission slot.
        self.admissions = 0
        #: Queries answered from the result cache without admission.
        self.bypasses = 0

    def admit(self, label: str = "") -> None:
        """One query is about to execute (result-cache miss or uncached)."""
        self.admissions += 1
        if self._on_admit is not None:
            self._on_admit(label)

    def record_bypass(self, label: str = "") -> None:
        """One query was served from the result cache without admission."""
        self.bypasses += 1
