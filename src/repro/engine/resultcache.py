"""The leader-side query result cache.

Real Redshift grew a leader-node result cache on the same principle as
its compiled-object cache (paper §2, "compiled code ... is cached"):
repeat queries over unchanged data should not pay execution again. An
entry stores the finished row set of one SELECT keyed on

- the normalized SQL text of the (subquery-expanded) query,
- the bound physical plan's EXPLAIN rendering (plan signature — two
  textually equal queries planned differently, e.g. after ANALYZE moved
  statistics, do not share an entry), and
- the executor kind (a hit must be bit-identical to what *that*
  executor would recompute; parallel float aggregation may legally
  re-associate).

Validity is epoch-based, not push-based: the entry records the
per-table mutation epoch (:mod:`repro.storage.epoch`) of every user
table the plan scans, captured *before* execution started, and a lookup
revalidates them. Any mutation path — INSERT/DELETE/VACUUM, scrub
repair, restore, ``Block.corrupt()``, or a writing transaction's
commit/rollback — moves an epoch and the entry dies lazily on its next
lookup. Sessions bypass the cache entirely inside explicit transactions
and for system-table scans (see ``Session._run_select``).

Concurrency: every cache operation takes the instance lock (the same
treatment :class:`~repro.storage.blockcache.BlockDecodeCache` got), and
the cache additionally deduplicates concurrent *executions*: when many
sessions miss on the same key at once (the thundering-herd shape a
dashboard fleet produces), :meth:`lead_or_wait` elects one leader to
execute while the rest wait for the stored entry — execute-once,
serve-many. A leader that fails (or whose result was too large to
cache) wakes the waiters, and each re-checks the cache before electing
itself the new leader, so progress never depends on any one session.

Counters feed the ``stv_result_cache`` system table and the bench a12
experiment.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.storage import epoch

#: Default number of cached result sets kept resident.
DEFAULT_CAPACITY = 256

#: Result sets larger than this many rows are not cached (the copy-out
#: on a hit would rival re-execution and the memory cost is unbounded).
DEFAULT_MAX_ROWS = 100_000


def result_cache_key(sql: str, plan_signature: str, executor: str) -> str:
    """The cache key of one (query, plan, executor) combination."""
    digest = hashlib.sha256()
    digest.update(sql.encode())
    digest.update(b"\x00")
    digest.update(plan_signature.encode())
    digest.update(b"\x00")
    digest.update(executor.encode())
    return digest.hexdigest()


@dataclass
class CacheEntry:
    """One cached result set."""

    key: str
    sql: str
    executor: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    #: User tables the plan scanned, with the epoch each had before the
    #: cached execution began. The entry is valid while none has moved.
    tables: tuple[str, ...]
    epochs: tuple[int, ...]
    hits: int = field(default=0)

    def valid(self) -> bool:
        return all(
            epoch.table_epoch(table) == stored
            for table, stored in zip(self.tables, self.epochs)
        )


class _Flight:
    """One in-flight execution other sessions may wait on."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


#: How long a waiter trusts the leader before executing itself anyway.
FLIGHT_TIMEOUT_S = 30.0


class QueryResultCache:
    """LRU of result-cache key -> :class:`CacheEntry`."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_rows: int = DEFAULT_MAX_ROWS,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.max_rows = max_rows
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: key -> in-flight execution concurrent sessions coalesce on.
        self._flights: dict[str, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        #: Executions avoided by waiting on another session's in-flight
        #: run and then hitting the entry it stored.
        self.flight_waits = 0
        #: Waits that did NOT end in a hit (leader failed, result too
        #: large to cache, or the wait timed out): the waiter executed.
        self.flight_fallbacks = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _get_valid(self, key: str) -> CacheEntry | None:
        """Valid entry under *key* (lock held); drops a stale one."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not entry.valid():
            del self._entries[key]
            self.invalidations += 1
            return None
        return entry

    def lookup(self, key: str) -> CacheEntry | None:
        """The valid entry under *key*, or None.

        A present-but-stale entry (some table epoch moved) is dropped
        here — epoch invalidation is lazy — and counted as both an
        invalidation and a miss.
        """
        with self._lock:
            entry = self._get_valid(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            entry.hits += 1
            return entry

    def lead_or_wait(
        self, key: str, timeout: float = FLIGHT_TIMEOUT_S
    ) -> tuple[CacheEntry | None, bool]:
        """Hit, or elect this session to execute — ``(entry, leads)``.

        ``(entry, False)``: a valid entry exists (possibly stored by a
        leader this call waited on) — serve it. ``(None, True)``: no
        entry and no execution in flight; the caller must execute and
        then call :meth:`finish_flight` (success or not). ``(None,
        False)``: the wait on a leader timed out; execute without
        owning the flight.
        """
        waited = False
        while True:
            with self._lock:
                entry = self._get_valid(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    entry.hits += 1
                    if waited:
                        self.flight_waits += 1
                    return entry, False
                flight = self._flights.get(key)
                if flight is None:
                    self._flights[key] = _Flight()
                    self.misses += 1
                    if waited:
                        self.flight_fallbacks += 1
                    return None, True
            if not flight.event.wait(timeout):
                with self._lock:
                    self.misses += 1
                    self.flight_fallbacks += 1
                return None, False
            waited = True

    def finish_flight(self, key: str) -> None:
        """End this session's in-flight execution and wake the waiters.

        Must run whether the execution stored an entry, failed, or
        produced an uncacheable result; each waiter re-checks the cache
        and, if it finds nothing, elects itself the next leader.
        """
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.event.set()

    def store(
        self,
        key: str,
        sql: str,
        executor: str,
        columns: list[str],
        rows: list[tuple],
        tables: tuple[str, ...],
        epochs: tuple[int, ...],
    ) -> None:
        """Insert one finished result set.

        *epochs* must be the referenced tables' epochs captured before
        the execution that produced *rows* began: "valid" then means "no
        mutation since before we read".
        """
        if len(rows) > self.max_rows:
            return
        entry = CacheEntry(
            key=key,
            sql=sql,
            executor=executor,
            columns=tuple(columns),
            rows=tuple(rows),
            tables=tables,
            epochs=epochs,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stores += 1
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def entries(self) -> list[CacheEntry]:
        """A stable snapshot of the current entries (stv_result_cache)."""
        with self._lock:
            return list(self._entries.values())
