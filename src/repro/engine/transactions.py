"""Transactions: snapshot isolation with serialized commit at the leader.

"The leader node ... coordinates serialization and state of transactions"
(paper §2.1). The engine is single-process, so the manager's job is the
bookkeeping that makes MVCC semantics observable: every statement runs
against a :class:`Snapshot` of committed transaction ids; writers stamp
rows with their xid; rollback simply leaves the xid uncommitted, making
its rows permanently invisible (space is reclaimed by VACUUM).

Write-write conflicts are detected at commit: two overlapping transactions
that delete the same row cannot both commit (first committer wins).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import SerializationError, TransactionError
from repro.storage import epoch

#: xid used for data created outside any user transaction (bootstrap).
BOOTSTRAP_XID = 0


@dataclass(frozen=True)
class Snapshot:
    """The set of transactions visible to a statement."""

    xid: int
    committed: frozenset[int]

    def can_see(self, insert_xid: int, delete_xid: int | None) -> bool:
        """MVCC visibility: inserted by a visible txn (or ourselves) and not
        deleted by a visible txn (or ourselves)."""
        inserted = insert_xid == self.xid or insert_xid in self.committed
        if not inserted:
            return False
        if delete_xid is None:
            return True
        deleted = delete_xid == self.xid or delete_xid in self.committed
        return not deleted


@dataclass
class _Transaction:
    xid: int
    snapshot_committed: frozenset[int]
    deleted_rows: set[tuple[str, str, int]] = field(default_factory=set)
    #: Tables this transaction wrote (insert/delete/vacuum funnels call
    #: record_write). Their epochs bump again when the outcome resolves —
    #: commit makes the rows visible without touching storage, which a
    #: result-cache entry stored mid-flight would otherwise survive.
    written_tables: set[str] = field(default_factory=set)
    active: bool = True


class TransactionManager:
    """Allocates xids, tracks commit state, detects delete conflicts.

    All state transitions happen under one lock: concurrent sessions
    begin/commit from their own threads, and an unlocked
    ``frozenset(self._committed)`` racing a commit's ``set.add`` is a
    RuntimeError ("set changed size during iteration") waiting to fire.
    The lock serializes commit itself, which is also what makes
    first-committer-wins conflict detection sound under concurrency.
    """

    def __init__(self) -> None:
        self._next_xid = 1
        self._committed: set[int] = {BOOTSTRAP_XID}
        self._active: dict[int, _Transaction] = {}
        #: (table, slice_id, row_offset) -> xid that committed a delete of it
        self._committed_deletes: dict[tuple[str, str, int], int] = {}
        self._lock = threading.Lock()

    def begin(self) -> int:
        """Start a transaction; returns its xid."""
        with self._lock:
            xid = self._next_xid
            self._next_xid += 1
            self._active[xid] = _Transaction(
                xid=xid, snapshot_committed=frozenset(self._committed)
            )
            return xid

    def snapshot(self, xid: int) -> Snapshot:
        """The snapshot a statement of *xid* runs against.

        Redshift runs statements against the transaction-start snapshot;
        we match that (repeatable read within a transaction).
        """
        with self._lock:
            txn = self._require(xid)
            return Snapshot(xid=xid, committed=txn.snapshot_committed)

    def record_delete(self, xid: int, table: str, slice_id: str, offset: int) -> None:
        """Note that *xid* deleted a row (for conflict detection at commit)."""
        with self._lock:
            self._require(xid).deleted_rows.add((table, slice_id, offset))

    def record_write(self, xid: int, table: str) -> None:
        """Note that *xid* wrote *table*, so the table's mutation epoch
        bumps again when the transaction commits or rolls back.

        The write paths already bump the epoch at write time (forked
        worker pools must not scan half-written storage), but visibility
        changes at *resolution* time: a result-cache entry stored while
        the writer was in flight was computed against a snapshot that
        excluded its rows, and only the commit-time bump invalidates it.
        Rollback bumps too — spurious but safe. Writes outside any live
        transaction (bootstrap loads) are ignored.
        """
        with self._lock:
            txn = self._active.get(xid)
            if txn is not None:
                txn.written_tables.add(table)

    def commit(self, xid: int) -> None:
        """Commit, failing with SerializationError on write-write conflict."""
        with self._lock:
            txn = self._require(xid)
            for key in txn.deleted_rows:
                winner = self._committed_deletes.get(key)
                if winner is not None and winner not in txn.snapshot_committed:
                    txn.active = False
                    del self._active[xid]
                    for table in txn.written_tables:
                        epoch.bump(table)
                    raise SerializationError(
                        f"transaction {xid} conflicts with concurrent delete of "
                        f"row {key} by transaction {winner}"
                    )
            for key in txn.deleted_rows:
                self._committed_deletes[key] = xid
            self._committed.add(xid)
            del self._active[xid]
            written = txn.written_tables
        # Epoch bumps after the commit point: a reader that sees the new
        # epoch re-reads and finds the rows already visible.
        for table in written:
            epoch.bump(table)

    def rollback(self, xid: int) -> None:
        """Abort: the xid never enters the committed set, so its effects are
        invisible forever."""
        with self._lock:
            txn = self._require(xid)
            del self._active[xid]
            written = txn.written_tables
        for table in written:
            epoch.bump(table)

    def statement_snapshot(self, xid: int) -> Snapshot:
        """A snapshot of *xid* against everything committed *right now*.

        Autocommit cached SELECTs use this instead of :meth:`snapshot`:
        the result cache validates entries by table epoch, and epochs
        are captured when the statement starts executing — after
        ``begin()`` froze the transaction-start snapshot. A commit
        landing in that gap would be invisible to the frozen snapshot
        yet already counted in the captured epochs, leaving a stale
        entry that validates forever. Freezing the committed set after
        the epoch capture closes the gap: any commit the statement
        cannot see must bump its tables' epochs later, killing the
        entry.
        """
        with self._lock:
            self._require(xid)
            return Snapshot(xid=xid, committed=frozenset(self._committed))

    def snapshot_latest(self) -> Snapshot:
        """A read-only snapshot of everything committed so far (used by
        maintenance paths such as statistics collection)."""
        with self._lock:
            return Snapshot(xid=-1, committed=frozenset(self._committed))

    def is_committed(self, xid: int) -> bool:
        with self._lock:
            return xid in self._committed

    @property
    def committed_xids(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._committed)

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def _require(self, xid: int) -> _Transaction:
        txn = self._active.get(xid)
        if txn is None:
            raise TransactionError(f"transaction {xid} is not active")
        return txn
